//! End-to-end correctness: every benchmark, compiled by the HiDISC
//! compiler and executed on every machine model, must reproduce the
//! sequential reference results exactly.
//!
//! This is the master test of the whole stack: workload generators →
//! stream separator → CMAS extraction → functional decoupled execution →
//! all four cycle-level machine models.

use hidisc::funcval;
use hidisc::{run_model, MachineConfig, Model};
use hidisc_isa::interp::Interp;
use hidisc_slicer::{compile, CompilerConfig};
use hidisc_suite::exec_env_of;
use hidisc_workloads::{suite, Scale, Workload};

fn golden_checksum(w: &Workload) -> (u64, u64) {
    let mut i = Interp::new(&w.prog, w.mem.clone());
    for &(r, v) in &w.regs {
        i.set_reg(r, v);
    }
    let stats = i
        .run(w.max_steps)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    if let Some((addr, want)) = w.expected {
        assert_eq!(
            i.mem.read_i64(addr).unwrap(),
            want,
            "{}: reference mismatch",
            w.name
        );
    }
    (i.mem.checksum(), stats.instrs)
}

#[test]
fn every_workload_compiles_and_validates_functionally() {
    for w in suite(Scale::Test, 2024) {
        let env = exec_env_of(&w);
        let c = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        funcval::validate(&c, &env)
            .unwrap_or_else(|e| panic!("{}: functional validation failed: {e}", w.name));
    }
}

#[test]
fn every_workload_matches_golden_on_every_model() {
    for w in suite(Scale::Test, 7)
        .into_iter()
        .chain(hidisc_workloads::extras(Scale::Test, 7))
    {
        let env = exec_env_of(&w);
        let (want, work) = golden_checksum(&w);
        let c = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        assert_eq!(
            c.profile.dyn_instrs, work,
            "{}: profiler work count differs",
            w.name
        );
        for model in Model::ALL {
            let stats = run_model(model, &c, &env, MachineConfig::paper())
                .unwrap_or_else(|e| panic!("{} on {model}: {e}", w.name));
            assert_eq!(
                stats.mem_checksum, want,
                "{} on {model}: memory diverged",
                w.name
            );
            assert!(stats.cycles > 0 && stats.ipc() > 0.0);
        }
    }
}

#[test]
fn decoupled_models_exercise_the_queues() {
    for w in suite(Scale::Test, 99) {
        let env = exec_env_of(&w);
        let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        let st = run_model(Model::CpAp, &c, &env, MachineConfig::paper()).unwrap();
        // Control-queue tokens must flow for every workload; push == pop.
        assert!(st.queues[3].pushes > 0, "{}: CQ unused", w.name);
        assert_eq!(
            st.queues[3].pushes, st.queues[3].pops,
            "{}: CQ imbalance",
            w.name
        );
        // Data queues drain (LDQ, SDQ, CDQ).
        for qi in 0..3 {
            assert_eq!(
                st.queues[qi].pushes, st.queues[qi].pops,
                "{}: queue {qi} imbalance",
                w.name
            );
        }
    }
}

#[test]
fn cmp_models_fork_threads_on_miss_heavy_workloads() {
    // Test-scale footprints fit in the L1, so build instances whose data
    // exceeds it (the profiler only marks loads that actually miss).
    let heavy = [
        hidisc_workloads::update::build(
            &hidisc_workloads::update::Params {
                table: 65_536,
                updates: 800,
            },
            5,
        ),
        hidisc_workloads::dm::build(
            &hidisc_workloads::dm::Params {
                records: 8_192,
                buckets: 1024,
                queries: 500,
            },
            5,
        ),
    ];
    for w in heavy {
        let name = w.name;
        let env = exec_env_of(&w);
        let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        assert!(!c.cmas.is_empty(), "{name}: no CMAS extracted");
        let st = run_model(Model::HiDisc, &c, &env, MachineConfig::paper()).unwrap();
        let cmp = st.cmp.expect("HiDISC has a CMP");
        assert!(cmp.forks > 0, "{name}: CMP never forked");
        assert!(cmp.prefetches > 0, "{name}: CMP never prefetched");
    }
}
