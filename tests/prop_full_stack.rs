//! Full-stack property test: arbitrary structured programs, compiled by
//! the HiDISC compiler and executed on the decoupled machines, must be
//! architecturally indistinguishable from sequential execution.
//!
//! This is the strongest correctness statement in the repository: it
//! quantifies over programs (loops, branches, FP, aliasing stores), not
//! over the seven hand-written benchmarks.

use hidisc::funcval;
use hidisc::{run_model, MachineConfig, Model};
use hidisc_isa::interp::Interp;
use hidisc_isa::testgen::{random_program, GenConfig};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use proptest::prelude::*;

fn check_seed(seed: u64, gen: GenConfig, models: &[Model]) {
    let (prog, mem, regs) = random_program(seed, gen);
    let env = ExecEnv {
        regs: regs.clone(),
        mem: mem.clone(),
        max_steps: 4_000_000,
    };

    // Sequential golden state.
    let mut interp = Interp::new(&prog, mem);
    for &(r, v) in &regs {
        interp.set_reg(r, v);
    }
    interp
        .run(4_000_000)
        .unwrap_or_else(|e| panic!("seed {seed}: sequential run: {e}"));
    let want = interp.mem.checksum();

    let w = compile(&prog, &env, &CompilerConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: compile: {e}"));

    // Functional decoupled equivalence (fast; checks the separator alone).
    funcval::validate(&w, &env).unwrap_or_else(|e| panic!("seed {seed}: funcval: {e}"));

    // Timing models.
    for &m in models {
        let st = run_model(m, &w, &env, MachineConfig::paper())
            .unwrap_or_else(|e| panic!("seed {seed} on {m}: {e}"));
        assert_eq!(st.mem_checksum, want, "seed {seed}: {m} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decoupled_models_match_sequential_semantics(seed in any::<u64>()) {
        check_seed(seed, GenConfig::default(), &[Model::CpAp, Model::HiDisc]);
    }

    #[test]
    fn merged_models_match_sequential_semantics(seed in any::<u64>()) {
        check_seed(seed, GenConfig::default(), &[Model::Superscalar, Model::CpCmp]);
    }

    #[test]
    fn aliasing_heavy_programs_stay_correct(seed in any::<u64>()) {
        // A tiny arena maximises store/load aliasing across the streams —
        // the hardest case for SDQ/LSQ ordering.
        let gen = GenConfig { arena_words: 8, max_depth: 2, ..GenConfig::default() };
        check_seed(seed, gen, &[Model::CpAp, Model::HiDisc]);
    }

    #[test]
    fn int_only_programs_stay_correct(seed in any::<u64>()) {
        let gen = GenConfig { with_fp: false, ..GenConfig::default() };
        check_seed(seed, gen, &[Model::CpAp, Model::HiDisc]);
    }
}

/// A handful of deeper programs outside proptest's budget.
#[test]
fn deep_random_programs_across_all_models() {
    let gen = GenConfig {
        max_depth: 3,
        max_block: 8,
        ..GenConfig::default()
    };
    for seed in [3u64, 1717, 424242, 9999999] {
        check_seed(seed, gen, &Model::ALL);
    }
}
