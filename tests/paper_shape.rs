//! Paper-shape regression tests: the qualitative results of the paper's
//! evaluation must hold on reduced-size (CI-friendly) instances.
//!
//! These assertions are deliberately loose — they pin the *shape* (who
//! wins, and why) rather than exact factors, so legitimate model tuning
//! does not break them while a regression in prefetching, decoupling or
//! the compiler does.

use hidisc::{run_model, MachineConfig, Model};
use hidisc_slicer::{compile, CompilerConfig};
use hidisc_suite::exec_env_of;
use hidisc_workloads::{field, neighborhood, update, Workload};

fn run_all(w: &Workload) -> Vec<hidisc::MachineStats> {
    let env = exec_env_of(w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    Model::ALL
        .into_iter()
        .map(|m| run_model(m, &c, &env, MachineConfig::paper()).unwrap())
        .collect()
}

/// A miss-heavy Update instance small enough for debug-mode CI.
fn update_instance() -> Workload {
    update::build(
        &update::Params {
            table: 16_384,
            updates: 2_000,
        },
        11,
    )
}

fn neighborhood_instance() -> Workload {
    // Enough pairs that the histogram-update aliasing dominates warmup
    // effects (the CP+AP degradation only shows past a few thousand).
    neighborhood::build(
        &neighborhood::Params {
            pixels: 16_384,
            levels: 5,
            distance: 331,
            pairs: 8_000,
        },
        11,
    )
}

#[test]
fn hidisc_beats_baseline_on_update() {
    let w = update_instance();
    let r = run_all(&w);
    let speedup = r[3].speedup_over(&r[0]);
    assert!(
        speedup > 1.10,
        "HiDISC speed-up on update = {speedup:.3}, expected > 1.10"
    );
}

#[test]
fn prefetching_dominates_decoupling() {
    // The paper's Table-2 ranking: the CMP models clearly beat CP+AP,
    // whose contribution is marginal.
    let w = update_instance();
    let r = run_all(&w);
    let cp_ap = r[1].speedup_over(&r[0]);
    let cp_cmp = r[2].speedup_over(&r[0]);
    let hidisc = r[3].speedup_over(&r[0]);
    assert!(
        cp_cmp > cp_ap + 0.05,
        "CP+CMP {cp_cmp:.3} must clearly beat CP+AP {cp_ap:.3}"
    );
    assert!(
        hidisc > cp_ap + 0.05,
        "HiDISC {hidisc:.3} must clearly beat CP+AP {cp_ap:.3}"
    );
    assert!(
        (0.85..1.15).contains(&cp_ap),
        "CP+AP alone is marginal, got {cp_ap:.3}"
    );
}

#[test]
fn cmp_models_eliminate_misses() {
    let w = update_instance();
    let r = run_all(&w);
    // CP+AP does not change the miss rate; the CMP models reduce it.
    let ap_ratio = r[1].miss_rate_ratio(&r[0]);
    assert!(
        (0.95..1.05).contains(&ap_ratio),
        "CP+AP miss ratio {ap_ratio:.3}"
    );
    let hd_ratio = r[3].miss_rate_ratio(&r[0]);
    assert!(
        hd_ratio < 1.0,
        "HiDISC must eliminate some misses, ratio {hd_ratio:.3}"
    );
}

#[test]
fn field_gains_nothing_from_the_cmp() {
    // Figure 8's Field bar: almost no cache misses, so prefetching cannot
    // help (paper: "cannot benefit much from the data prefetching").
    let w = field::build(&field::Params { len: 32 * 1024 }, 11);
    let r = run_all(&w);
    assert!(r[0].l1_miss_rate() < 0.05, "field must be low-miss");
    let cp_cmp = r[2].speedup_over(&r[0]);
    assert!(
        (0.97..1.03).contains(&cp_cmp),
        "CMP must be neutral on field, got {cp_cmp:.3}"
    );
}

#[test]
fn neighborhood_decoupling_degrades() {
    // The paper's loss-of-decoupling case: CP+AP loses to the baseline on
    // Neighborhood because histogram updates force AP-CP synchronisation.
    let w = neighborhood_instance();
    let r = run_all(&w);
    let cp_ap = r[1].speedup_over(&r[0]);
    assert!(cp_ap < 1.02, "NB CP+AP should not gain, got {cp_ap:.3}");
    // The memory-carried cross-stream dependence must actually occur.
    let ap_stats = r[1]
        .cores
        .iter()
        .find(|(n, _)| *n == "AP")
        .map(|(_, s)| *s)
        .expect("CP+AP has an AP core");
    assert!(
        ap_stats.mem_dep_stalls > 0,
        "NB must exhibit cross-stream memory dependences"
    );
}

#[test]
fn latency_tolerance_of_cmp_models() {
    // Figure 10's shape on Neighborhood: the CMP models retain more of
    // their fast-memory IPC when memory slows 4x.
    let w = neighborhood_instance();
    let env = exec_env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let fast = MachineConfig::paper_with_latency(4, 40);
    let slow = MachineConfig::paper_with_latency(16, 160);
    let retained = |m: Model| {
        let f = run_model(m, &c, &env, fast).unwrap().ipc();
        let s = run_model(m, &c, &env, slow).unwrap().ipc();
        s / f
    };
    let base = retained(Model::Superscalar);
    let hidisc = retained(Model::HiDisc);
    assert!(
        hidisc > base,
        "HiDISC must tolerate latency better: retains {hidisc:.3} vs baseline {base:.3}"
    );
}

#[test]
fn loss_of_decoupling_accounting_is_visible() {
    // The CP must report LoD stall cycles on the LDQ when the AP cannot
    // feed it fast enough (any miss-heavy workload).
    let w = update_instance();
    let env = exec_env_of(&w);
    let c = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    let st = run_model(Model::CpAp, &c, &env, MachineConfig::paper()).unwrap();
    let cp = st
        .cores
        .iter()
        .find(|(n, _)| *n == "CP")
        .map(|(_, s)| *s)
        .unwrap();
    assert!(
        cp.dispatch_stall_q[0] > 0,
        "CP must stall on the LDQ sometimes"
    );
}
