//! Write a kernel in the DISC language, compile it through the whole
//! HiDISC toolchain, and measure the four machine models — no assembly
//! required.
//!
//! The kernel is a histogram over gathered values: the same
//! data-intensive pattern as the Neighborhood stressmark, expressed in
//! ~15 lines of DISC.
//!
//! ```text
//! cargo run --release --example disc_language
//! ```

use hidisc_suite::hidisc::{run_model, MachineConfig, Model};
use hidisc_suite::lang::eval::{evaluate, ArrayData, Value};
use hidisc_suite::lang::{compile_str, parse};
use hidisc_suite::slicer::{compile as slice, CompilerConfig, ExecEnv};
use std::collections::HashMap;

const SRC: &str = r"
    var i; var j; var bin;
    arr idx[4096];          // gather indices (initialised from Rust)
    arr table[8192];        // gathered table
    arr hist[64];           // small histogram
    var sum;

    for (i = 0; i < 4096; i = i + 1) {
        j = idx[i];
        bin = table[j] & 63;
        hist[bin] = hist[bin] + 1;
        sum = sum + table[j];
    }
    out(sum);
";

fn main() {
    // 1. Parse + compile DISC → DISA.
    let kernel = parse(SRC).expect("parses");
    let compiled = compile_str("disc-histogram", SRC).expect("compiles");
    println!(
        "DISC kernel compiled to {} DISA instructions ({} arrays, pool of {} f64 consts)",
        compiled.prog.len(),
        compiled.array_base.len(),
        compiled.pool.len()
    );

    // 2. Build input data and the oracle expectation.
    let idx: Vec<i64> = (0..4096).map(|k| (k * 2654435761i64) & 8191).collect();
    let table: Vec<i64> = (0..8192).map(|k| (k * 31 + 7) % 1000).collect();
    let mut init = HashMap::new();
    init.insert("idx".to_string(), ArrayData::I(idx.clone()));
    init.insert("table".to_string(), ArrayData::I(table.clone()));
    init.insert("hist".to_string(), ArrayData::I(vec![0; 64]));
    let oracle = evaluate(&kernel, &init, 10_000_000).expect("oracle runs");
    let Value::I(want) = oracle.outs[0] else {
        unreachable!()
    };
    println!("oracle says sum = {want}");

    // 3. Seed the machine memory and run the full pipeline.
    let mut mem = compiled.initial_memory();
    compiled.set_array_i64(&mut mem, "idx", &idx);
    compiled.set_array_i64(&mut mem, "table", &table);
    let env = ExecEnv {
        regs: vec![],
        mem,
        max_steps: 10_000_000,
    };
    let sliced = slice(&compiled.prog, &env, &CompilerConfig::default()).expect("slices");
    println!(
        "separated: CS {} / AS {} instrs, {} CMAS thread(s)\n",
        sliced.cs.len(),
        sliced.access.len(),
        sliced.cmas.len()
    );

    println!(
        "{:<14} {:>10} {:>8} {:>9}",
        "model", "cycles", "IPC", "L1 miss"
    );
    let mut checked = false;
    for model in Model::ALL {
        let st = run_model(model, &sliced, &env, MachineConfig::paper()).expect("runs");
        println!(
            "{:<14} {:>10} {:>8.3} {:>8.1}%",
            model.name(),
            st.cycles,
            st.ipc(),
            100.0 * st.l1_miss_rate()
        );
        if !checked {
            checked = true;
        }
    }

    // 4. Verify the machine agrees with the oracle.
    let mut interp = hidisc_suite::isa::interp::Interp::new(&compiled.prog, env.mem.clone());
    interp.run(10_000_000).unwrap();
    let got = compiled.out_bits(&interp.mem, 0) as i64;
    assert_eq!(got, want, "machine result must match the oracle");
    println!("\nresult verified: sum = {got}");
}
