//! Stream separation walkthrough — the paper's Figures 3 and 5-7.
//!
//! Compiles the inner loop of a discrete convolution (the paper's
//! Figure 3 example) and prints the full separation report: the annotated
//! original binary, the Computation Stream, the Access Stream with its
//! queue communication, and the extracted Cache Miss Access Slice.
//!
//! ```text
//! cargo run --release --example stream_separation
//! ```

use hidisc_suite::isa::asm::assemble;
use hidisc_suite::isa::mem::Memory;
use hidisc_suite::slicer::{compile, report, CompilerConfig, ExecEnv};

fn main() {
    // The discrete-convolution inner loop of the paper's Figure 3:
    //   for (j = 0; j < n; ++j) y += x[j] * h[n - j - 1];
    // laid out over a large array so the x[] loads actually miss.
    let src = r"
            li  r1, 0x100000    ; x[]
            li  r2, 0x200000    ; h[]
            li  r3, 4096        ; n
            li  r4, 0           ; j
            sub r5, r3, 1       ; n - 1
        loop:
            sll r6, r4, 3
            add r7, r1, r6      ; &x[j]
            l.d f1, 0(r7)       ; x[j]
            sub r8, r5, r4      ; n - j - 1
            sll r8, r8, 3
            add r9, r2, r8      ; &h[n-j-1]
            l.d f2, 0(r9)       ; h[n-j-1]
            mul.d f3, f1, f2
            add.d f4, f4, f3    ; y += x[j]*h[n-j-1]
            add r4, r4, 1
            bne r4, r3, loop
            s.d f4, 0x300000(r0)
            halt
    ";
    let prog = assemble("convolution", src).expect("assembles");

    // Fill x[] and h[] so the profiling pass sees the real access pattern.
    let mut mem = Memory::new();
    for j in 0..4096u64 {
        mem.write_f64(0x100000 + 8 * j, (j % 17) as f64 * 0.25)
            .unwrap();
        mem.write_f64(0x200000 + 8 * j, (j % 13) as f64 * 0.5)
            .unwrap();
    }

    let env = ExecEnv {
        regs: vec![],
        mem,
        max_steps: 10_000_000,
    };
    let compiled = compile(&prog, &env, &CompilerConfig::default()).expect("compiles");

    // The full report: annotated original, both streams, CMAS threads.
    print!("{}", report::render(&compiled));

    let summary = report::summarize(&compiled);
    println!(
        "summary: {} original -> {} CS + {} AS ({} communication instructions), {} CMAS thread(s)",
        summary.original,
        summary.cs_emitted,
        summary.as_emitted,
        summary.comm_inserted,
        summary.cmas_threads
    );
}
