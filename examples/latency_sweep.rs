//! Latency-tolerance sweep — the paper's Figure 10 on a single workload.
//!
//! Sweeps the L2/memory latency pairs {4/40, 8/80, 12/120, 16/160} and
//! prints the IPC of each machine model, showing how the CMP-equipped
//! models degrade less as memory gets slower.
//!
//! ```text
//! cargo run --release --example latency_sweep [workload]
//! ```

use hidisc_suite::exec_env_of;
use hidisc_suite::hidisc::{run_model, MachineConfig, Model};
use hidisc_suite::slicer::{compile, CompilerConfig};
use hidisc_suite::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "neighborhood".into());
    let w = by_name(&name, Scale::Test, 7).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}` (try dm, raytrace, pointer, update, field, neighborhood, tc)");
        std::process::exit(2);
    });
    let env = exec_env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).expect("compiles");

    println!("{}: IPC across the latency sweep\n", w.name);
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>8}",
        "L2/mem", "Superscalar", "CP+AP", "CP+CMP", "HiDISC"
    );
    let mut first: Option<[f64; 4]> = None;
    let mut last = [0.0f64; 4];
    for (l2, mem) in [(4, 40), (8, 80), (12, 120), (16, 160)] {
        let cfg = MachineConfig::paper_with_latency(l2, mem);
        let mut row = [0.0f64; 4];
        for (i, model) in Model::ALL.into_iter().enumerate() {
            let st = run_model(model, &compiled, &env, cfg).expect("runs");
            row[i] = st.ipc();
        }
        println!(
            "{:>2}/{:<7} {:>12.3} {:>8.3} {:>8.3} {:>8.3}",
            l2, mem, row[0], row[1], row[2], row[3]
        );
        first.get_or_insert(row);
        last = row;
    }

    let first = first.unwrap();
    println!("\nIPC retained from the fastest to the slowest memory:");
    for (i, model) in Model::ALL.into_iter().enumerate() {
        println!(
            "  {:<12} {:>5.1}%",
            model.name(),
            100.0 * last[i] / first[i]
        );
    }
}
