//! Bring your own kernel: write a data-intensive loop in DISA assembly,
//! validate it against the sequential interpreter, compile it with the
//! HiDISC compiler, and measure what the decoupled machine buys you.
//!
//! The kernel here is a sparse dot product `sum += val[k] * dense[col[k]]`
//! — a classic irregular-gather workload that is not part of the DIS
//! suite.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use hidisc_suite::hidisc::funcval;
use hidisc_suite::hidisc::{run_model, MachineConfig, Model};
use hidisc_suite::isa::asm::assemble;
use hidisc_suite::isa::interp::Interp;
use hidisc_suite::isa::mem::Memory;
use hidisc_suite::isa::IntReg;
use hidisc_suite::slicer::{compile, CompilerConfig, ExecEnv};

const NNZ: u64 = 2_000; // non-zeros
const DENSE: u64 = 16_384; // dense vector length (128 KiB)
const COL_BASE: u64 = 0x10_0000;
const VAL_BASE: u64 = 0x20_0000;
const DENSE_BASE: u64 = 0x30_0000;
const RESULT: u64 = 0x40_0000;

fn main() {
    // r8 = col[], r9 = val[], r13 = dense[], r10 = nnz, r11 = &result
    let src = r"
            li r12, 0
        loop:
            sll r2, r12, 3
            add r3, r8, r2
            ld r4, 0(r3)        ; k = col[i]      (sequential)
            add r5, r9, r2
            l.d f1, 0(r5)       ; val[i]          (sequential)
            sll r4, r4, 3
            add r6, r13, r4
            l.d f2, 0(r6)       ; dense[col[i]]   (random gather)
            mul.d f3, f1, f2
            add.d f4, f4, f3    ; sum += val * dense
            add r12, r12, 1
            sub r10, r10, 1
            bne r10, r0, loop
            s.d f4, 0(r11)
            halt
    ";
    let prog = assemble("spmv-dot", src).expect("assembles");

    // Build the data: pseudo-random columns, simple values.
    let mut mem = Memory::new();
    let mut x = 0x1234_5678u64;
    let mut cols = Vec::new();
    for i in 0..NNZ {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let col = x % DENSE;
        cols.push(col);
        mem.write_i64(COL_BASE + 8 * i, col as i64).unwrap();
        mem.write_f64(VAL_BASE + 8 * i, (i % 7) as f64 + 0.5)
            .unwrap();
    }
    for d in 0..DENSE {
        mem.write_f64(DENSE_BASE + 8 * d, (d % 11) as f64 * 0.125)
            .unwrap();
    }

    // Native reference (same operation order for bit-exact FP).
    let mut want = 0.0f64;
    for (i, &c) in cols.iter().enumerate() {
        want += ((i as u64 % 7) as f64 + 0.5) * ((c % 11) as f64 * 0.125);
    }

    let regs = vec![
        (IntReg::new(8), COL_BASE as i64),
        (IntReg::new(9), VAL_BASE as i64),
        (IntReg::new(13), DENSE_BASE as i64),
        (IntReg::new(10), NNZ as i64),
        (IntReg::new(11), RESULT as i64),
    ];
    let env = ExecEnv {
        regs: regs.clone(),
        mem: mem.clone(),
        max_steps: 10_000_000,
    };

    // 1. Sequential validation.
    let mut interp = Interp::new(&prog, mem);
    for &(r, v) in &regs {
        interp.set_reg(r, v);
    }
    let stats = interp.run(10_000_000).expect("runs sequentially");
    let got = interp.mem.read_f64(RESULT).unwrap();
    assert_eq!(got, want, "kernel must match the native reference");
    println!(
        "kernel validated: sum = {got} over {} dynamic instructions",
        stats.instrs
    );

    // 2. Compile and functionally validate the separation.
    let compiled = compile(&prog, &env, &CompilerConfig::default()).expect("compiles");
    funcval::validate(&compiled, &env).expect("decoupled streams reproduce the kernel");
    println!(
        "separated: CS {} / AS {} instrs, {} CMAS thread(s)",
        compiled.cs.len(),
        compiled.access.len(),
        compiled.cmas.len()
    );

    // 3. Measure.
    println!(
        "\n{:<14} {:>10} {:>8} {:>9}",
        "model", "cycles", "IPC", "L1 miss"
    );
    for model in Model::ALL {
        let st = run_model(model, &compiled, &env, MachineConfig::paper()).expect("runs");
        println!(
            "{:<14} {:>10} {:>8.3} {:>8.1}%",
            model.name(),
            st.cycles,
            st.ipc(),
            100.0 * st.l1_miss_rate()
        );
    }
}
