//! Quickstart: compile one benchmark with the HiDISC compiler and run it
//! on all four machine models of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hidisc_suite::exec_env_of;
use hidisc_suite::hidisc::{run_model, MachineConfig, Model};
use hidisc_suite::slicer::{compile, CompilerConfig};
use hidisc_suite::workloads::{by_name, Scale};

fn main() {
    // 1. Pick a workload: the Update stressmark (indexed
    //    gather-modify-scatter — the paper's best case).
    let w = by_name("update", Scale::Test, 42).expect("update is in the suite");
    println!(
        "workload: {} ({} static instructions)",
        w.name,
        w.prog.len()
    );

    // 2. Compile: stream separation + cache profiling + CMAS extraction.
    let env = exec_env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).expect("compiles");
    println!(
        "compiled: CS {} instrs, AS {} instrs, {} CMAS thread(s), {} probable-miss load(s)",
        compiled.cs.len(),
        compiled.access.len(),
        compiled.cmas.len(),
        (0..compiled.original.len())
            .filter(|&pc| compiled.original.annot(pc).probable_miss)
            .count(),
    );

    // 3. Simulate every model and compare.
    println!(
        "\n{:<14} {:>10} {:>8} {:>9} {:>10}",
        "model", "cycles", "IPC", "L1 miss", "speed-up"
    );
    let mut baseline_cycles = 0;
    for model in Model::ALL {
        let st = run_model(model, &compiled, &env, MachineConfig::paper()).expect("runs");
        if model == Model::Superscalar {
            baseline_cycles = st.cycles;
        }
        println!(
            "{:<14} {:>10} {:>8.3} {:>8.1}% {:>9.2}x",
            model.name(),
            st.cycles,
            st.ipc(),
            100.0 * st.l1_miss_rate(),
            baseline_cycles as f64 / st.cycles as f64,
        );
    }

    // 4. The architectural results are identical across models — the
    //    machine is checked against the sequential reference.
    let (addr, want) = w.expected.expect("update checks its result");
    println!("\nresult word at {addr:#x} = {want} (verified on every model)");
}
