//! End-to-end exercises of the simulation service over real sockets:
//! duplicate coalescing (N identical POSTs → one simulation, results
//! byte-identical to a direct `Machine::run`), bounded-queue
//! backpressure (429 + Retry-After), wall-clock timeout mapping,
//! typed 400s for bad requests, and disk-cache persistence across a
//! service restart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hidisc_serve::{JobSpec, ServeConfig, Service};
use hidisc_slicer::{compile, CompilerConfig};

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // `Connection: close` because this helper reads to EOF; the
    // keep-alive path is covered by tests/keepalive.rs.
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

/// The raw `"stats"` object of a job body (it is always the last field).
fn stats_of(body: &str) -> &str {
    let idx = body.find(",\"stats\":").expect("body has stats") + ",\"stats\":".len();
    let end = body.trim_end().len() - 1; // strip the closing `}` of the envelope
    &body[idx..end]
}

fn poll_job(addr: SocketAddr, id: &str) -> Response {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(r.status, 200, "poll failed: {}", r.body);
        let status = json_str(&r.body, "status").expect("status field");
        if status == "done" || status == "error" {
            return r;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let r = request(addr, "GET", "/metrics", "");
    assert_eq!(r.status, 200);
    r.body
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{}", r.body))
}

fn start(workers: usize, queue_depth: usize, cache_dir: Option<std::path::PathBuf>) -> Service {
    let mut b = ServeConfig::builder()
        .workers(workers)
        .queue_depth(queue_depth);
    if let Some(dir) = cache_dir {
        b = b.cache_dir(dir);
    }
    Service::start(b.build().expect("valid serve config")).expect("service start")
}

/// Runs the same job the service would, directly, and returns the stats
/// JSON the service caches.
fn direct_stats(body: &str) -> String {
    let spec = JobSpec::from_json(body.as_bytes()).expect("spec");
    let cfg = spec.config().expect("config");
    let w = hidisc_workloads::by_name(&spec.workload, spec.scale, spec.seed).expect("workload");
    let env = hidisc_bench::env_of(&w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).expect("compile");
    let mut m = hidisc::Machine::new(spec.model, &compiled, &env, cfg);
    m.run(compiled.profile.dyn_instrs).expect("run").to_json()
}

#[test]
fn concurrent_duplicates_run_once_and_match_a_direct_run() {
    let svc = start(2, 8, None);
    let addr = svc.addr();
    let body = r#"{"workload":"dm","scale":"test","seed":2003,"model":"hidisc"}"#;

    let posts: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| s.spawn(move || request(addr, "POST", "/v1/run", body)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let id = posts
        .iter()
        .find_map(|r| json_str(&r.body, "job"))
        .expect("a job id");
    for r in &posts {
        assert!(
            r.status == 200 || r.status == 202,
            "unexpected status {}: {}",
            r.status,
            r.body
        );
        assert_eq!(json_str(&r.body, "job").as_deref(), Some(id.as_str()));
    }

    let done = poll_job(addr, &id);
    assert_eq!(json_str(&done.body, "status").as_deref(), Some("done"));
    assert_eq!(json_str(&done.body, "workload").as_deref(), Some("dm"));

    // Exactly one simulation ran, no matter how many submissions raced.
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 1);

    // The cached stats are byte-identical to a direct Machine::run.
    assert_eq!(stats_of(&done.body), direct_stats(body));

    // A repeat submission is a cache hit and carries the same bytes.
    let again = request(addr, "POST", "/v1/run", body);
    assert_eq!(again.status, 200, "{}", again.body);
    assert!(again.body.contains("\"cached\":true"), "{}", again.body);
    assert_eq!(stats_of(&again.body), direct_stats(body));
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 1);
    assert!(metric(addr, "hidisc_serve_cache_hits_total") >= 1);

    svc.shutdown();
}

#[test]
fn full_queue_answers_429_and_deadlines_map_to_timeouts() {
    // One worker, queue depth one: the first (long) job occupies the
    // worker, the second fills the queue, the third must bounce.
    let svc = start(1, 1, None);
    let addr = svc.addr();

    let long = r#"{"workload":"dm","scale":"large","seed":1,"timeout_ms":400}"#;
    let r1 = request(addr, "POST", "/v1/run", long);
    assert_eq!(r1.status, 202, "{}", r1.body);
    let id1 = json_str(&r1.body, "job").unwrap();

    let r2 = request(
        addr,
        "POST",
        "/v1/run",
        r#"{"workload":"dm","scale":"test","seed":11}"#,
    );
    assert_eq!(r2.status, 202, "{}", r2.body);
    let id2 = json_str(&r2.body, "job").unwrap();

    let r3 = request(
        addr,
        "POST",
        "/v1/run",
        r#"{"workload":"dm","scale":"test","seed":12}"#,
    );
    assert_eq!(r3.status, 429, "{}", r3.body);
    assert!(r3.header("retry-after").is_some(), "Retry-After missing");
    assert!(metric(addr, "hidisc_serve_rejected_total") >= 1);

    // The long job blows its wall-clock budget and reports it as such.
    let done1 = poll_job(addr, &id1);
    assert_eq!(json_str(&done1.body, "status").as_deref(), Some("error"));
    let err = json_str(&done1.body, "error").unwrap();
    assert!(err.contains("wall-clock timeout"), "error was: {err}");

    // The queued job still completes once the worker frees up.
    let done2 = poll_job(addr, &id2);
    assert_eq!(json_str(&done2.body, "status").as_deref(), Some("done"));

    svc.shutdown();
}

#[test]
fn bad_requests_get_typed_400s() {
    let svc = start(1, 4, None);
    let addr = svc.addr();

    let r = request(addr, "POST", "/v1/run", "this is not json");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("malformed request body"), "{}", r.body);

    let r = request(addr, "POST", "/v1/run", r#"{"workload":"no-such-kernel"}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown workload"), "{}", r.body);

    let r = request(
        addr,
        "POST",
        "/v1/run",
        r#"{"workload":"dm","typo_field":1}"#,
    );
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown field"), "{}", r.body);

    // Config validation surfaces the same typed ConfigError message the
    // CLI prints before exiting with code 2, with its stable code as the
    // envelope code.
    let r = request(
        addr,
        "POST",
        "/v1/run",
        r#"{"workload":"dm","scq_depth":0}"#,
    );
    assert_eq!(r.status, 400);
    assert!(r.body.contains("\"code\":\"CFG001\""), "{}", r.body);
    assert!(
        r.body
            .contains("invalid machine config: queues.scq must be at least 1"),
        "{}",
        r.body
    );

    let r = request(addr, "GET", "/no-such-endpoint", "");
    assert_eq!(r.status, 404);
    let r = request(addr, "DELETE", "/v1/run", "");
    assert_eq!(r.status, 405);
    let r = request(addr, "GET", "/v1/jobs/ffffffffffffffff", "");
    assert_eq!(r.status, 404);

    assert!(metric(addr, "hidisc_serve_bad_requests_total") >= 4);

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""));

    svc.shutdown();
}

/// Past `max_connections`, accepts are answered `503` inline instead of
/// spawning handler threads without bound; slots free once a handler
/// finishes.
#[test]
fn connection_cap_answers_503_inline() {
    let svc = Service::start(
        ServeConfig::builder()
            .max_connections(1)
            .build()
            .expect("valid serve config"),
    )
    .expect("service start");
    let addr = svc.addr();

    // Occupy the single reactor slot with an idle keep-alive connection.
    let held = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(200)); // let the reactor register it

    let r = request(addr, "GET", "/healthz", "");
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(r.header("retry-after").is_some(), "Retry-After missing");
    assert!(r.body.contains("too many connections"), "{}", r.body);

    // Freeing the slot lets requests through again.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = request(addr, "GET", "/healthz", "");
        if r.status == 200 {
            assert!(metric(addr, "hidisc_serve_connections_rejected_total") >= 1);
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
    svc.shutdown();
}

/// Terminal (done/failed) job entries are evicted oldest-first past the
/// cache capacity, so a long-lived service does not leak one entry per
/// distinct submission.
#[test]
fn terminal_job_entries_are_bounded() {
    let svc = Service::start(
        ServeConfig::builder()
            .max_jobs(2)
            .build()
            .expect("valid serve config"),
    )
    .expect("service start");
    let addr = svc.addr();

    for seed in 0..5 {
        let body = format!(r#"{{"workload":"dm","scale":"test","seed":{seed}}}"#);
        let r = request(addr, "POST", "/v1/run", &body);
        assert!(r.status == 200 || r.status == 202, "{}", r.body);
        let id = json_str(&r.body, "job").expect("job id");
        let done = poll_job(addr, &id);
        assert_eq!(json_str(&done.body, "status").as_deref(), Some("done"));
    }

    // Five distinct jobs ran, but only max_jobs terminal entries
    // remain registered.
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 5);
    assert!(metric(addr, "hidisc_serve_job_entries") <= 2);
    svc.shutdown();
}

#[test]
fn disk_cache_survives_a_service_restart() {
    let dir = std::env::temp_dir().join(format!("hidisc-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body = r#"{"workload":"tc","scale":"test","seed":5}"#;

    let first_stats;
    {
        let svc = start(1, 4, Some(dir.clone()));
        let addr = svc.addr();
        let r = request(addr, "POST", "/v1/run", body);
        assert_eq!(r.status, 202, "{}", r.body);
        let id = json_str(&r.body, "job").unwrap();
        let done = poll_job(addr, &id);
        first_stats = stats_of(&done.body).to_string();

        // Graceful shutdown over HTTP; wait() returns once torn down.
        let r = request(addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        svc.wait();
    }

    // A fresh instance sees the persisted result: cache hit, no run.
    let svc = start(1, 4, Some(dir.clone()));
    let addr = svc.addr();
    let r = request(addr, "POST", "/v1/run", body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cached\":true"), "{}", r.body);
    assert_eq!(stats_of(&r.body), first_stats);
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 0);
    svc.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// A second job that differs from the first only in its cycle budget
/// shares the simulated prefix: the service restores the warm checkpoint
/// instead of re-simulating from cycle zero, and still produces
/// byte-identical simulated results.
#[test]
fn warm_start_restores_shared_prefix_for_budget_variants() {
    let dir = std::env::temp_dir().join(format!("hidisc-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = Service::start(
        ServeConfig::builder()
            .workers(1)
            .cache_dir(dir.clone())
            .warm_checkpoint_cycle(2_000)
            .build()
            .expect("valid serve config"),
    )
    .expect("service start");
    let addr = svc.addr();

    // dm/test runs ~20k cycles: both budgets are ample, so both jobs
    // complete identically — but the budget is part of the job key, so
    // the second submission is neither a coalesce nor a result-cache hit.
    let a = r#"{"workload":"dm","scale":"test","seed":7,"model":"hidisc","max_cycles":500000}"#;
    let b = r#"{"workload":"dm","scale":"test","seed":7,"model":"hidisc","max_cycles":600000}"#;

    let r = request(addr, "POST", "/v1/run", a);
    assert_eq!(r.status, 202, "{}", r.body);
    let id_a = json_str(&r.body, "job").unwrap();
    let done_a = poll_job(addr, &id_a);
    assert_eq!(json_str(&done_a.body, "status").as_deref(), Some("done"));
    // The first run was cold: it simulated (and checkpointed) the prefix.
    assert_eq!(metric(addr, "hidisc_serve_warm_restores_total"), 0);

    let r = request(addr, "POST", "/v1/run", b);
    assert_eq!(r.status, 202, "{}", r.body);
    let id_b = json_str(&r.body, "job").unwrap();
    assert_ne!(id_a, id_b, "budget variants must be distinct jobs");
    let done_b = poll_job(addr, &id_b);
    assert_eq!(json_str(&done_b.body, "status").as_deref(), Some("done"));

    // The second run simulated, but started from the restored checkpoint
    // — with simulated results identical to a cold direct run.
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 2);
    assert_eq!(metric(addr, "hidisc_serve_warm_restores_total"), 1);
    assert_eq!(stats_of(&done_a.body), stats_of(&done_b.body));
    assert_eq!(stats_of(&done_b.body), direct_stats(b));

    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A custom program that fails static verification answers 400 with the
/// verifier's located diagnostic; a clean one slices, runs and caches
/// like any named workload.
#[test]
fn verifier_rejected_program_answers_400_with_the_diagnostic() {
    let svc = start(1, 4, None);
    let addr = svc.addr();

    // `send LDQ, r1` operates on an architectural queue from the
    // sequential source program: QB004 at orig@1.
    let bad = r#"{"program":"li r1, 1\nsend LDQ, r1\nhalt"}"#;
    let r = request(addr, "POST", "/v1/run", bad);
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("\"code\":\"QB004\""), "{}", r.body);
    assert!(r.body.contains("orig@1"), "{}", r.body);
    assert!(metric(addr, "hidisc_serve_bad_requests_total") >= 1);

    // The clean variant is admitted, simulated and content-addressed.
    let good = r#"{"program":"li r1, 64\nsd r1, 0(r1)\nld r2, 0(r1)\nhalt"}"#;
    let r = request(addr, "POST", "/v1/run", good);
    assert!(r.status == 200 || r.status == 202, "{}", r.body);
    let id = json_str(&r.body, "job").expect("job id");
    let done = poll_job(addr, &id);
    assert_eq!(
        json_str(&done.body, "status").as_deref(),
        Some("done"),
        "{}",
        done.body
    );
    assert_eq!(json_str(&done.body, "workload").as_deref(), Some("custom"));

    // Resubmission is a cache hit (the program text is in the job key).
    let r = request(addr, "POST", "/v1/run", good);
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cached\":true"), "{}", r.body);
    svc.shutdown();
}
