//! Property tests for the byte-budget result cache: under arbitrary
//! interleavings of inserts and lookups, the memory tier never exceeds
//! its byte budget, and eviction is strictly oldest-first (an explicit
//! recency-list oracle predicts exactly which keys survive).

use std::collections::HashMap;
use std::sync::Arc;

use hidisc_serve::cache::ResultCache;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `key` with a payload of `size` bytes.
    Insert { key: u64, size: usize },
    /// Look `key` up (refreshes recency on a hit).
    Get { key: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12, 1usize..40).prop_map(|(key, size)| Op::Insert { key, size }),
        (0u64..12).prop_map(|key| Op::Get { key }),
    ]
}

/// Reference model: keys in recency order (least recent first) with
/// their sizes; eviction pops from the front until the total fits.
struct Oracle {
    budget: usize,
    order: Vec<u64>,
    size: HashMap<u64, usize>,
}

impl Oracle {
    fn total(&self) -> usize {
        self.order.iter().map(|k| self.size[k]).sum()
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn insert(&mut self, key: u64, size: usize) {
        self.order.retain(|&k| k != key);
        self.size.remove(&key);
        if size > self.budget {
            return; // oversized payloads skip the memory tier
        }
        self.order.push(key);
        self.size.insert(key, size);
        while self.total() > self.budget {
            let evicted = self.order.remove(0); // strictly oldest-first
            self.size.remove(&evicted);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_budget_is_never_exceeded_and_eviction_is_oldest_first(
        budget in 1usize..120,
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        // Memory-only cache: no disk tier, so a `get` miss stays a miss
        // and membership is exactly the memory tier's.
        let mut cache = ResultCache::new(budget, None);
        let mut oracle = Oracle { budget, order: Vec::new(), size: HashMap::new() };

        for op in &ops {
            match *op {
                Op::Insert { key, size } => {
                    cache.insert(key, Arc::new("x".repeat(size)));
                    oracle.insert(key, size);
                }
                Op::Get { key } => {
                    let hit = cache.get(key).is_some();
                    prop_assert_eq!(hit, oracle.size.contains_key(&key),
                        "get({}) disagreed with the oracle", key);
                    oracle.touch(key);
                }
            }
            // The budget is a hard ceiling at every step...
            prop_assert!(cache.bytes() <= budget,
                "cache holds {} bytes over the {} budget", cache.bytes(), budget);
            // ...and the accounting matches the oracle exactly.
            prop_assert_eq!(cache.bytes(), oracle.total());
            prop_assert_eq!(cache.len(), oracle.order.len());
        }

        // Final membership is exactly the oracle's surviving set — i.e.
        // every eviction removed precisely the least-recently-used key.
        for key in 0u64..12 {
            prop_assert_eq!(
                cache.get(key).is_some(),
                oracle.size.contains_key(&key),
                "membership of key {} diverged", key
            );
        }
    }
}
