//! The request-observability contract of the serve stack: every response
//! carries an `X-Request-Id` that also appears in the access log, the
//! error envelope and the job record; `/healthz` reports build identity
//! and uptime; and the full `/metrics` page is well-formed Prometheus
//! text exposition (HELP/TYPE per family, cumulative monotone histogram
//! buckets, `le="+Inf"` equal to `_count`).

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hidisc::telemetry::log::{Level, LogFormat};
use hidisc_serve::{ServeConfig, Service};

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    fn request_id(&self) -> &str {
        self.header("x-request-id").expect("X-Request-Id header")
    }
}

/// One `Connection: close` request with optional extra header lines
/// (each "Name: value", no CRLF).
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[&str],
    body: &str,
) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n");
    for h in extra_headers {
        req.push_str(h);
        req.push_str("\r\n");
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    request_with(addr, method, path, &[], body)
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn poll_job(addr: SocketAddr, id: &str) -> Response {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(r.status, 200, "poll failed: {}", r.body);
        let status = json_str(&r.body, "status").expect("status field");
        if status == "done" || status == "error" {
            return r;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The request id is minted once per request and travels everywhere: the
/// response header, the job body, the job record, the error envelope and
/// every structured log line the request produced.
#[test]
fn request_ids_thread_through_responses_jobs_and_logs() {
    let dir = std::env::temp_dir().join(format!("hidisc-serve-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("log dir");
    let log_path = dir.join("access.log");

    let svc = Service::start(
        ServeConfig::builder()
            .workers(1)
            .log_level(Some(Level::Info))
            .log_format(LogFormat::Json)
            .log_file(log_path.clone())
            .build()
            .expect("config"),
    )
    .expect("service start");
    let addr = svc.addr();

    // A generated id is echoed in the header and the job body, and the
    // job record keeps the creating request's id for later polls.
    let body = r#"{"workload":"dm","scale":"test","seed":6101}"#;
    let r = request(addr, "POST", "/v1/run", body);
    assert!(r.status == 200 || r.status == 202, "{}", r.body);
    let rid = r.request_id().to_string();
    assert_eq!(rid.len(), 16, "generated ids are 16 hex digits: {rid}");
    assert!(rid.bytes().all(|b| b.is_ascii_hexdigit()), "{rid}");
    assert_eq!(
        json_str(&r.body, "requestId").as_deref(),
        Some(rid.as_str())
    );
    let job = json_str(&r.body, "job").expect("job id");
    let done = poll_job(addr, &job);
    assert_eq!(
        json_str(&done.body, "requestId").as_deref(),
        Some(rid.as_str()),
        "job record should keep the creating request's id: {}",
        done.body
    );

    // An acceptable inbound id is honored end to end.
    let r = request_with(
        addr,
        "GET",
        "/healthz",
        &["X-Request-Id: client-id.42_A-Z"],
        "",
    );
    assert_eq!(r.request_id(), "client-id.42_A-Z");

    // An unacceptable inbound id (forbidden characters) is replaced.
    let r = request_with(addr, "GET", "/healthz", &["X-Request-Id: bad id!"], "");
    assert_ne!(r.request_id(), "bad id!");
    assert_eq!(r.request_id().len(), 16);

    // Error envelopes carry the same id as the response header.
    let r = request(addr, "POST", "/v1/run", "not json");
    assert_eq!(r.status, 400, "{}", r.body);
    let err_rid = r.request_id().to_string();
    assert!(
        r.body.contains(&format!("\"request_id\":\"{err_rid}\"")),
        "{}",
        r.body
    );

    // /healthz reports build identity and uptime.
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(
        json_str(&health.body, "version").as_deref(),
        Some(hidisc_serve::VERSION)
    );
    assert_eq!(
        json_str(&health.body, "gitSha").as_deref(),
        Some(hidisc_serve::GIT_SHA)
    );
    assert!(health.body.contains("\"uptimeMs\":"), "{}", health.body);

    svc.shutdown();

    // Every JSON log line the submission produced carries the same id:
    // the access-log line and the job lifecycle events.
    let log = std::fs::read_to_string(&log_path).expect("read access log");
    let lines: Vec<&str> = log.lines().collect();
    assert!(!lines.is_empty(), "empty access log");
    for l in &lines {
        assert!(
            l.starts_with("{\"ts\":") && l.ends_with('}'),
            "not a JSON line: {l}"
        );
    }
    let with_rid = |event: &str| -> Vec<&str> {
        lines
            .iter()
            .copied()
            .filter(|l| {
                l.contains(&format!("\"event\":\"{event}\""))
                    && l.contains(&format!("\"request_id\":\"{rid}\""))
            })
            .collect()
    };
    assert_eq!(with_rid("request").len(), 1, "access log line: {log}");
    assert_eq!(with_rid("job_queued").len(), 1, "job_queued line: {log}");
    let done_lines = with_rid("job_done");
    assert_eq!(done_lines.len(), 1, "job_done line: {log}");
    for field in ["queue_wait_ms", "sim_ms", "serialize_ms"] {
        assert!(
            done_lines[0].contains(&format!("\"{field}\":")),
            "phase field {field} missing: {}",
            done_lines[0]
        );
    }
    let access = with_rid("request")[0];
    for field in [
        "method",
        "path",
        "route",
        "status",
        "bytes",
        "dur_us",
        "disposition",
    ] {
        assert!(
            access.contains(&format!("\"{field}\":")),
            "access-log field {field} missing: {access}"
        );
    }
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"serve_start\"")),
        "{log}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"serve_stop\"")),
        "{log}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// One parsed sample of a Prometheus exposition line.
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn parse_sample(line: &str) -> Sample {
    let (head, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("bad value: {line}"));
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), BTreeMap::new()),
        Some((n, rest)) => {
            let rest = rest.strip_suffix('}').expect("closing brace");
            let mut labels = BTreeMap::new();
            for pair in rest.split("\",") {
                let pair = pair.trim_end_matches('"');
                let (k, v) = pair.split_once("=\"").unwrap_or_else(|| {
                    panic!("bad label pair {pair:?} in {line}");
                });
                labels.insert(k.to_string(), v.to_string());
            }
            (n.to_string(), labels)
        }
    };
    Sample {
        name,
        labels,
        value,
    }
}

/// The family a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Serves one request of every disposition (submitted, cache_hit,
/// coalesced, and a parse error) so all the RED families have samples,
/// then validates the whole `/metrics` page against the text exposition
/// rules.
#[test]
fn metrics_page_is_valid_prometheus_exposition() {
    let svc = Service::start(ServeConfig::builder().workers(1).build().expect("config"))
        .expect("service start");
    let addr = svc.addr();

    // submitted → done
    let body = r#"{"workload":"dm","scale":"test","seed":6201}"#;
    let r = request(addr, "POST", "/v1/run", body);
    assert!(r.status == 200 || r.status == 202, "{}", r.body);
    let id = json_str(&r.body, "job").expect("job id");
    poll_job(addr, &id);
    // cache_hit
    let r = request(addr, "POST", "/v1/run", body);
    assert_eq!(r.status, 200, "{}", r.body);
    // coalesced: a slow job occupies the single worker, its duplicate
    // coalesces onto the running entry.
    let slow = r#"{"workload":"dm","scale":"large","seed":6202,"timeout_ms":300}"#;
    let r1 = request(addr, "POST", "/v1/run", slow);
    assert_eq!(r1.status, 202, "{}", r1.body);
    let r2 = request(addr, "POST", "/v1/run", slow);
    assert!(r2.status == 200 || r2.status == 202, "{}", r2.body);
    poll_job(addr, &json_str(&r1.body, "job").unwrap());
    // parse error (4xx on the "other" route)
    let r = request(addr, "POST", "/v1/run", "not json");
    assert_eq!(r.status, 400);

    let page = request(addr, "GET", "/metrics", "");
    assert_eq!(page.status, 200);
    let text = &page.body;

    let mut helps: HashMap<String, String> = HashMap::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP name and text");
            assert!(
                helps.insert(name.to_string(), help.to_string()).is_none(),
                "duplicate HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE name and kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&ty),
                "unknown TYPE {ty} for {name}"
            );
            assert!(
                types.insert(name.to_string(), ty.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else {
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            samples.push(parse_sample(line));
        }
    }

    // Every sample belongs to a family with both HELP and TYPE.
    for s in &samples {
        let family = family_of(&s.name, &types);
        assert!(types.contains_key(family), "no TYPE for {}", s.name);
        assert!(helps.contains_key(family), "no HELP for {}", s.name);
    }

    // Histogram series: buckets cumulative and monotone in le, with
    // `le="+Inf"` equal to the series' `_count`, and `_sum` present.
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            if types.get(base).map(String::as_str) != Some("histogram") {
                continue;
            }
            let le = s.labels.get("le").expect("bucket has le");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap_or_else(|_| panic!("bad le {le:?}"))
            };
            let mut key_labels: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| *k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            key_labels.sort();
            series
                .entry((base.to_string(), key_labels.join(",")))
                .or_default()
                .push((le, s.value));
        }
    }
    assert!(!series.is_empty(), "no histogram series in:\n{text}");
    let flat_value = |name: &str, labels: &str| -> f64 {
        samples
            .iter()
            .find(|s| {
                let mut ls: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                ls.sort();
                s.name == name && ls.join(",") == labels
            })
            .unwrap_or_else(|| panic!("missing sample {name}{{{labels}}}"))
            .value
    };
    for ((base, labels), buckets) in &series {
        let les: Vec<f64> = buckets.iter().map(|(le, _)| *le).collect();
        assert!(
            les.windows(2).all(|w| w[0] < w[1]),
            "{base}{{{labels}}}: le edges not ascending: {les:?}"
        );
        assert_eq!(
            *les.last().unwrap(),
            f64::INFINITY,
            "{base}{{{labels}}}: no +Inf bucket"
        );
        let counts: Vec<f64> = buckets.iter().map(|(_, c)| *c).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "{base}{{{labels}}}: buckets not cumulative: {counts:?}"
        );
        let count = flat_value(&format!("{base}_count"), labels);
        assert_eq!(
            *counts.last().unwrap(),
            count,
            "{base}{{{labels}}}: +Inf bucket != _count"
        );
        flat_value(&format!("{base}_sum"), labels); // must exist
    }

    // The tentpole families are present and populated.
    let series_count = |base: &str| series.keys().filter(|(b, _)| b == base).count();
    assert!(
        series_count("hidisc_serve_request_duration_seconds") >= 2,
        "request-duration histogram missing routes:\n{text}"
    );
    assert!(
        series_count("hidisc_serve_job_phase_seconds") >= 3,
        "job-phase histogram missing phases:\n{text}"
    );
    assert!(series_count("hidisc_serve_time_to_first_byte_seconds") >= 1);
    assert!(
        text.contains("hidisc_build_info{version=\""),
        "build info gauge missing:\n{text}"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "hidisc_serve_requests_by_route_total"
                && s.labels.get("route").map(String::as_str) == Some("run")
                && s.labels.get("class").map(String::as_str) == Some("2xx")),
        "run/2xx counter missing:\n{text}"
    );
    // The old twin gauge is gone; the canonical one remains.
    assert!(
        !text.contains("hidisc_serve_connections_active"),
        "deprecated twin gauge resurfaced:\n{text}"
    );
    assert!(text.contains("hidisc_serve_open_connections "), "{text}");
    assert!(text.contains("hidisc_serve_uptime_seconds "), "{text}");

    svc.shutdown();
}
