//! Keep-alive, pipelining and versioned-API behavior of the reactor:
//! N sequential requests down one connection are byte-identical to N
//! fresh-connection runs, pipelined requests come back in order, legacy
//! unversioned paths answer `308` to their `/v1/` twin, and the
//! structured error envelope carries stable codes.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hidisc_serve::{ServeConfig, Service};

fn start() -> Service {
    Service::start(ServeConfig::builder().workers(1).build().expect("config"))
        .expect("service start")
}

/// Splits a raw byte stream into complete HTTP responses (status line +
/// headers + `Content-Length` body each).
fn split_responses(mut raw: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    while !raw.is_empty() {
        let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
            break;
        };
        let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
        let len: usize = head
            .lines()
            .find_map(|l| {
                let (n, v) = l.split_once(':')?;
                n.eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })
            .expect("Content-Length");
        let total = head_end + 4 + len;
        assert!(raw.len() >= total, "truncated response in stream");
        out.push(String::from_utf8(raw[..total].to_vec()).expect("UTF-8 response"));
        raw = &raw[total..];
    }
    out
}

/// Reads until `n` complete responses have arrived (or the read times
/// out), returning the raw bytes.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut raw = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut chunk = [0u8; 4096];
    while split_responses(&raw).len() < n && Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => raw.extend_from_slice(&chunk[..got]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    raw
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
}

/// Strips the parts that legitimately differ across requests: the
/// per-request `X-Request-Id` header, the `Content-Length` (the healthz
/// body's `uptimeMs` digit count can change mid-test) and the `uptimeMs`
/// value itself. Everything else must match byte for byte.
fn normalize(resp: &str) -> String {
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    let head: String = head
        .lines()
        .filter(|l| {
            let name = l.split(':').next().unwrap_or("");
            !name.eq_ignore_ascii_case("x-request-id")
                && !name.eq_ignore_ascii_case("content-length")
        })
        .map(|l| format!("{l}\r\n"))
        .collect();
    let mut body = body.to_string();
    if let Some(at) = body.find("\"uptimeMs\":") {
        let digits_from = at + "\"uptimeMs\":".len();
        let digits = body[digits_from..]
            .bytes()
            .take_while(|b| b.is_ascii_digit())
            .count();
        body.replace_range(digits_from..digits_from + digits, "N");
    }
    format!("{head}\r\n{body}")
}

/// Extracts the value of a response header (case-insensitive name).
fn header<'a>(resp: &'a str, name: &str) -> Option<&'a str> {
    resp.split("\r\n\r\n").next()?.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn sequential_keep_alive_matches_fresh_connections_byte_for_byte() {
    let svc = start();
    let addr = svc.addr();
    const N: usize = 8;

    // N requests down one keep-alive connection, awaiting each response
    // before sending the next.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut kept = Vec::new();
    for _ in 0..N {
        stream.write_all(get("/healthz").as_bytes()).expect("write");
        let raw = read_responses(&mut stream, 1);
        let resp = split_responses(&raw);
        assert_eq!(resp.len(), 1, "expected one response, got: {raw:?}");
        kept.push(normalize(&resp[0]));
    }
    drop(stream);

    // The same N requests, each on a fresh connection.
    let mut fresh = Vec::new();
    for _ in 0..N {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(get("/healthz").as_bytes()).expect("write");
        let raw = read_responses(&mut s, 1);
        let resp = split_responses(&raw);
        assert_eq!(resp.len(), 1);
        fresh.push(normalize(&resp[0]));
    }

    assert_eq!(kept, fresh, "keep-alive responses diverge from fresh ones");
    for r in &kept {
        assert!(r.contains("Connection: keep-alive\r\n"), "{r}");
        assert!(r.starts_with("HTTP/1.1 200 "), "{r}");
    }
    svc.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let svc = start();
    let addr = svc.addr();
    const N: usize = 16;

    let mut stream = TcpStream::connect(addr).expect("connect");
    // All N requests in one write, before reading anything.
    let mut burst = String::new();
    for i in 0..N {
        // Alternate paths so in-order delivery is observable.
        burst.push_str(&get(if i % 2 == 0 {
            "/healthz"
        } else {
            "/v1/jobs/zzz"
        }));
    }
    stream.write_all(burst.as_bytes()).expect("write burst");
    let raw = read_responses(&mut stream, N);
    let resp = split_responses(&raw);
    assert_eq!(resp.len(), N, "missing pipelined responses");
    for (i, r) in resp.iter().enumerate() {
        if i % 2 == 0 {
            assert!(r.starts_with("HTTP/1.1 200 "), "response {i}: {r}");
            assert!(r.contains("\"status\":\"ok\""), "response {i}: {r}");
        } else {
            assert!(r.starts_with("HTTP/1.1 404 "), "response {i}: {r}");
            assert!(r.contains("\"code\":\"not_found\""), "response {i}: {r}");
        }
    }
    svc.shutdown();
}

#[test]
fn legacy_paths_redirect_to_their_v1_twin() {
    let svc = start();
    let addr = svc.addr();

    for (path, twin) in [
        ("/run", "/v1/run"),
        ("/jobs/abc", "/v1/jobs/abc"),
        ("/shutdown", "/v1/shutdown"),
    ] {
        let mut s = TcpStream::connect(addr).expect("connect");
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        );
        s.write_all(req.as_bytes()).expect("write");
        let raw = read_responses(&mut s, 1);
        let resp = split_responses(&raw);
        assert_eq!(resp.len(), 1, "{path}");
        let r = &resp[0];
        assert!(r.starts_with("HTTP/1.1 308 "), "{path}: {r}");
        assert!(r.contains(&format!("Location: {twin}\r\n")), "{path}: {r}");
        assert!(r.contains("\"code\":\"moved_permanently\""), "{path}: {r}");
    }
    // The probes stay unversioned — no redirect.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(get("/healthz").as_bytes()).expect("write");
    let raw = read_responses(&mut s, 1);
    assert!(split_responses(&raw)[0].starts_with("HTTP/1.1 200 "));
    svc.shutdown();
}

#[test]
fn sweep_endpoint_is_live_and_validates_its_body() {
    let svc = start();
    let addr = svc.addr();
    // An empty body is a 400 with the parse diagnostic — not the old
    // 501 "reserved" answer: the route is live.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(
        b"POST /v1/sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    )
    .expect("write");
    let raw = read_responses(&mut s, 1);
    let r = &split_responses(&raw)[0];
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    assert!(r.contains("\"code\":\"bad_request\""), "{r}");
    // A bad grid gets the planner's diagnostic.
    let mut s = TcpStream::connect(addr).expect("connect");
    let body = r#"{"workloads":["no-such-workload"]}"#;
    let req = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("write");
    let raw = read_responses(&mut s, 1);
    let r = &split_responses(&raw)[0];
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    assert!(r.contains("unknown workload"), "{r}");
    svc.shutdown();
}

#[test]
fn parse_errors_answer_the_envelope_and_close() {
    let svc = start();
    let addr = svc.addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
    let raw = read_responses(&mut s, 1);
    let resp = split_responses(&raw);
    assert_eq!(resp.len(), 1);
    let r = &resp[0];
    assert!(r.starts_with("HTTP/1.1 400 "), "{r}");
    assert!(r.contains("\"code\":\"bad_request\""), "{r}");
    assert!(r.contains("Connection: close\r\n"), "{r}");
    // The envelope and the response header agree on the request id.
    let rid = header(r, "x-request-id").expect("X-Request-Id header");
    assert!(!rid.is_empty(), "{r}");
    assert!(
        r.contains(&format!("\"request_id\":\"{rid}\"")),
        "envelope request_id should match the X-Request-Id header: {r}"
    );
    // The server closes after the error: the next read sees EOF.
    let mut sink = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match s.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                assert!(Instant::now() < deadline, "connection never closed");
            }
            Err(_) => break,
        }
    }
    svc.shutdown();
}

#[test]
fn invalid_serve_configs_are_typed_errors() {
    use hidisc_serve::ServeConfigError;

    let err = ServeConfig::builder().addr("nonsense").build().unwrap_err();
    assert_eq!(err.code(), "SRV001");
    assert!(err.to_string().contains("host:port"), "{err}");

    let err = ServeConfig::builder().workers(0).build().unwrap_err();
    assert_eq!(err.code(), "SRV002");
    assert_eq!(err, ServeConfigError::Zero { what: "workers" });

    let err = ServeConfig::builder().queue_depth(0).build().unwrap_err();
    assert_eq!(err.code(), "SRV002");

    let err = ServeConfig::builder().cache_bytes(0).build().unwrap_err();
    assert_eq!(err.code(), "SRV002");

    let err = ServeConfig::builder()
        .idle_timeout_ms(0)
        .build()
        .unwrap_err();
    assert_eq!(err.code(), "SRV003");
    assert!(err.to_string().contains("idle_timeout_ms"), "{err}");

    // The happy path resolves workers and keeps what was set.
    let cfg = ServeConfig::builder()
        .queue_depth(7)
        .cache_bytes(1 << 20)
        .max_connections(33)
        .idle_timeout_ms(1_234)
        .build()
        .expect("valid");
    assert!(cfg.workers() >= 1);
    assert_eq!(cfg.queue_depth(), 7);
    assert_eq!(cfg.cache_bytes(), 1 << 20);
    assert_eq!(cfg.max_connections(), 33);
    assert_eq!(cfg.idle_timeout(), Duration::from_millis(1_234));
}

/// Drives a ramp through the public benchmark API against a live
/// service: every connection established, every response received.
#[test]
fn connection_ramp_holds_keep_alive_connections_without_drops() {
    let svc = Service::start(
        ServeConfig::builder()
            .workers(1)
            .max_connections(256)
            .build()
            .expect("config"),
    )
    .expect("service start");
    let addr: SocketAddr = svc.addr();

    let mut cfg = hidisc_serve::scale::RampConfig::new(addr);
    cfg.conns = 128;
    cfg.rounds = 2;
    let report = hidisc_serve::scale::ramp(&cfg).expect("ramp");
    assert_eq!(report.established, 128, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");
    assert_eq!(report.responses_ok, 256, "{report:?}");
    assert_eq!(report.responses_err, 0, "{report:?}");
    assert_eq!(report.missing_request_id, 0, "{report:?}");
    assert_eq!(report.sweep_points, 8, "{report:?}");
    assert!(report.sweep_points_per_sec() > 0.0, "{report:?}");
    let json = report.to_json();
    assert!(json.contains("\"bench\":\"serve_conn_ramp\""), "{json}");
    assert!(json.contains("\"missingRequestId\":0"), "{json}");
    assert!(json.contains("\"sweepPoints\":8"), "{json}");
    svc.shutdown();
}
