//! End-to-end exercises of the sweep orchestrator over real sockets:
//! overlapping grids reuse the content-addressed cache (exactly one
//! simulation per unique point), the NDJSON stream carries one line
//! per point, a two-shard farm renders figure CSV byte-identical to a
//! single node (and to a direct in-process computation), and a dead
//! shard degrades to local fallback instead of failing the sweep.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use hidisc_bench::{fig8, run_suite, Fig8Report, Report};
use hidisc_serve::client::http_request;
use hidisc_serve::{ServeConfig, Service};
use hidisc_workloads::Scale;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let r = http_request(
        &addr.to_string(),
        method,
        path,
        body,
        Duration::from_secs(60),
    )
    .expect("request");
    (r.status, r.body)
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn json_num(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..]
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(body.len() - start)
        + start;
    body[start..end].parse().ok()
}

/// Polls `GET /v1/sweeps/<id>` until the sweep reports `done`.
fn poll_sweep(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/sweeps/{id}"), "");
        assert_eq!(status, 200, "poll failed: {body}");
        if json_str(&body, "status").as_deref() == Some("done") {
            return body;
        }
        assert!(Instant::now() < deadline, "sweep {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
}

fn start_plain() -> Service {
    let cfg = ServeConfig::builder()
        .workers(2)
        .queue_depth(64)
        .build()
        .expect("valid serve config");
    Service::start(cfg).expect("service start")
}

/// The fig8 sweep body: the full 7-benchmark suite at test scale with
/// the paper seed, rendered as fig8.
fn fig8_grid() -> String {
    let names: Vec<String> = hidisc_workloads::suite(Scale::Test, 0)
        .into_iter()
        .map(|w| format!("\"{}\"", w.name))
        .collect();
    format!(
        "{{\"workloads\":[{}],\"scales\":[\"test\"],\"seeds\":[2003],\
         \"render\":\"fig8\",\"stream\":false}}",
        names.join(",")
    )
}

#[test]
fn overlapping_grids_simulate_each_unique_point_exactly_once() {
    let svc = start_plain();
    let addr = svc.addr();

    // Seed the cache through the plain run endpoint first.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/run",
        r#"{"workload":"dm","model":"superscalar"}"#,
    );
    assert!(status == 200 || status == 202, "{status} {body}");
    let job = json_str(&body, "job").expect("job id");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, b) = request(addr, "GET", &format!("/v1/jobs/{job}"), "");
        if json_str(&b, "status").as_deref() == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "seed job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 1);

    // Sweep over dm (4 models): the superscalar point must come from
    // the cache; only the other 3 simulate.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"workloads":["dm"],"stream":false}"#,
    );
    assert_eq!(status, 202, "{body}");
    let sweep = json_str(&body, "sweep").expect("sweep id");
    let done = poll_sweep(addr, &sweep);
    assert_eq!(json_num(&done, "total"), Some(4), "{done}");
    assert_eq!(json_num(&done, "cached"), Some(1), "{done}");
    assert_eq!(json_num(&done, "simulated"), Some(3), "{done}");
    assert_eq!(json_num(&done, "failed"), Some(0), "{done}");
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 4);

    // An overlapping grid: every dm point is already cached, only the
    // 4 pointer points simulate. Exactly one simulation per unique
    // point, across endpoints and sweeps.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"workloads":["dm","pointer"],"stream":false}"#,
    );
    assert_eq!(status, 202, "{body}");
    let sweep2 = json_str(&body, "sweep").expect("sweep id");
    assert_ne!(sweep, sweep2, "different grids get different ids");
    let done = poll_sweep(addr, &sweep2);
    assert_eq!(json_num(&done, "total"), Some(8), "{done}");
    assert_eq!(json_num(&done, "cached"), Some(4), "{done}");
    assert_eq!(json_num(&done, "simulated"), Some(4), "{done}");
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 8);

    // Re-POSTing an equivalent grid (axis order shuffled) coalesces
    // onto the finished sweep: same id, nothing re-simulated.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"workloads":["pointer","dm"],"stream":false}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_str(&body, "sweep").as_deref(), Some(sweep2.as_str()));
    assert_eq!(metric(addr, "hidisc_serve_sim_runs_total"), 8);
    svc.shutdown();
}

#[test]
fn the_stream_carries_one_line_per_point_with_request_ids() {
    let svc = start_plain();
    let addr = svc.addr();
    // Default stream:true — the response is chunked NDJSON that keeps
    // flowing until the sweep finishes (http_request de-chunks).
    let (status, body) = request(addr, "POST", "/v1/sweep", r#"{"workloads":["tc"]}"#);
    assert_eq!(status, 200, "{body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(
        lines.len(),
        1 + 4 + 1,
        "header + 4 points + summary:\n{body}"
    );
    assert!(lines[0].contains("\"status\":\"accepted\""), "{}", lines[0]);
    assert_eq!(json_num(lines[0], "total"), Some(4), "{}", lines[0]);
    for line in &lines[1..5] {
        assert!(json_str(line, "point").is_some(), "{line}");
        assert!(json_str(line, "requestId").is_some(), "{line}");
        assert_eq!(json_str(line, "status").as_deref(), Some("done"), "{line}");
    }
    assert!(lines[5].contains("\"status\":\"done\""), "{}", lines[5]);
    assert_eq!(json_num(lines[5], "failed"), Some(0), "{}", lines[5]);

    // A replayed POST of the same grid returns the identical history.
    let (status, replay) = request(addr, "POST", "/v1/sweep", r#"{"workloads":["tc"]}"#);
    assert_eq!(status, 200);
    assert_eq!(replay, body, "replay must be byte-identical");
    svc.shutdown();
}

#[test]
fn a_two_shard_farm_renders_fig8_byte_identical_to_a_single_node() {
    // Shard 1 is a plain backend: it needs no shard config of its own
    // because forwarded points arrive as ordinary `POST /v1/run`s.
    let backend = start_plain();
    let front_cfg = ServeConfig::builder()
        .workers(2)
        .queue_depth(64)
        .shard_of(0, 2)
        .peers(vec!["127.0.0.1:1".to_string(), backend.addr().to_string()])
        .build()
        .expect("valid shard config");
    let front = Service::start(front_cfg).expect("front start");
    let addr = front.addr();

    let (status, body) = request(addr, "POST", "/v1/sweep", &fig8_grid());
    assert_eq!(status, 202, "{body}");
    let sweep = json_str(&body, "sweep").expect("sweep id");
    let done = poll_sweep(addr, &sweep);
    assert_eq!(json_num(&done, "total"), Some(28), "{done}");
    assert_eq!(json_num(&done, "failed"), Some(0), "{done}");
    let forwarded = json_num(&done, "forwarded").expect("forwarded count");
    assert!(forwarded > 0, "no points were forwarded: {done}");
    assert!(
        metric(backend.addr(), "hidisc_serve_sim_runs_total") > 0,
        "the backend shard never simulated"
    );

    let (status, farm_csv) = request(addr, "GET", &format!("/v1/sweeps/{sweep}/render"), "");
    assert_eq!(status, 200, "{farm_csv}");

    // Single node, same grid.
    let single = start_plain();
    let (status, body) = request(single.addr(), "POST", "/v1/sweep", &fig8_grid());
    assert_eq!(status, 202, "{body}");
    let sweep1 = json_str(&body, "sweep").expect("sweep id");
    assert_eq!(sweep1, sweep, "the sweep id is topology-independent");
    poll_sweep(single.addr(), &sweep1);
    let (status, single_csv) = request(
        single.addr(),
        "GET",
        &format!("/v1/sweeps/{sweep1}/render"),
        "",
    );
    assert_eq!(status, 200, "{single_csv}");
    assert_eq!(farm_csv, single_csv, "farm and single-node CSV must match");

    // ... and both match a direct in-process fig8 computation.
    let cfg = hidisc_sweep::build_config(None, None, None, None, None, 0).expect("paper config");
    let direct = Fig8Report(fig8(&run_suite(Scale::Test, 2003, cfg))).render_csv();
    assert_eq!(farm_csv, direct, "service CSV must match the direct run");

    front.shutdown();
    single.shutdown();
    backend.shutdown();
}

#[test]
fn a_dead_shard_degrades_to_local_fallback_without_failing_the_sweep() {
    // Reserve a port, then free it: connections to it are refused.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let front_cfg = ServeConfig::builder()
        .workers(2)
        .queue_depth(64)
        .shard_of(0, 2)
        .peers(vec!["127.0.0.1:1".to_string(), dead])
        .build()
        .expect("valid shard config");
    let front = Service::start(front_cfg).expect("front start");
    let addr = front.addr();

    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"workloads":["dm","pointer"],"stream":false}"#,
    );
    assert_eq!(status, 202, "{body}");
    let sweep = json_str(&body, "sweep").expect("sweep id");
    let done = poll_sweep(addr, &sweep);
    assert_eq!(json_num(&done, "total"), Some(8), "{done}");
    assert_eq!(json_num(&done, "failed"), Some(0), "{done}");
    assert_eq!(
        json_num(&done, "forwarded"),
        Some(0),
        "nothing can be forwarded to a dead peer: {done}"
    );
    assert!(
        metric(addr, "hidisc_serve_shard_fallbacks_total") > 0,
        "the dead shard's points must fall back locally"
    );
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("hidisc_serve_shard_healthy{shard=\"1\"} 0"),
        "shard 1 must be marked unhealthy:\n{metrics}"
    );
    front.shutdown();
}
