//! Content-addressed result cache: completed run results keyed by the
//! canonical hash of (machine config, workload, scale, seed, model).
//! In-memory LRU with optional disk persistence, so repeated sweep
//! points return instantly and results survive a service restart.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

struct Entry {
    stamp: u64,
    json: Arc<String>,
}

/// The cache. Not internally synchronised — the service wraps it in the
/// job-registry mutex.
///
/// The memory tier is bounded by **bytes**, not entry count: result
/// payloads range from a few hundred bytes to the better part of a
/// megabyte (interval metrics), so an entry-count cap bounds nothing
/// useful. Past the budget, entries are evicted least-recently-used
/// first until the total fits again.
pub struct ResultCache {
    budget: usize,
    total_bytes: usize,
    stamp: u64,
    map: HashMap<u64, Entry>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// A cache holding at most `budget` bytes of results in memory
    /// (at least 1), persisting to `dir` when given (`<key>.json` files;
    /// created on first insert, read-through on miss).
    pub fn new(budget: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            budget: budget.max(1),
            total_bytes: 0,
            stamp: 0,
            map: HashMap::new(),
            dir,
        }
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn path_of(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Looks `key` up, consulting the disk tier on a memory miss.
    /// Refreshes recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let stamp = self.touch();
        if let Some(e) = self.map.get_mut(&key) {
            e.stamp = stamp;
            return Some(Arc::clone(&e.json));
        }
        let path = self.path_of(key)?;
        let json = std::fs::read_to_string(path).ok()?;
        let json = Arc::new(json);
        self.insert_memory(key, Arc::clone(&json), stamp);
        Some(json)
    }

    /// Inserts a result, persisting it to the disk tier (best-effort —
    /// a read-only cache directory degrades to memory-only).
    pub fn insert(&mut self, key: u64, json: Arc<String>) {
        if let Some(path) = self.path_of(key) {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, json.as_bytes()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        let stamp = self.touch();
        self.insert_memory(key, json, stamp);
    }

    fn insert_memory(&mut self, key: u64, json: Arc<String>, stamp: u64) {
        // A payload bigger than the whole budget never enters the memory
        // tier (it would immediately evict everything *and* still bust
        // the budget); it stays reachable through the disk tier.
        if json.len() > self.budget {
            self.remove(key);
            return;
        }
        self.remove(key);
        self.total_bytes += json.len();
        self.map.insert(key, Entry { stamp, json });
        // Evict oldest-first until the total fits the budget again.
        while self.total_bytes > self.budget {
            let Some((&lru, _)) = self.map.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            self.remove(lru);
        }
    }

    fn remove(&mut self, key: u64) {
        if let Some(e) = self.map.remove(&key) {
            self.total_bytes -= e.json.len();
        }
    }

    /// Results currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Bytes of result payload currently held in memory. Always at most
    /// the construction budget.
    pub fn bytes(&self) -> usize {
        self.total_bytes
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

struct CkEntry {
    stamp: u64,
    bytes: Arc<Vec<u8>>,
}

/// Warm-start checkpoint store: post-fast-forward machine snapshots
/// keyed by [`hidisc::MachineConfig::warm_hash`] extended with the
/// workload identity. Same shape as [`ResultCache`] — in-memory LRU with
/// an optional read-through disk tier — but the payload is the binary
/// checkpoint (`<key>.ck` files), and a restored entry skips the shared
/// run prefix instead of the whole run.
pub struct CheckpointStore {
    cap: usize,
    stamp: u64,
    map: HashMap<u64, CkEntry>,
    dir: Option<PathBuf>,
}

impl CheckpointStore {
    /// A store holding at most `cap` checkpoints in memory (at least 1),
    /// persisting to `dir` when given.
    pub fn new(cap: usize, dir: Option<PathBuf>) -> CheckpointStore {
        CheckpointStore {
            cap: cap.max(1),
            stamp: 0,
            map: HashMap::new(),
            dir,
        }
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn path_of(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.ck")))
    }

    /// Looks `key` up, consulting the disk tier on a memory miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<Vec<u8>>> {
        let stamp = self.touch();
        if let Some(e) = self.map.get_mut(&key) {
            e.stamp = stamp;
            return Some(Arc::clone(&e.bytes));
        }
        let path = self.path_of(key)?;
        let bytes = Arc::new(std::fs::read(path).ok()?);
        self.insert_memory(key, Arc::clone(&bytes), stamp);
        Some(bytes)
    }

    /// Inserts a checkpoint, persisting it to the disk tier (best-effort;
    /// a read-only directory degrades to memory-only).
    pub fn insert(&mut self, key: u64, bytes: Arc<Vec<u8>>) {
        if let Some(path) = self.path_of(key) {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, bytes.as_slice()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        let stamp = self.touch();
        self.insert_memory(key, bytes, stamp);
    }

    fn insert_memory(&mut self, key: u64, bytes: Arc<Vec<u8>>, stamp: u64) {
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some((&lru, _)) = self.map.iter().min_by_key(|(_, e)| e.stamp) {
                self.map.remove(&lru);
            }
        }
        self.map.insert(key, CkEntry { stamp, bytes });
    }

    /// Checkpoints currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn checkpoint_store_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("hidisc-ck-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = CheckpointStore::new(1, Some(dir.clone()));
            s.insert(3, Arc::new(vec![1, 2, 3]));
            s.insert(4, Arc::new(vec![4])); // 3 leaves memory, stays on disk
            assert_eq!(s.get(3).as_deref(), Some(&vec![1, 2, 3]));
        }
        let mut s2 = CheckpointStore::new(4, Some(dir.clone()));
        assert!(s2.is_empty());
        assert_eq!(s2.get(4).as_deref(), Some(&vec![4]));
        assert_eq!(s2.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_lru_evicts_least_recently_used() {
        // Budget fits two 3-byte entries but not three.
        let mut c = ResultCache::new(6, None);
        c.insert(1, val("one")); // 3 bytes
        c.insert(2, val("two")); // 3 bytes
        assert_eq!(c.bytes(), 6);
        assert_eq!(c.get(1).as_deref().map(String::as_str), Some("one"));
        c.insert(3, val("3b!")); // evicts 2 (1 was just touched)
        assert_eq!(c.len(), 2);
        assert_eq!(c.bytes(), 6);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn oversized_entries_skip_the_memory_tier() {
        let dir = std::env::temp_dir().join(format!("hidisc-cache-big-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = ResultCache::new(4, Some(dir.clone()));
        c.insert(1, val("tiny"));
        assert_eq!(c.bytes(), 4);
        c.insert(2, val("way too large for the budget"));
        // The giant entry displaced nothing and used no memory...
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 4);
        // ...but still resolves, read through the disk tier every time.
        assert!(c.get(2).is_some());
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100, None);
        c.insert(1, val("aaaa"));
        c.insert(1, val("bb"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 2);
        assert_eq!(c.get(1).as_deref().map(String::as_str), Some("bb"));
    }

    #[test]
    fn disk_tier_round_trips_and_survives_memory_eviction() {
        let dir = std::env::temp_dir().join(format!("hidisc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(5, Some(dir.clone()));
            c.insert(7, val("seven"));
            c.insert(8, val("eight")); // 7 leaves memory, stays on disk
            assert_eq!(c.get(7).as_deref().map(String::as_str), Some("seven"));
        }
        // A fresh instance (fresh process in real life) reads through.
        let mut c2 = ResultCache::new(64, Some(dir.clone()));
        assert!(c2.is_empty());
        assert_eq!(c2.get(8).as_deref().map(String::as_str), Some("eight"));
        assert_eq!(c2.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
