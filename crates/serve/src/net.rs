//! Per-connection read/write state machine for the reactor: a
//! non-blocking socket plus an unparsed-input buffer and a pending-output
//! buffer, with HTTP/1.1 keep-alive and pipelining handled by parsing as
//! many complete requests as have arrived and queueing their responses
//! in order.
//!
//! The machine is deliberately free of epoll knowledge: the reactor calls
//! [`Conn::fill`] on read readiness, [`Conn::process`] to turn buffered
//! bytes into buffered responses, and [`Conn::flush`] on write
//! readiness, then reads [`Conn::wants_write`]/[`Conn::done`] to decide
//! interest and lifetime.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crate::http::{self, ParseError, Request};
use crate::Counters;

/// One routed response, before rendering.
pub(crate) struct Reply {
    pub status: u16,
    pub content_type: &'static str,
    pub extra: Vec<(&'static str, String)>,
    pub body: String,
    /// Force the connection closed after this response regardless of what
    /// the request asked for (errors, over-cap refusals).
    pub close: bool,
    /// How the request was satisfied, for the access log: `cache_hit`,
    /// `coalesced`, `submitted`, … — empty when the route has no
    /// disposition to report.
    pub disposition: &'static str,
    /// When set, the response streams: `body` is sent as the first
    /// chunk of a `Transfer-Encoding: chunked` response and the reactor
    /// keeps appending chunks from the named sweep until it finishes.
    pub stream: Option<StreamBody>,
}

/// An attached NDJSON stream: which sweep feeds the connection and how
/// many of its result lines have already been queued.
pub(crate) struct StreamBody {
    /// The sweep id (16 hex digits) whose lines feed this stream.
    pub sweep: String,
    /// Index of the next sweep line to send.
    pub next: usize,
}

/// Stop reading from the socket once this much input is buffered but not
/// yet parseable into complete requests; TCP backpressure does the rest.
/// Must exceed one maximal request (head + body) so a single legal
/// request can always complete.
const IN_SOFT_CAP: usize = http::MAX_HEAD + http::MAX_BODY + 64 * 1024;

/// Stop parsing further pipelined requests once this many response bytes
/// are queued; parsing resumes as the peer drains its side.
const OUT_SOFT_CAP: usize = 4 * 1024 * 1024;

pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Bytes read but not yet consumed by the parser.
    buf: Vec<u8>,
    /// Rendered responses not yet (fully) written.
    out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    sent: usize,
    /// Refreshed on every successful read or write; drives idle teardown.
    pub last_activity: Instant,
    /// When the connection was accepted; feeds the lifetime histogram.
    opened: Instant,
    /// Set once, at the first successful socket write (time to first
    /// byte); [`Conn::take_ttfb`] hands it to the reactor exactly once.
    ttfb: Option<Duration>,
    /// Close once `out` drains (`Connection: close`, errors, EOF).
    closing: bool,
    /// Close immediately; the socket is gone or poisoned.
    dead: bool,
    /// Peer half-closed its write side; answer what's buffered, then close.
    peer_closed: bool,
    /// Accepted over the connection cap: every request answers 503.
    pub reject: bool,
    /// An attached streamed response; while present, no further
    /// pipelined requests are parsed (the stream owns the connection).
    attached: Option<StreamBody>,
    /// Whether to keep the connection open once the stream finishes.
    stream_keep: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, reject: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            sent: 0,
            last_activity: Instant::now(),
            opened: Instant::now(),
            ttfb: None,
            closing: false,
            dead: false,
            peer_closed: false,
            reject,
            attached: None,
            stream_keep: false,
        }
    }

    /// Reads everything currently available (until `EAGAIN`), respecting
    /// the input soft cap.
    pub fn fill(&mut self, counters: &Counters) {
        if self.peer_closed || self.dead {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.buf.len() >= IN_SOFT_CAP {
                return; // parse first; the kernel buffers the rest
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    counters.reactor_eagain.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Parses as many complete requests as are buffered (pipelining) and
    /// appends their responses, in order, to the output buffer. `handler`
    /// maps a parsed request — or a parse error — to a [`Reply`].
    pub fn process(&mut self, handler: &mut dyn FnMut(Result<&Request, &ParseError>) -> Reply) {
        while !self.closing
            && !self.dead
            && self.attached.is_none()
            && self.out.len() - self.sent < OUT_SOFT_CAP
        {
            match http::parse_request(&self.buf) {
                Ok(Some((req, consumed))) => {
                    self.buf.drain(..consumed);
                    let mut reply = handler(Ok(&req));
                    let keep = req.keep_alive && !reply.close && !self.reject;
                    if let Some(sb) = reply.stream.take() {
                        // A streamed response: head + whatever lines are
                        // already available; the reactor appends the rest
                        // as the sweep progresses.
                        self.out.extend_from_slice(&http::render_stream_head(
                            reply.status,
                            reply.content_type,
                            &reply.extra,
                            keep,
                        ));
                        if !reply.body.is_empty() {
                            self.out
                                .extend_from_slice(&http::render_chunk(reply.body.as_bytes()));
                        }
                        self.attached = Some(sb);
                        self.stream_keep = keep;
                        continue; // loop condition ends parsing
                    }
                    self.push_reply(&reply, keep);
                    if !keep {
                        self.closing = true;
                    }
                }
                Ok(None) => {
                    if self.peer_closed {
                        // EOF with at most a partial request buffered:
                        // nothing more will arrive.
                        self.closing = true;
                    }
                    return;
                }
                Err(e) => {
                    let reply = handler(Err(&e));
                    self.push_reply(&reply, false);
                    self.closing = true;
                    self.buf.clear();
                    return;
                }
            }
        }
    }

    fn push_reply(&mut self, reply: &Reply, keep_alive: bool) {
        self.out.extend_from_slice(&http::render_response(
            reply.status,
            reply.content_type,
            &reply.extra,
            keep_alive,
            reply.body.as_bytes(),
        ));
    }

    /// Writes as much pending output as the socket accepts.
    pub fn flush(&mut self, counters: &Counters) {
        while self.sent < self.out.len() {
            match self.stream.write(&self.out[self.sent..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    if self.ttfb.is_none() && n > 0 {
                        self.ttfb = Some(self.opened.elapsed());
                    }
                    self.sent += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    counters.reactor_eagain.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.sent = 0;
    }

    /// Response bytes are pending: the reactor should watch for write
    /// readiness.
    pub fn wants_write(&self) -> bool {
        self.sent < self.out.len()
    }

    /// Too much output is queued (a pipelining flood): stop reading until
    /// the peer drains responses.
    pub fn backlogged(&self) -> bool {
        self.out.len() - self.sent >= OUT_SOFT_CAP || self.buf.len() >= IN_SOFT_CAP
    }

    /// The connection is finished and should be deregistered and dropped.
    pub fn done(&self) -> bool {
        self.dead || (self.closing && !self.wants_write())
    }

    /// True once the connection has been idle longer than `timeout`.
    pub fn idle_expired(&self, now: Instant, timeout: Duration) -> bool {
        now.duration_since(self.last_activity) > timeout
    }

    /// Time since the connection was accepted.
    pub fn age(&self) -> Duration {
        self.opened.elapsed()
    }

    /// The accept-to-first-response-byte latency, yielded at most once
    /// (the reactor records it into the TTFB histogram after a flush).
    pub fn take_ttfb(&mut self) -> Option<Duration> {
        self.ttfb.take()
    }

    /// True while a streamed response owns the connection (exempts it
    /// from idle teardown and from further request parsing).
    pub fn streaming(&self) -> bool {
        self.attached.is_some()
    }

    /// The attached stream's cursor, for the reactor's pump.
    pub fn stream_mut(&mut self) -> Option<&mut StreamBody> {
        self.attached.as_mut()
    }

    /// Appends one chunk of the streamed body.
    pub fn push_stream_chunk(&mut self, data: &[u8]) {
        self.out.extend_from_slice(&http::render_chunk(data));
    }

    /// Terminates the streamed body and restores normal request
    /// handling (or closes, if the request asked for `Connection:
    /// close`).
    pub fn finish_stream(&mut self) {
        if self.attached.take().is_none() {
            return;
        }
        self.out.extend_from_slice(http::render_last_chunk());
        if !self.stream_keep {
            self.closing = true;
        }
    }
}
