//! A deliberately small HTTP/1.1 server-side codec over std TCP: enough
//! to parse one request and write one response per connection
//! (`Connection: close`), with hard size limits so a misbehaving client
//! cannot balloon memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-line + header block, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component (query string stripped).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps onto a response status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line / headers / length framing.
    Bad(String),
    /// Head or body over the size limits.
    TooLarge,
    /// Underlying socket error (peer vanished mid-request).
    Io(std::io::Error),
}

/// Reads one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    // Read until the end of the header block.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    let header_end;
    loop {
        let n = stream.read(&mut buf).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::Bad("connection closed mid-request".into()));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_header_end(&head) {
            header_end = pos;
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
    }
    let (head_bytes, rest) = head.split_at(header_end);
    let rest = &rest[4..]; // skip the \r\n\r\n
    let head_txt = std::str::from_utf8(head_bytes)
        .map_err(|_| ParseError::Bad("non-UTF-8 request head".into()))?;

    let mut lines = head_txt.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body: exactly Content-Length bytes (chunked encoding unsupported).
    let mut body = rest.to_vec();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad Content-Length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Bad("chunked bodies are not supported".into()));
    }
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::Bad("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
        if body.len() > MAX_BODY {
            return Err(ParseError::TooLarge);
        }
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one response with the given extra headers and closes the
/// exchange (`Connection: close`). Errors are returned for the caller to
/// log; the connection is dropped either way.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
