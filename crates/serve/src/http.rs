//! A deliberately small HTTP/1.1 server-side codec: an *incremental*
//! request parser over a byte buffer (no I/O — the reactor owns the
//! sockets) and a response renderer, with hard size limits so a
//! misbehaving client cannot balloon memory.
//!
//! The parser supports keep-alive and pipelining by construction: it
//! consumes exactly one request from the front of the buffer and reports
//! how many bytes it used, so the caller can call it in a loop over
//! whatever bytes have arrived.

/// Maximum accepted request-line + header block, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component (query string stripped).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The inbound `X-Request-Id`, when present and safe to echo
    /// (token characters only, bounded length). Unacceptable values are
    /// ignored and the server mints its own id instead.
    pub(crate) fn request_id(&self) -> Option<&str> {
        self.header("x-request-id")
            .filter(|v| crate::obs::acceptable_request_id(v))
    }
}

/// Why a request could not be parsed; maps onto a response status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line / headers / length framing.
    Bad(String),
    /// Head or body over the size limits.
    TooLarge,
}

/// Tries to parse one complete request from the front of `buf`.
///
/// - `Ok(Some((request, consumed)))` — a full request was present; the
///   caller should drain `consumed` bytes and may call again (pipelining).
/// - `Ok(None)` — the bytes so far are a valid prefix; read more.
/// - `Err(_)` — the stream is unrecoverable; respond and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(header_end) = find_header_end(&buf[..buf.len().min(MAX_HEAD + 4)]) else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        return Ok(None);
    };
    let head_txt = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ParseError::Bad("non-UTF-8 request head".into()))?;

    let mut lines = head_txt.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }
    let http11 = version != "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body: exactly Content-Length bytes (chunked encoding unsupported).
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad Content-Length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Bad("chunked bodies are not supported".into()));
    }
    let body_start = header_end + 4; // past the \r\n\r\n
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Ok(None); // body still in flight
    }
    let body = buf[body_start..consumed].to_vec();

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
            keep_alive,
        },
        consumed,
    )))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders one response into bytes for the connection's write buffer.
/// `keep_alive` decides the `Connection` header — the reactor closes the
/// connection after flushing iff it advertised `close`.
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&'static str, String)],
    keep_alive: bool,
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Renders the head of a streamed (`Transfer-Encoding: chunked`)
/// response. The body follows as [`render_chunk`] frames terminated by
/// [`render_last_chunk`]; there is no `Content-Length`.
pub fn render_stream_head(
    status: u16,
    content_type: &str,
    extra_headers: &[(&'static str, String)],
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: {}\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// Frames one non-empty chunk of a streamed response body.
pub fn render_chunk(data: &[u8]) -> Vec<u8> {
    debug_assert!(
        !data.is_empty(),
        "an empty chunk would terminate the stream"
    );
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating zero-length chunk of a streamed response.
pub fn render_last_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_responses_frame_and_terminate() {
        let head = String::from_utf8(render_stream_head(
            200,
            "application/x-ndjson",
            &[("X-Request-Id", "abc".into())],
            true,
        ))
        .unwrap();
        assert!(head.contains("Transfer-Encoding: chunked\r\n"), "{head}");
        assert!(!head.contains("Content-Length"), "{head}");
        assert!(head.contains("X-Request-Id: abc\r\n"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
        let chunk = render_chunk(b"{\"a\":1}\n");
        assert_eq!(chunk, b"8\r\n{\"a\":1}\n\r\n");
        assert_eq!(render_last_chunk(), b"0\r\n\r\n");
    }

    #[test]
    fn parses_incrementally_and_reports_consumed_bytes() {
        let req = b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        // Every strict prefix is "need more bytes".
        for cut in 0..req.len() {
            assert!(
                parse_request(&req[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (r, consumed) = parse_request(req).unwrap().unwrap();
        assert_eq!(consumed, req.len());
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/run");
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let two =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, used) = parse_request(two).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let (second, used2) = parse_request(&two[used..]).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(!second.keep_alive);
        assert_eq!(used + used2, two.len());
    }

    #[test]
    fn connection_header_and_version_drive_keep_alive() {
        let (r, _) = parse_request(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let (r, _) = parse_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.keep_alive);
        let (r, _) = parse_request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn size_limits_are_enforced() {
        let huge_head = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(
            parse_request(huge_head.as_bytes()),
            Err(ParseError::TooLarge)
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse_request(huge_body.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn responses_advertise_the_connection_mode() {
        let keep = render_response(200, "application/json", &[], true, b"{}");
        let keep = String::from_utf8(keep).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        assert!(keep.contains("Content-Length: 2\r\n"), "{keep}");
        let close = render_response(
            503,
            "application/json",
            &[("Retry-After", "1".into())],
            false,
            b"x",
        );
        let close = String::from_utf8(close).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(close.contains("Retry-After: 1\r\n"), "{close}");
        assert!(close.contains("503 Service Unavailable"), "{close}");
    }
}
