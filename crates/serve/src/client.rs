//! A deliberately small *blocking* HTTP/1.1 client: enough to forward a
//! job to a peer shard, poll its result, and drive the `repro sweep` /
//! `repro connscale` client paths — std-only, `Connection: close` per
//! request, with both `Content-Length` and chunked response bodies
//! understood (the sweep stream is chunked).
//!
//! This is intentionally not a general client: one request per
//! connection, bounded by a wall-clock deadline, no TLS, no redirects.
//! It runs on worker-pool threads and in CLI processes — never on the
//! reactor thread, which must not block.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One response: the status line's code and the decoded body.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
}

/// Performs one blocking HTTP/1.1 request against `addr` (host:port).
/// The connection is closed after the response; `timeout` bounds the
/// connect and each socket read/write.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<HttpResponse, String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("socket timeouts on {addr}: {e}"))?;

    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if !body.is_empty() {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    parse_response(&raw).map_err(|e| format!("response from {addr}: {e}"))
}

/// Splits a complete `Connection: close` response into status and
/// decoded body (de-chunking when the peer streamed).
fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("truncated response head")?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-UTF-8 response head".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let chunked = head.lines().any(|l| {
        l.split_once(':').is_some_and(|(n, v)| {
            n.trim().eq_ignore_ascii_case("transfer-encoding")
                && v.trim().eq_ignore_ascii_case("chunked")
        })
    });
    let payload = &raw[head_end + 4..];
    let body = if chunked {
        dechunk(payload)?
    } else {
        payload.to_vec()
    };
    String::from_utf8(body)
        .map(|body| HttpResponse { status, body })
        .map_err(|_| "non-UTF-8 response body".to_string())
}

/// Decodes a chunked body: `size-hex\r\n data \r\n`*, terminated by a
/// zero-length chunk. A missing terminator is an error (truncation).
fn dechunk(mut rest: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("truncated chunk size")?;
        let size_txt = std::str::from_utf8(&rest[..line_end])
            .ok()
            .map(|s| s.trim())
            .ok_or("bad chunk size")?;
        let size = usize::from_str_radix(size_txt, 16)
            .map_err(|_| format!("bad chunk size `{size_txt}`"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("truncated chunk body".into());
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

/// True when `addr` answers `GET /healthz` with `200` within `timeout`.
pub fn healthy(addr: &str, timeout: Duration) -> bool {
    matches!(http_request(addr, "GET", "/healthz", "", timeout), Ok(r) if r.status == 200)
}

/// Extracts the raw serialised stats object from a job body (the bytes
/// after `"stats":`, balanced to the closing brace) — kept verbatim so a
/// forwarded result stays byte-identical to the peer's serialisation.
pub fn extract_stats(body: &str) -> Option<&str> {
    let at = body.find("\"stats\":")?;
    let obj = &body[at + "\"stats\":".len()..];
    let bytes = obj.as_bytes();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&obj[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs one job on a peer shard: POST the spec, then — if the job was
/// queued rather than answered from cache — poll `GET /v1/jobs/<id>`
/// until it lands or `deadline` passes. Returns the peer's serialised
/// stats object, byte-identical to a local serialisation of the same
/// deterministic simulation.
pub fn run_on_peer(
    addr: &str,
    spec_json: &str,
    job_id: &str,
    deadline: Duration,
) -> Result<String, String> {
    let started = Instant::now();
    let step = Duration::from_secs(10).min(deadline);
    let posted = http_request(addr, "POST", "/v1/run", spec_json, step)?;
    match posted.status {
        200 => {
            return extract_stats(&posted.body)
                .map(str::to_string)
                .ok_or_else(|| "peer answered 200 without stats".to_string());
        }
        202 | 429 => {}
        s => return Err(format!("peer rejected job: {s} {}", posted.body.trim_end())),
    }
    let path = format!("/v1/jobs/{job_id}");
    loop {
        if started.elapsed() > deadline {
            return Err(format!("peer did not finish {job_id} within {deadline:?}"));
        }
        std::thread::sleep(Duration::from_millis(25));
        let polled = http_request(addr, "GET", &path, "", step)?;
        match polled.status {
            200 if polled.body.contains("\"status\":\"done\"") => {
                return extract_stats(&polled.body)
                    .map(str::to_string)
                    .ok_or_else(|| "peer answered done without stats".to_string());
            }
            200 if polled.body.contains("\"status\":\"error\"") => {
                return Err(format!("peer job failed: {}", polled.body.trim_end()));
            }
            200 | 404 => {} // queued/running, or a 429-deferred POST: retry
            s => return Err(format!("peer poll failed: {s} {}", polled.body.trim_end())),
        }
        // A 429 on the initial POST means the peer's queue was full; the
        // job never enqueued, so re-POST (idempotent by content address).
        if posted.status == 429 && polled.status == 404 {
            let reposted = http_request(addr, "POST", "/v1/run", spec_json, step)?;
            if reposted.status == 200 {
                return extract_stats(&reposted.body)
                    .map(str::to_string)
                    .ok_or_else(|| "peer answered 200 without stats".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_and_chunked_bodies() {
        let plain =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(plain).unwrap();
        assert_eq!((r.status, r.body.as_str()), (200, "{}"));
        let chunked = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                        4\r\nab\r\n\r\n3\r\ncd\n\r\n0\r\n\r\n";
        let r = parse_response(chunked).unwrap();
        assert_eq!((r.status, r.body.as_str()), (200, "ab\r\ncd\n"));
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n\r").is_err());
        let truncated = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab";
        assert!(parse_response(truncated).is_err());
    }

    #[test]
    fn stats_extraction_is_balanced_and_verbatim() {
        let body = r#"{"job":"x","status":"done","stats":{"a":{"b":1},"s":"}{"},"requestId":"r"}"#;
        assert_eq!(extract_stats(body), Some(r#"{"a":{"b":1},"s":"}{"}"#));
        assert_eq!(extract_stats(r#"{"status":"queued"}"#), None);
        assert_eq!(extract_stats(r#"{"stats":{"unbalanced":true"#), None);
    }
}
