//! Connection-ramp benchmark: opens a wall of keep-alive connections
//! against a running service and drives request rounds over all of them,
//! measuring how far the reactor scales (the `repro connscale`
//! subcommand; CI runs it at 512 connections, the perf table at 10k+).
//!
//! The client side is itself reactor-shaped — non-blocking sockets on an
//! `epoll-shim` poller — because a thread per probe connection would hit
//! the same wall the server-side rewrite removed.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use epoll_shim::{Event, Interest, Poller};

/// How the ramp is driven.
#[derive(Debug, Clone)]
pub struct RampConfig {
    /// Address of a running service.
    pub addr: SocketAddr,
    /// Connections to establish and hold for the whole run.
    pub conns: usize,
    /// Keep-alive request rounds over every connection (each round is one
    /// `GET /healthz` per connection, awaiting every response).
    pub rounds: usize,
    /// Connections opened per connect burst — bounded so the ramp does
    /// not outrun the listener backlog.
    pub connect_batch: usize,
    /// Per-round (and per connect-burst) deadline before the remaining
    /// connections count as dropped.
    pub timeout: Duration,
    /// Drive a small batch sweep (`POST /v1/sweep`, 8 points) while the
    /// connection wall is still held, measuring sweep throughput under
    /// keep-alive pressure. Best-effort: a failed sweep reports 0 points
    /// and never fails the ramp.
    pub sweep: bool,
}

impl RampConfig {
    /// Defaults: 512 connections, 3 rounds, bursts of 128, 30 s deadline,
    /// held-wall sweep on.
    pub fn new(addr: SocketAddr) -> RampConfig {
        RampConfig {
            addr,
            conns: 512,
            rounds: 3,
            connect_batch: 128,
            timeout: Duration::from_secs(30),
            sweep: true,
        }
    }
}

/// What the ramp observed; serialised into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct RampReport {
    /// Connections the ramp was asked to hold.
    pub conns: usize,
    /// Connections actually established.
    pub established: usize,
    /// Connections that errored, hung up or timed out mid-run.
    pub dropped: usize,
    /// Request rounds driven.
    pub rounds: usize,
    /// Requests written.
    pub requests_sent: u64,
    /// `200` responses fully received.
    pub responses_ok: u64,
    /// Responses with any other status.
    pub responses_err: u64,
    /// Responses whose head carried no `X-Request-Id` header — always 0
    /// against a healthy service; `repro connscale` fails when it is not.
    pub missing_request_id: u64,
    /// Wall-clock of the whole ramp (connect + all rounds).
    pub wall_ms: u64,
    /// Wall-clock of each request round.
    pub round_ms: Vec<u64>,
    /// Points completed by the held-wall sweep (0 when disabled or the
    /// sweep failed).
    pub sweep_points: usize,
    /// Wall-clock of the held-wall sweep, submit to done.
    pub sweep_wall_ms: u64,
}

impl RampReport {
    /// Completed responses per second over the request rounds. The
    /// connect ramp is deliberately excluded — it measures TCP setup
    /// (and, in-process, fd pressure), not the reactor's serving rate;
    /// `wall_ms` still covers the whole run for anyone who wants it.
    pub fn rps(&self) -> f64 {
        let total = self.responses_ok + self.responses_err;
        let round_ms: u64 = self.round_ms.iter().sum();
        if round_ms == 0 {
            return total as f64 * 1000.0;
        }
        total as f64 * 1000.0 / round_ms as f64
    }

    /// Sweep points completed per second while the wall was held (0.0
    /// when the sweep was disabled or failed).
    pub fn sweep_points_per_sec(&self) -> f64 {
        if self.sweep_wall_ms == 0 {
            return 0.0;
        }
        self.sweep_points as f64 * 1000.0 / self.sweep_wall_ms as f64
    }

    /// The `BENCH_serve.json` payload.
    pub fn to_json(&self) -> String {
        let rounds: Vec<String> = self.round_ms.iter().map(u64::to_string).collect();
        format!(
            "{{\"bench\":\"serve_conn_ramp\",\"conns\":{},\"established\":{},\
             \"dropped\":{},\"rounds\":{},\"requestsSent\":{},\"responsesOk\":{},\
             \"responsesErr\":{},\"missingRequestId\":{},\"wallMs\":{},\
             \"roundMs\":[{}],\"sweepPoints\":{},\"sweepWallMs\":{},\
             \"sweepPointsPerSec\":{:.1},\"rps\":{:.1}}}\n",
            self.conns,
            self.established,
            self.dropped,
            self.rounds,
            self.requests_sent,
            self.responses_ok,
            self.responses_err,
            self.missing_request_id,
            self.wall_ms,
            rounds.join(","),
            self.sweep_points,
            self.sweep_wall_ms,
            self.sweep_points_per_sec(),
            self.rps(),
        )
    }
}

const REQUEST: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: ramp\r\n\r\n";

/// The held-wall sweep grid: two workloads x four models = 8 points at
/// the default test scale.
const SWEEP_BODY: &str = "{\"workloads\":[\"dm\",\"pointer\"],\"stream\":false}";

/// POSTs [`SWEEP_BODY`] and polls the sweep to completion, returning
/// `(points, wall_ms)`; `None` on any refusal, failure or timeout.
fn drive_sweep(addr: SocketAddr, timeout: Duration) -> Option<(usize, u64)> {
    let addr = addr.to_string();
    let started = Instant::now();
    let resp = crate::client::http_request(&addr, "POST", "/v1/sweep", SWEEP_BODY, timeout).ok()?;
    if resp.status != 200 && resp.status != 202 {
        return None;
    }
    let id = flat_json_str(&resp.body, "sweep")?;
    let deadline = started + timeout;
    loop {
        let r = crate::client::http_request(&addr, "GET", &format!("/v1/sweeps/{id}"), "", timeout)
            .ok()?;
        if flat_json_str(&r.body, "status").as_deref() == Some("done") {
            if flat_json_num(&r.body, "failed")? != 0 {
                return None;
            }
            let points = flat_json_num(&r.body, "total")? as usize;
            return Some((points, started.elapsed().as_millis() as u64));
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn flat_json_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn flat_json_num(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

struct Probe {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Unwritten suffix of the current round's request.
    pending: &'static [u8],
    /// Complete responses received this round.
    got: bool,
    dead: bool,
}

impl Probe {
    /// Writes whatever the socket accepts of the pending request.
    fn flush(&mut self) {
        while !self.pending.is_empty() {
            match self.stream.write(self.pending) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.pending = &self.pending[n..],
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads available bytes and scans for one complete response.
    /// Returns `Some((status, has_request_id))` when a full response
    /// arrived.
    fn pump(&mut self) -> Option<(u16, bool)> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        match scan_response(&self.buf) {
            Some((status, consumed, has_rid)) => {
                self.buf.drain(..consumed);
                self.got = true;
                Some((status, has_rid))
            }
            None => None,
        }
    }
}

/// Scans one complete HTTP response (status line + headers +
/// `Content-Length` body) from the front of `buf`, returning its status,
/// total length, and whether the head carried an `X-Request-Id` header.
fn scan_response(buf: &[u8]) -> Option<(u16, usize, bool)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut has_rid = false;
    for l in head.lines() {
        let Some((name, value)) = l.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        } else if name.eq_ignore_ascii_case("x-request-id") && !value.trim().is_empty() {
            has_rid = true;
        }
    }
    let total = head_end + 4 + content_length;
    (buf.len() >= total).then_some((status, total, has_rid))
}

/// Runs the ramp: batched connects, then `rounds` lock-step keep-alive
/// request rounds over every surviving connection.
pub fn ramp(cfg: &RampConfig) -> std::io::Result<RampReport> {
    // Sockets beyond the default 1024-fd soft limit need headroom for the
    // poller, stdio and the test harness — and when the target service
    // runs in this same process (`repro connscale` without `--addr`),
    // every connection costs two fds, one per end.
    let _ = epoll_shim::raise_nofile_limit(cfg.conns as u64 * 2 + 512);
    let started = Instant::now();
    let poller = Poller::new()?;
    let mut probes: Vec<Probe> = Vec::with_capacity(cfg.conns);

    // Connect in bursts: the listener backlog is finite, and the server
    // accepts between bursts.
    while probes.len() < cfg.conns {
        let burst = cfg.connect_batch.min(cfg.conns - probes.len());
        let deadline = Instant::now() + cfg.timeout;
        let mut opened = 0;
        while opened < burst && Instant::now() < deadline {
            match TcpStream::connect(cfg.addr) {
                Ok(stream) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let token = probes.len() as u64;
                    poller.add(stream.as_raw_fd(), token, Interest::READ)?;
                    probes.push(Probe {
                        stream,
                        buf: Vec::new(),
                        pending: &[],
                        got: false,
                        dead: false,
                    });
                    opened += 1;
                }
                // Transient accept-queue pressure: give the reactor a beat.
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        if opened < burst {
            break; // ramp stalled; report what was established
        }
        // Give the acceptor a scheduling slot to drain the backlog: a
        // burst that lands on a full accept queue costs a dropped SYN
        // and a ~1 s retransmit, far more than this pause.
        std::thread::sleep(Duration::from_millis(2));
    }
    let established = probes.len();

    let mut requests_sent = 0u64;
    let mut responses_ok = 0u64;
    let mut responses_err = 0u64;
    let mut missing_request_id = 0u64;
    let mut round_ms = Vec::with_capacity(cfg.rounds);
    let mut events: Vec<Event> = Vec::new();

    for _ in 0..cfg.rounds {
        let round_start = Instant::now();
        let deadline = round_start + cfg.timeout;
        let mut awaiting = 0usize;
        for (i, p) in probes.iter_mut().enumerate().filter(|(_, p)| !p.dead) {
            p.pending = REQUEST;
            p.got = false;
            requests_sent += 1;
            awaiting += 1;
            p.flush();
            if !p.pending.is_empty() {
                // Socket buffer full mid-request: watch for writability.
                let _ = poller.modify(p.stream.as_raw_fd(), i as u64, Interest::READ_WRITE);
            }
        }
        while awaiting > 0 && Instant::now() < deadline {
            poller.wait(&mut events, 100)?;
            for ev in events.drain(..) {
                let Some(p) = probes.get_mut(ev.token as usize) else {
                    continue;
                };
                if p.dead || p.got {
                    continue;
                }
                if ev.writable && !p.pending.is_empty() {
                    p.flush();
                    if p.pending.is_empty() {
                        let _ = poller.modify(p.stream.as_raw_fd(), ev.token, Interest::READ);
                    }
                }
                if ev.readable || ev.hangup || ev.error {
                    if let Some((status, has_rid)) = p.pump() {
                        if status == 200 {
                            responses_ok += 1;
                        } else {
                            responses_err += 1;
                        }
                        if !has_rid {
                            missing_request_id += 1;
                        }
                    }
                }
                if p.got || p.dead {
                    awaiting -= 1;
                }
            }
        }
        round_ms.push(round_start.elapsed().as_millis() as u64);
    }

    // The sweep runs while every probe connection is still open and
    // held: it measures orchestration throughput under keep-alive
    // pressure, not on an idle reactor.
    let (sweep_points, sweep_wall_ms) = if cfg.sweep {
        drive_sweep(cfg.addr, cfg.timeout).unwrap_or((0, 0))
    } else {
        (0, 0)
    };

    let dropped = cfg.conns - established
        + probes
            .iter()
            .filter(|p| p.dead || (cfg.rounds > 0 && !p.got))
            .count();
    for p in &probes {
        let _ = poller.delete(p.stream.as_raw_fd());
    }
    Ok(RampReport {
        conns: cfg.conns,
        established,
        dropped,
        rounds: cfg.rounds,
        requests_sent,
        responses_ok,
        responses_err,
        missing_request_id,
        wall_ms: started.elapsed().as_millis() as u64,
        round_ms,
        sweep_points,
        sweep_wall_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_scanner_handles_partials_and_lengths() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..full.len() {
            assert!(scan_response(&full[..cut]).is_none(), "cut {cut}");
        }
        assert_eq!(scan_response(full), Some((200, full.len(), false)));
        let no_body = b"HTTP/1.1 503 Service Unavailable\r\n\r\nrest";
        assert_eq!(
            scan_response(no_body),
            Some((503, no_body.len() - 4, false))
        );
        let with_rid = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Request-Id: ab12\r\n\r\n{}";
        assert_eq!(scan_response(with_rid), Some((200, with_rid.len(), true)));
        let empty_rid = b"HTTP/1.1 200 OK\r\nX-Request-Id:\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(
            scan_response(empty_rid),
            Some((200, empty_rid.len(), false))
        );
    }

    #[test]
    fn report_serialises_to_bench_json() {
        let r = RampReport {
            conns: 512,
            established: 512,
            dropped: 0,
            rounds: 2,
            requests_sent: 1024,
            responses_ok: 1024,
            responses_err: 0,
            missing_request_id: 0,
            wall_ms: 100,
            round_ms: vec![40, 35],
            sweep_points: 8,
            sweep_wall_ms: 400,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\":\"serve_conn_ramp\""), "{j}");
        assert!(j.contains("\"dropped\":0"), "{j}");
        assert!(j.contains("\"missingRequestId\":0"), "{j}");
        assert!(j.contains("\"roundMs\":[40,35]"), "{j}");
        assert!(j.contains("\"sweepPoints\":8"), "{j}");
        assert!(j.contains("\"sweepWallMs\":400"), "{j}");
        assert!(j.contains("\"sweepPointsPerSec\":20.0"), "{j}");
        // Over the 75 ms of request rounds, not the 100 ms wall clock.
        assert!((r.rps() - 1024.0 * 1000.0 / 75.0).abs() < 1e-6);
    }
}
