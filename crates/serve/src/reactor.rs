//! The readiness-based event loop replacing the thread-per-connection
//! accept loop: one thread, one epoll instance, every connection a
//! non-blocking socket parked in the poller until bytes arrive or a
//! response can be flushed (DESIGN.md §17).
//!
//! Simulation work never runs here — `POST /v1/run` only validates,
//! consults the cache/registry and enqueues onto `bench::pool::Workers`;
//! the reactor's own work per wakeup is parsing, routing and buffer
//! shuffling, which is what lets one thread hold 10k+ keep-alive
//! connections.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epoll_shim::{Event, Interest, Poller};

use crate::net::Conn;
use crate::{http, State};

const LISTENER_TOKEN: u64 = 0;

/// How long after a stop request the reactor keeps flushing pending
/// responses before tearing connections down regardless.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Over-cap connections still get a slot long enough to read their
/// request and answer `503` cleanly (FIN, not RST) — but only this many;
/// past it, accepts are refused with a best-effort inline write.
fn reject_slack(max_connections: usize) -> usize {
    (max_connections / 8).clamp(64, 1024)
}

pub(crate) fn run(poller: Poller, listener: TcpListener, state: Arc<State>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut listener = Some(listener);
    let mut stop_deadline: Option<Instant> = None;
    let mut last_sweep = Instant::now();
    let idle_timeout = state.idle_timeout;

    if let Some(l) = listener.as_ref() {
        if poller
            .add(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .is_err()
        {
            return; // cannot poll the listener: the service is unusable
        }
    }

    loop {
        if state.stop.load(Ordering::Relaxed) {
            if let Some(l) = listener.take() {
                let _ = poller.delete(l.as_raw_fd());
            }
            let deadline = *stop_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
            let draining = conns.values().any(|c| c.wants_write() && !c.done());
            if !draining || Instant::now() >= deadline {
                break;
            }
        }
        let timeout_ms = if stop_deadline.is_some() { 10 } else { 50 };
        match poller.wait(&mut events, timeout_ms) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        }
        state
            .counters
            .reactor_wakeups
            .fetch_add(1, Ordering::Relaxed);

        let batch: Vec<Event> = std::mem::take(&mut events);
        for ev in batch {
            if ev.token == LISTENER_TOKEN {
                if let Some(l) = listener.as_ref() {
                    accept_all(l, &poller, &mut conns, &mut next_token, &state);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.error {
                // Drain what the kernel has, then the close below.
                conn.fill(&state.counters);
            }
            if ev.readable || ev.hangup {
                conn.fill(&state.counters);
            }
            drive(conn, &state);
            settle(&poller, &mut conns, ev.token);
        }

        // Idle sweep (~1 Hz): close connections quiet past the timeout.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= Duration::from_secs(1) {
            last_sweep = now;
            let expired: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.idle_expired(now, idle_timeout))
                .map(|(t, _)| *t)
                .collect();
            for token in expired {
                if let Some(c) = conns.remove(&token) {
                    let _ = poller.delete(c.stream.as_raw_fd());
                }
            }
        }
        state.connections.store(conns.len(), Ordering::Relaxed);
    }

    for (_, c) in conns.drain() {
        let _ = poller.delete(c.stream.as_raw_fd());
    }
    state.connections.store(0, Ordering::Relaxed);
}

/// Parses and routes whatever is buffered, then flushes.
fn drive(conn: &mut Conn, state: &Arc<State>) {
    let reject = conn.reject;
    let st = Arc::clone(state);
    conn.process(&mut |parsed| match parsed {
        Err(http::ParseError::TooLarge) => {
            st.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            crate::error_reply_closing(413, "too_large", "request too large")
        }
        Err(http::ParseError::Bad(msg)) => {
            st.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            crate::error_reply_closing(400, "bad_request", msg)
        }
        Ok(_) if reject => crate::overcap_reply(),
        Ok(req) => crate::route(req, &st),
    });
    conn.flush(&state.counters);
}

/// Applies the connection's post-event state to the poller: deregisters
/// finished connections, otherwise re-arms interest (write readiness only
/// while output is pending, read paused while backlogged).
fn settle(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    let Some(conn) = conns.get(&token) else {
        return;
    };
    if conn.done() {
        let conn = conns.remove(&token).expect("connection just looked up");
        let _ = poller.delete(conn.stream.as_raw_fd());
        return;
    }
    let interest = Interest {
        readable: !conn.backlogged(),
        writable: conn.wants_write(),
    };
    if poller
        .modify(conn.stream.as_raw_fd(), token, interest)
        .is_err()
    {
        let conn = conns.remove(&token).expect("connection just looked up");
        let _ = poller.delete(conn.stream.as_raw_fd());
    }
}

fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    state: &Arc<State>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let over = conns.len() >= state.max_connections;
                if over {
                    state.counters.conn_rejected.fetch_add(1, Ordering::Relaxed);
                    if conns.len() >= state.max_connections + reject_slack(state.max_connections) {
                        // Hard overload: refuse inline without a slot. The
                        // write is best-effort — under this much pressure a
                        // reset is acceptable.
                        let reply = crate::overcap_reply();
                        let bytes = http::render_response(
                            reply.status,
                            reply.content_type,
                            &reply.extra,
                            false,
                            reply.body.as_bytes(),
                        );
                        let mut s = stream;
                        let _ = s.write(&bytes);
                        continue;
                    }
                }
                let token = *next_token;
                *next_token += 1;
                let conn = Conn::new(stream, over);
                if poller
                    .add(conn.stream.as_raw_fd(), token, Interest::READ)
                    .is_ok()
                {
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                state
                    .counters
                    .reactor_eagain
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    state.connections.store(conns.len(), Ordering::Relaxed);
}
