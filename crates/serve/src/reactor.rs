//! The readiness-based event loop replacing the thread-per-connection
//! accept loop: one thread, one epoll instance, every connection a
//! non-blocking socket parked in the poller until bytes arrive or a
//! response can be flushed (DESIGN.md §17).
//!
//! Simulation work never runs here — `POST /v1/run` only validates,
//! consults the cache/registry and enqueues onto `bench::pool::Workers`;
//! the reactor's own work per wakeup is parsing, routing and buffer
//! shuffling, which is what lets one thread hold 10k+ keep-alive
//! connections.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epoll_shim::{Event, Interest, Poller};

use hidisc::telemetry::log::Level;

use crate::net::Conn;
use crate::{http, obs, State};

const LISTENER_TOKEN: u64 = 0;

/// How long after a stop request the reactor keeps flushing pending
/// responses before tearing connections down regardless.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Over-cap connections still get a slot long enough to read their
/// request and answer `503` cleanly (FIN, not RST) — but only this many;
/// past it, accepts are refused with a best-effort inline write.
fn reject_slack(max_connections: usize) -> usize {
    (max_connections / 8).clamp(64, 1024)
}

pub(crate) fn run(poller: Poller, listener: TcpListener, state: Arc<State>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut listener = Some(listener);
    let mut stop_deadline: Option<Instant> = None;
    let mut last_sweep = Instant::now();
    let idle_timeout = state.idle_timeout;

    if let Some(l) = listener.as_ref() {
        if poller
            .add(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .is_err()
        {
            return; // cannot poll the listener: the service is unusable
        }
    }

    loop {
        if state.stop.load(Ordering::Relaxed) {
            if let Some(l) = listener.take() {
                let _ = poller.delete(l.as_raw_fd());
            }
            let deadline = *stop_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
            let draining = conns.values().any(|c| c.wants_write() && !c.done());
            if !draining || Instant::now() >= deadline {
                break;
            }
        }
        let timeout_ms = if stop_deadline.is_some() { 10 } else { 50 };
        match poller.wait(&mut events, timeout_ms) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        }
        state
            .counters
            .reactor_wakeups
            .fetch_add(1, Ordering::Relaxed);

        let batch: Vec<Event> = std::mem::take(&mut events);
        for ev in batch {
            if ev.token == LISTENER_TOKEN {
                if let Some(l) = listener.as_ref() {
                    accept_all(l, &poller, &mut conns, &mut next_token, &state);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.error {
                // Drain what the kernel has, then the close below.
                conn.fill(&state.counters);
            }
            if ev.readable || ev.hangup {
                conn.fill(&state.counters);
            }
            drive(conn, &state);
            settle(&poller, &mut conns, ev.token, &state);
        }

        // Sweep orchestration: route fresh points, harvest finished
        // jobs into NDJSON lines (no-op without active sweeps), then
        // feed every connection with an attached stream.
        crate::sweeps::advance(&state);
        let streaming: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.streaming())
            .map(|(t, _)| *t)
            .collect();
        for token in streaming {
            if let Some(c) = conns.get_mut(&token) {
                crate::sweeps::pump_conn(c, &state);
                c.flush(&state.counters);
                if let Some(ttfb) = c.take_ttfb() {
                    state.http.record_ttfb(ttfb);
                }
            }
            settle(&poller, &mut conns, token, &state);
        }

        // Idle sweep (~1 Hz): close connections quiet past the timeout.
        // A connection with an attached stream is exempt — it is
        // waiting on simulations, not on the peer.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= Duration::from_secs(1) {
            last_sweep = now;
            let expired: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.idle_expired(now, idle_timeout) && !c.streaming())
                .map(|(t, _)| *t)
                .collect();
            for token in expired {
                if let Some(c) = conns.remove(&token) {
                    close_conn(&poller, &state, c, "idle");
                }
            }
        }
        state.connections.store(conns.len(), Ordering::Relaxed);
    }

    for (_, c) in conns.drain() {
        close_conn(&poller, &state, c, "shutdown");
    }
    state.connections.store(0, Ordering::Relaxed);
}

/// Parses and routes whatever is buffered, then flushes. Every request
/// — including parse errors and over-cap refusals — gets an
/// `X-Request-Id` (inbound one echoed when acceptable), RED-metric
/// recording and an access-log line; requests slower than the
/// configured threshold log at WARN.
fn drive(conn: &mut Conn, state: &Arc<State>) {
    let reject = conn.reject;
    let st = Arc::clone(state);
    conn.process(&mut |parsed| {
        let t0 = Instant::now();
        let (rid, route, method, path, mut reply) = match parsed {
            Err(e) => {
                st.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                let rid = obs::fresh_request_id();
                let reply = match e {
                    http::ParseError::TooLarge => {
                        crate::error_reply_closing(413, "too_large", "request too large", &rid)
                    }
                    http::ParseError::Bad(msg) => {
                        crate::error_reply_closing(400, "bad_request", msg, &rid)
                    }
                };
                (
                    rid,
                    obs::Route::Other,
                    "-".to_string(),
                    "-".to_string(),
                    reply,
                )
            }
            Ok(req) => {
                let rid = req
                    .request_id()
                    .map(str::to_string)
                    .unwrap_or_else(obs::fresh_request_id);
                let route = obs::Route::of(&req.path);
                let reply = if reject {
                    crate::overcap_reply(&rid)
                } else {
                    crate::route(req, &rid, &st)
                };
                (rid, route, req.method.clone(), req.path.clone(), reply)
            }
        };
        let dur = t0.elapsed();
        st.http.record_request(route, reply.status, dur);
        let slow = !st.slow_request.is_zero() && dur >= st.slow_request;
        let level = if slow { Level::Warn } else { Level::Info };
        if st.logger.enabled(level) {
            st.logger.log(
                level,
                "request",
                &[
                    ("request_id", rid.as_str().into()),
                    ("method", method.as_str().into()),
                    ("path", path.as_str().into()),
                    ("route", route.label().into()),
                    ("status", reply.status.into()),
                    ("bytes", reply.body.len().into()),
                    ("dur_us", (dur.as_micros() as u64).into()),
                    ("disposition", reply.disposition.into()),
                    ("slow", slow.into()),
                ],
            );
        }
        reply.extra.push(("X-Request-Id", rid));
        reply
    });
    conn.flush(&state.counters);
    if let Some(ttfb) = conn.take_ttfb() {
        state.http.record_ttfb(ttfb);
    }
}

/// Deregisters and drops one connection, recording its lifetime and the
/// close reason.
fn close_conn(poller: &Poller, state: &Arc<State>, conn: Conn, reason: &'static str) {
    let _ = poller.delete(conn.stream.as_raw_fd());
    state.http.record_conn_lifetime(conn.age());
    state.logger.log(
        Level::Debug,
        "conn_close",
        &[
            ("reason", reason.into()),
            ("age_ms", (conn.age().as_millis() as u64).into()),
        ],
    );
}

/// Applies the connection's post-event state to the poller: deregisters
/// finished connections, otherwise re-arms interest (write readiness only
/// while output is pending, read paused while backlogged).
fn settle(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, state: &Arc<State>) {
    let Some(conn) = conns.get(&token) else {
        return;
    };
    if conn.done() {
        let conn = conns.remove(&token).expect("connection just looked up");
        close_conn(poller, state, conn, "done");
        return;
    }
    let interest = Interest {
        readable: !conn.backlogged(),
        writable: conn.wants_write(),
    };
    if poller
        .modify(conn.stream.as_raw_fd(), token, interest)
        .is_err()
    {
        let conn = conns.remove(&token).expect("connection just looked up");
        close_conn(poller, state, conn, "poll_error");
    }
}

fn accept_all(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    state: &Arc<State>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let over = conns.len() >= state.max_connections;
                if over {
                    state.counters.conn_rejected.fetch_add(1, Ordering::Relaxed);
                    if conns.len() >= state.max_connections + reject_slack(state.max_connections) {
                        // Hard overload: refuse inline without a slot. The
                        // write is best-effort — under this much pressure a
                        // reset is acceptable.
                        let rid = obs::fresh_request_id();
                        let mut reply = crate::overcap_reply(&rid);
                        reply.extra.push(("X-Request-Id", rid));
                        let bytes = http::render_response(
                            reply.status,
                            reply.content_type,
                            &reply.extra,
                            false,
                            reply.body.as_bytes(),
                        );
                        let mut s = stream;
                        let _ = s.write(&bytes);
                        continue;
                    }
                }
                let token = *next_token;
                *next_token += 1;
                let conn = Conn::new(stream, over);
                if poller
                    .add(conn.stream.as_raw_fd(), token, Interest::READ)
                    .is_ok()
                {
                    state.logger.log(
                        Level::Debug,
                        "conn_open",
                        &[("token", token.into()), ("over_cap", over.into())],
                    );
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                state
                    .counters
                    .reactor_eagain
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    state.connections.store(conns.len(), Ordering::Relaxed);
}
