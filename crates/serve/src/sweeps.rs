//! Sweep orchestration behind `POST /v1/sweep` (DESIGN.md §19).
//!
//! A sweep is a parameter grid expanded server-side by `hidisc-sweep`
//! into deduplicated content-addressed points. This module owns the
//! bounded sweep registry, drives every point through the existing job
//! machinery (cache → coalesce → bounded worker pool, exactly like
//! `POST /v1/run`), renders one NDJSON progress line per point for the
//! attached chunked stream, and — in shard mode — routes points owned
//! by a peer shard to it with health tracking and local fallback.
//!
//! Locking order, never reversed: `State::sweeps` → `State::registry`
//! → `State::workers`. The reactor calls [`advance`]/[`pump_conn`] on
//! every wakeup; both are O(active sweeps) and lock-free when idle.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hidisc::MachineConfig;
use hidisc_bench::pool::SubmitError;
use hidisc_sweep::{Grid, Plan, PlannedPoint, Point, PointStats, Render};

use crate::json::{escape, Json};
use crate::net::{Conn, Reply};
use crate::{client, error_reply, json_reply, retry_reply, scale_name};
use crate::{JobEntry, JobSpec, Phase, ShardSpec, State};

/// Bound on sweep-registry entries; finished sweeps are evicted
/// oldest-first past it, and a new sweep is refused with `429` when
/// every resident entry is still running.
pub(crate) const MAX_SWEEPS: usize = 64;

/// Wall-clock budget for one forwarded point (connect + peer queue +
/// simulation + polling) before the forward falls back to local
/// evaluation.
const FORWARD_DEADLINE: Duration = Duration::from_secs(300);

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// The bounded sweep registry behind `State::sweeps`.
pub(crate) struct Sweeps {
    map: HashMap<String, Entry>,
    /// Sweep ids in insertion order, for oldest-first eviction.
    order: VecDeque<String>,
    max: usize,
}

/// One sweep's lifetime state.
struct Entry {
    /// Id of the request that created the sweep.
    request_id: String,
    render: Option<Render>,
    duplicates: usize,
    points: Vec<SweepPoint>,
    /// Every NDJSON line emitted so far (header, one per terminal
    /// point, then the summary); attached streams replay from any
    /// index, so a re-POST of the same grid sees the full history.
    lines: Vec<Arc<String>>,
    done: usize,
    cached: usize,
    simulated: usize,
    forwarded: usize,
    failed: usize,
    finished: bool,
}

struct SweepPoint {
    point: Point,
    cfg: MachineConfig,
    key: u64,
    /// The job id (`{key:016x}`) — shared with `/v1/run`.
    id: String,
    state: PState,
}

enum PState {
    /// Not yet routed anywhere (also the retry state after a full
    /// queue: the next [`advance`] tick tries again — backpressure).
    New,
    /// In flight; poll the job registry.
    Waiting {
        /// False when the point coalesced onto a job some other
        /// request had already submitted.
        submitted_here: bool,
        /// True when the point was dispatched to a peer shard.
        via_forward: bool,
    },
    Terminal,
}

impl Sweeps {
    pub(crate) fn new(max: usize) -> Sweeps {
        Sweeps {
            map: HashMap::new(),
            order: VecDeque::new(),
            max,
        }
    }

    /// True when any resident sweep is still running (feeds the
    /// `hidisc_serve_sweeps_active` gauge).
    pub(crate) fn active(&self) -> usize {
        self.map.values().filter(|e| !e.finished).count()
    }

    /// Inserts a new sweep, evicting the oldest finished one when at
    /// the bound. Returns false — refuse with 429 — when every
    /// resident sweep is still running.
    fn insert(&mut self, id: String, entry: Entry) -> bool {
        while self.map.len() >= self.max {
            let Some(pos) = self
                .order
                .iter()
                .position(|old| self.map.get(old).is_some_and(|e| e.finished))
            else {
                return false;
            };
            let old = self.order.remove(pos).expect("position just found");
            self.map.remove(&old);
        }
        self.order.push_back(id.clone());
        self.map.insert(id, entry);
        true
    }
}

// ---------------------------------------------------------------------
// Shard routing
// ---------------------------------------------------------------------

/// Where one point should evaluate.
enum RouteDecision {
    /// This shard owns the point (or the service is stand-alone).
    Local,
    /// A peer owns it but is marked unhealthy: evaluate locally and
    /// count the degradation.
    Fallback,
    /// Forward to the owning peer at this address.
    Forward(usize, String),
}

/// Shard-mode routing state: the static [`ShardSpec`] plus per-shard
/// health, probe bookkeeping and the set of jobs whose forward fell
/// back to local evaluation (so terminal accounting stays truthful).
pub(crate) struct ShardSet {
    spec: ShardSpec,
    healthy: Vec<AtomicBool>,
    probing: Vec<AtomicBool>,
    fallbacks: Mutex<HashSet<String>>,
}

impl ShardSet {
    pub(crate) fn new(spec: ShardSpec) -> ShardSet {
        let n = spec.count as usize;
        ShardSet {
            spec,
            healthy: (0..n).map(|_| AtomicBool::new(true)).collect(),
            probing: (0..n).map(|_| AtomicBool::new(false)).collect(),
            fallbacks: Mutex::new(HashSet::new()),
        }
    }

    /// Health snapshot, for the per-shard gauges.
    pub(crate) fn health(&self) -> Vec<bool> {
        self.healthy
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }

    fn route(&self, key: u64) -> RouteDecision {
        let owner = self.spec.owner_of(key) as usize;
        if owner == self.spec.index as usize {
            return RouteDecision::Local;
        }
        if self.healthy[owner].load(Ordering::Relaxed) {
            RouteDecision::Forward(owner, self.spec.peers[owner].clone())
        } else {
            RouteDecision::Fallback
        }
    }

    fn mark_unhealthy(&self, shard: usize) {
        self.healthy[shard].store(false, Ordering::Relaxed);
    }

    fn note_fallback(&self, job_id: &str) {
        self.fallbacks
            .lock()
            .expect("fallbacks lock")
            .insert(job_id.to_string());
    }

    fn was_fallback(&self, job_id: &str) -> bool {
        self.fallbacks
            .lock()
            .expect("fallbacks lock")
            .contains(job_id)
    }

    /// Spawns one background probe per unhealthy peer (at most one in
    /// flight per shard); the probe re-enables forwarding once the
    /// peer answers `/healthz` again. Called from the reactor tick —
    /// the probing itself never runs on the reactor thread.
    fn maybe_probe(&self, state: &Arc<State>) {
        for shard in 0..self.spec.count as usize {
            if shard == self.spec.index as usize
                || self.healthy[shard].load(Ordering::Relaxed)
                || self.probing[shard].swap(true, Ordering::Relaxed)
            {
                continue;
            }
            let st = Arc::clone(state);
            std::thread::spawn(move || {
                let sh = st.shards.as_ref().expect("probe spawned in shard mode");
                let addr = sh.spec.peers[shard].clone();
                while !st.stop.load(Ordering::Relaxed) {
                    if client::healthy(&addr, Duration::from_millis(300)) {
                        sh.healthy[shard].store(true, Ordering::Relaxed);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(500));
                }
                sh.probing[shard].store(false, Ordering::Relaxed);
            });
        }
    }
}

// ---------------------------------------------------------------------
// Grid parsing
// ---------------------------------------------------------------------

/// Everything a `POST /v1/sweep` body may carry: the grid axes plus the
/// sweep-level `render` and `stream` options.
fn parse_request(body: &[u8]) -> Result<(Grid, Option<Render>, bool), String> {
    let text = std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    let v = Json::parse(text).map_err(|e| format!("malformed request body: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request body must be a JSON object".to_string());
    }
    const KNOWN: [&str; 10] = [
        "workloads",
        "models",
        "scales",
        "seeds",
        "latencies",
        "scq_depths",
        "schedulers",
        "max_cycles",
        "render",
        "stream",
    ];
    for k in v.keys() {
        if !KNOWN.contains(&k) {
            return Err(format!("unknown field `{k}` (use {})", KNOWN.join(", ")));
        }
    }
    let axis = |name: &'static str| -> Result<Option<&Vec<Json>>, String> {
        match v.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Arr(items)) => Ok(Some(items)),
            Some(_) => Err(format!("field `{name}` must be an array")),
        }
    };

    let mut grid = Grid::default();
    if let Some(items) = axis("workloads")? {
        grid.workloads = items
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "field `workloads` must be an array of strings".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("models")? {
        grid.models = items
            .iter()
            .map(|j| {
                j.as_str()
                    .ok_or_else(|| "field `models` must be an array of strings".to_string())
                    .and_then(crate::parse_model)
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("scales")? {
        grid.scales = items
            .iter()
            .map(|j| {
                j.as_str()
                    .ok_or_else(|| "field `scales` must be an array of strings".to_string())
                    .and_then(crate::parse_scale)
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("seeds")? {
        grid.seeds = items
            .iter()
            .map(|j| {
                j.as_u64().ok_or_else(|| {
                    "field `seeds` must be an array of non-negative integers".to_string()
                })
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("latencies")? {
        grid.latencies = items
            .iter()
            .map(|j| match j {
                Json::Null => Ok(None),
                Json::Arr(pair) => {
                    let both = (pair.first().and_then(Json::as_u64))
                        .zip(pair.get(1).and_then(Json::as_u64))
                        .filter(|_| pair.len() == 2);
                    both.map(|(l2, mem)| Some((l2 as u32, mem as u32)))
                        .ok_or_else(|| {
                            "each `latencies` entry must be a [l2, mem] pair of non-negative \
                             integers (or null for the paper values)"
                                .to_string()
                        })
                }
                _ => Err("field `latencies` must be an array of [l2, mem] pairs".to_string()),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("scq_depths")? {
        grid.scq_depths = items
            .iter()
            .map(|j| match j {
                Json::Null => Ok(None),
                _ => j.as_u64().map(|d| Some(d as usize)).ok_or_else(|| {
                    "field `scq_depths` must be an array of non-negative integers or nulls"
                        .to_string()
                }),
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(items) = axis("schedulers")? {
        grid.schedulers = items
            .iter()
            .map(|j| match j {
                Json::Null => Ok(None),
                _ => j
                    .as_str()
                    .ok_or_else(|| {
                        "field `schedulers` must be an array of strings or nulls".to_string()
                    })
                    .and_then(crate::parse_scheduler)
                    .map(Some),
            })
            .collect::<Result<_, _>>()?;
    }
    grid.max_cycles = match v.get("max_cycles") {
        None | Some(Json::Null) => None,
        Some(j) => Some(
            j.as_u64()
                .ok_or_else(|| "field `max_cycles` must be a non-negative integer".to_string())?,
        ),
    };
    let render = match v.get("render") {
        None | Some(Json::Null) => None,
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| "field `render` must be a string".to_string())
                .and_then(Render::parse)?,
        ),
    };
    let stream = match v.get("stream") {
        None | Some(Json::Null) => true,
        Some(j) => j
            .as_bool()
            .ok_or_else(|| "field `stream` must be a boolean".to_string())?,
    };
    Ok((grid, render, stream))
}

/// The `/v1/run`-shaped spec of one planned point, for submission and
/// forwarding (no timeout, no telemetry — sweep points must hash, and
/// therefore cache, identically to their plain `/v1/run` twins).
fn spec_of(p: &Point) -> JobSpec {
    JobSpec {
        workload: p.workload.clone(),
        scale: p.scale,
        seed: p.seed,
        model: p.model,
        l2_lat: p.latency.map(|(l2, _)| l2),
        mem_lat: p.latency.map(|(_, mem)| mem),
        scq_depth: p.scq_depth,
        scheduler: p.scheduler,
        max_cycles: p.max_cycles,
        timeout_ms: None,
        metrics_interval: 0,
        program: None,
    }
}

// ---------------------------------------------------------------------
// NDJSON lines
// ---------------------------------------------------------------------

fn header_line(id: &str, plan_total: usize, duplicates: usize, rid: &str) -> String {
    format!(
        "{{\"sweep\":\"{id}\",\"status\":\"accepted\",\"total\":{plan_total},\
         \"duplicates\":{duplicates},\"requestId\":\"{}\"}}\n",
        escape(rid)
    )
}

#[allow(clippy::too_many_arguments)]
fn point_line(
    p: &SweepPoint,
    status: &str,
    cached: bool,
    outcome: Option<&str>,
    wall_ms: Option<u64>,
    error: Option<&str>,
    rid: &str,
) -> String {
    let mut s = format!(
        "{{\"point\":\"{}\",\"workload\":\"{}\",\"scale\":\"{}\",\"seed\":{},\
         \"model\":\"{}\",\"status\":\"{status}\"",
        p.id,
        escape(&p.point.workload),
        scale_name(p.point.scale),
        p.point.seed,
        p.point.model.name().to_lowercase(),
    );
    if status == "done" {
        s.push_str(&format!(",\"cached\":{cached}"));
    }
    if let Some(o) = outcome {
        s.push_str(&format!(",\"outcome\":\"{o}\""));
    }
    if let Some(ms) = wall_ms {
        s.push_str(&format!(",\"wallMs\":{ms}"));
    }
    if let Some(e) = error {
        s.push_str(&format!(",\"error\":\"{}\"", escape(e)));
    }
    s.push_str(&format!(",\"requestId\":\"{}\"}}\n", escape(rid)));
    s
}

fn summary_json(id: &str, e: &Entry, trailing_newline: bool) -> String {
    format!(
        "{{\"sweep\":\"{id}\",\"status\":\"{}\",\"total\":{},\"done\":{},\
         \"cached\":{},\"simulated\":{},\"forwarded\":{},\"failed\":{},\
         \"duplicates\":{},\"requestId\":\"{}\"}}{}",
        if e.finished { "done" } else { "running" },
        e.points.len(),
        e.done,
        e.cached,
        e.simulated,
        e.forwarded,
        e.failed,
        e.duplicates,
        escape(&e.request_id),
        if trailing_newline { "\n" } else { "" },
    )
}

// ---------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------

/// `POST /v1/sweep`: plan the grid, register (or coalesce onto) the
/// sweep, kick the first advance, and answer with either an attached
/// NDJSON stream (default) or a `202` snapshot.
pub(crate) fn post_sweep(state: &Arc<State>, body: &[u8], rid: &str) -> Reply {
    if state.stop.load(Ordering::Relaxed) {
        return error_reply(503, "shutting_down", "service is shutting down", rid);
    }
    let (grid, render, stream) = match parse_request(body) {
        Ok(parts) => parts,
        Err(msg) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return error_reply(400, "bad_request", &msg, rid);
        }
    };
    let plan: Plan = match hidisc_sweep::plan(&grid) {
        Ok(p) => p,
        Err(msg) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return error_reply(400, "bad_request", &msg, rid);
        }
    };
    let id = format!("{:016x}", plan.id);

    let mut sweeps = state.sweeps.lock().expect("sweeps lock");
    let coalesced = sweeps.map.contains_key(&id);
    if !coalesced {
        let points: Vec<SweepPoint> = plan
            .points
            .into_iter()
            .map(|pp: PlannedPoint| SweepPoint {
                id: format!("{:016x}", pp.key),
                point: pp.point,
                cfg: pp.cfg,
                key: pp.key,
                state: PState::New,
            })
            .collect();
        let mut entry = Entry {
            request_id: rid.to_string(),
            render,
            duplicates: plan.duplicates,
            lines: Vec::new(),
            done: 0,
            cached: 0,
            simulated: 0,
            forwarded: 0,
            failed: 0,
            finished: false,
            points,
        };
        entry.lines.push(Arc::new(header_line(
            &id,
            entry.points.len(),
            entry.duplicates,
            rid,
        )));
        if !sweeps.insert(id.clone(), entry) {
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return retry_reply(
                429,
                "too_many_sweeps",
                "every sweep slot is running; retry later",
                1_000,
                rid,
            );
        }
    }
    advance_locked(state, &mut sweeps);

    let e = sweeps.map.get(&id).expect("sweep just inserted or found");
    let mut r = if !stream {
        json_reply(
            if e.finished { 200 } else { 202 },
            summary_json(&id, e, true),
        )
    } else if e.finished {
        // Nothing left to stream: replay the full history as a plain
        // NDJSON body.
        let body: String = e.lines.iter().map(|l| l.as_str()).collect();
        let mut r = json_reply(200, body);
        r.content_type = "application/x-ndjson";
        r
    } else {
        let body: String = e.lines.iter().map(|l| l.as_str()).collect();
        let next = e.lines.len();
        let mut r = json_reply(200, body);
        r.content_type = "application/x-ndjson";
        r.stream = Some(crate::net::StreamBody {
            sweep: id.clone(),
            next,
        });
        r
    };
    r.disposition = if coalesced { "coalesced" } else { "submitted" };
    r
}

/// `GET /v1/sweeps/<id>` (progress snapshot) and
/// `GET /v1/sweeps/<id>/render` (assembled CSV once done).
pub(crate) fn get_sweep(state: &Arc<State>, suffix: &str, rid: &str) -> Reply {
    advance(state);
    if let Some(id) = suffix.strip_suffix("/render") {
        return render_sweep(state, id, rid);
    }
    let sweeps = state.sweeps.lock().expect("sweeps lock");
    match sweeps.map.get(suffix) {
        Some(e) => json_reply(200, summary_json(suffix, e, true)),
        None => error_reply(404, "not_found", &format!("no such sweep {suffix}"), rid),
    }
}

fn render_sweep(state: &Arc<State>, id: &str, rid: &str) -> Reply {
    let sweeps = state.sweeps.lock().expect("sweeps lock");
    let Some(e) = sweeps.map.get(id) else {
        return error_reply(404, "not_found", &format!("no such sweep {id}"), rid);
    };
    if !e.finished {
        return error_reply(
            409,
            "sweep_incomplete",
            &format!(
                "sweep {id} is still running ({}/{} points)",
                e.done,
                e.points.len()
            ),
            rid,
        );
    }
    if e.failed > 0 {
        return error_reply(
            409,
            "sweep_failed",
            &format!(
                "{} of {} points failed; nothing to render",
                e.failed,
                e.points.len()
            ),
            rid,
        );
    }
    let Some(render) = e.render else {
        return error_reply(
            400,
            "bad_request",
            "no render was requested for this sweep (pass \"render\" in the grid)",
            rid,
        );
    };
    // Rebuild each point's report inputs from its cached stats. The
    // registry lock nests inside the sweeps lock (the one legal order).
    let mut reg = state.registry.lock().expect("registry lock");
    let mut planned: Vec<PlannedPoint> = Vec::with_capacity(e.points.len());
    let mut stats: Vec<PointStats> = Vec::with_capacity(e.points.len());
    for p in &e.points {
        let raw: Arc<String> = match reg.jobs.get(&p.id).map(|j| &j.phase) {
            Some(Phase::Done { stats, .. }) => Arc::clone(stats),
            _ => match reg.cache.get(p.key) {
                Some(s) => s,
                None => {
                    return error_reply(
                        409,
                        "results_evicted",
                        &format!("results for point {} were evicted; re-run the sweep", p.id),
                        rid,
                    )
                }
            },
        };
        let Some(ps) = point_stats(&raw) else {
            return error_reply(
                500,
                "internal",
                &format!("stats for point {} do not parse", p.id),
                rid,
            );
        };
        planned.push(PlannedPoint {
            point: p.point.clone(),
            cfg: p.cfg,
            key: p.key,
        });
        stats.push(ps);
    }
    drop(reg);
    match hidisc_sweep::render_csv(render, &planned, &stats) {
        Ok(csv) => {
            let mut r = json_reply(200, csv);
            r.content_type = "text/csv";
            r
        }
        Err(msg) => error_reply(409, "render_shape", &msg, rid),
    }
}

/// Extracts the report inputs from one serialised `MachineStats`.
fn point_stats(raw: &str) -> Option<PointStats> {
    let v = Json::parse(raw).ok()?;
    let l1 = v.get("mem")?.get("l1")?;
    Some(PointStats {
        cycles: v.get("cycles")?.as_u64()?,
        work_instrs: v.get("workInstrs")?.as_u64()?,
        l1_demand_accesses: l1.get("demandAccesses")?.as_u64()?,
        l1_demand_misses: l1.get("demandMisses")?.as_u64()?,
    })
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

/// Drives every active sweep one step: routes `New` points (cache →
/// coalesce → submit local or forward), harvests terminal jobs, emits
/// progress lines, and finishes sweeps whose last point landed. Called
/// from the reactor on every wakeup and from the GET handlers; cheap
/// when nothing is active.
pub(crate) fn advance(state: &Arc<State>) {
    let mut sweeps = state.sweeps.lock().expect("sweeps lock");
    if sweeps.map.values().all(|e| e.finished) {
        return;
    }
    advance_locked(state, &mut sweeps);
}

fn advance_locked(state: &Arc<State>, sweeps: &mut Sweeps) {
    if let Some(sh) = &state.shards {
        sh.maybe_probe(state);
    }
    let ids: Vec<String> = sweeps
        .map
        .iter()
        .filter(|(_, e)| !e.finished)
        .map(|(id, _)| id.clone())
        .collect();
    for id in ids {
        let e = sweeps.map.get_mut(&id).expect("id just listed");
        let rid = e.request_id.clone();
        let mut reg = state.registry.lock().expect("registry lock");
        for i in 0..e.points.len() {
            let outcome: Option<(String, &'static str)> = {
                let p = &mut e.points[i];
                match p.state {
                    PState::Terminal => None,
                    PState::New => step_new(state, &mut reg, p, &rid),
                    PState::Waiting {
                        submitted_here,
                        via_forward,
                    } => step_waiting(state, &mut reg, p, &rid, submitted_here, via_forward),
                }
            };
            if let Some((line, kind)) = outcome {
                e.lines.push(Arc::new(line));
                e.done += 1;
                match kind {
                    "cached" => e.cached += 1,
                    "simulated" => e.simulated += 1,
                    "forwarded" => e.forwarded += 1,
                    _ => e.failed += 1,
                }
            }
        }
        drop(reg);
        if !e.finished && e.done == e.points.len() {
            e.finished = true;
            let summary = summary_json(&id, e, true);
            e.lines.push(Arc::new(summary));
            state.logger.log(
                hidisc::telemetry::log::Level::Info,
                "sweep_done",
                &[
                    ("request_id", e.request_id.as_str().into()),
                    ("sweep", id.as_str().into()),
                    ("total", e.points.len().into()),
                    ("cached", e.cached.into()),
                    ("simulated", e.simulated.into()),
                    ("forwarded", e.forwarded.into()),
                    ("failed", e.failed.into()),
                ],
            );
        }
    }
}

/// Routes one not-yet-dispatched point. Returns the terminal line when
/// the point resolved immediately (cache hit), `None` otherwise.
fn step_new(
    state: &Arc<State>,
    reg: &mut crate::Registry,
    p: &mut SweepPoint,
    rid: &str,
) -> Option<(String, &'static str)> {
    // Already answered? The result cache and the job registry are both
    // authoritative; neither costs a simulation.
    if let Some(Phase::Done { wall_ms, .. }) = reg.jobs.get(&p.id).map(|j| &j.phase) {
        let wall_ms = *wall_ms;
        p.state = PState::Terminal;
        state
            .counters
            .sweep_points_cached
            .fetch_add(1, Ordering::Relaxed);
        return Some((
            point_line(p, "done", true, Some("cached"), Some(wall_ms), None, rid),
            "cached",
        ));
    }
    if reg.cache.get(p.key).is_some() {
        p.state = PState::Terminal;
        state
            .counters
            .sweep_points_cached
            .fetch_add(1, Ordering::Relaxed);
        return Some((
            point_line(p, "done", true, Some("cached"), None, None, rid),
            "cached",
        ));
    }
    if let Some(Phase::Queued | Phase::Running) = reg.jobs.get(&p.id).map(|j| &j.phase) {
        // Coalesce onto the in-flight job another request created.
        state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        p.state = PState::Waiting {
            submitted_here: false,
            via_forward: false,
        };
        return None;
    }

    let decision = match &state.shards {
        Some(sh) => sh.route(p.key),
        None => RouteDecision::Local,
    };
    let via_forward = matches!(decision, RouteDecision::Forward(..));
    let spec = spec_of(&p.point);
    let submit = {
        let st = Arc::clone(state);
        let id2 = p.id.clone();
        let key = p.key;
        let cfg2 = p.cfg;
        let rid2 = rid.to_string();
        let queued_at = Instant::now();
        let workers = state.workers.lock().expect("workers lock");
        let Some(w) = workers.as_ref() else {
            p.state = PState::Terminal;
            state
                .counters
                .sweep_points_failed
                .fetch_add(1, Ordering::Relaxed);
            return Some((
                point_line(
                    p,
                    "error",
                    false,
                    None,
                    None,
                    Some("service is shutting down"),
                    rid,
                ),
                "failed",
            ));
        };
        match decision {
            RouteDecision::Forward(owner, addr) => {
                w.try_submit(move || forward_job(st, id2, key, spec, cfg2, rid2, addr, owner))
            }
            RouteDecision::Local | RouteDecision::Fallback => {
                if matches!(decision, RouteDecision::Fallback) {
                    state
                        .counters
                        .shard_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                }
                w.try_submit(move || crate::execute_job(st, id2, key, spec, cfg2, rid2, queued_at))
            }
        }
    };
    match submit {
        Ok(()) => {
            state.counters.submitted.fetch_add(1, Ordering::Relaxed);
            reg.jobs.insert(
                p.id.clone(),
                JobEntry {
                    workload: p.point.workload.clone(),
                    scale: p.point.scale,
                    seed: p.point.seed,
                    model: p.point.model,
                    phase: Phase::Queued,
                    request_id: rid.to_string(),
                },
            );
            p.state = PState::Waiting {
                submitted_here: true,
                via_forward,
            };
            None
        }
        // Queue full: stay `New`; the next tick retries (backpressure).
        Err(SubmitError::Full) => None,
        Err(SubmitError::Closed) => {
            p.state = PState::Terminal;
            state
                .counters
                .sweep_points_failed
                .fetch_add(1, Ordering::Relaxed);
            Some((
                point_line(
                    p,
                    "error",
                    false,
                    None,
                    None,
                    Some("service is shutting down"),
                    rid,
                ),
                "failed",
            ))
        }
    }
}

/// Polls one in-flight point against the job registry.
fn step_waiting(
    state: &Arc<State>,
    reg: &mut crate::Registry,
    p: &mut SweepPoint,
    rid: &str,
    submitted_here: bool,
    via_forward: bool,
) -> Option<(String, &'static str)> {
    match reg.jobs.get(&p.id).map(|j| &j.phase) {
        Some(Phase::Queued | Phase::Running) => None,
        Some(Phase::Done { wall_ms, .. }) => {
            let wall_ms = *wall_ms;
            p.state = PState::Terminal;
            let fell_back = state
                .shards
                .as_ref()
                .is_some_and(|sh| sh.was_fallback(&p.id));
            let kind = if !submitted_here {
                "cached"
            } else if via_forward && !fell_back {
                "forwarded"
            } else {
                "simulated"
            };
            match kind {
                "cached" => &state.counters.sweep_points_cached,
                "forwarded" => &state.counters.sweep_points_forwarded,
                _ => &state.counters.sweep_points_simulated,
            }
            .fetch_add(1, Ordering::Relaxed);
            Some((
                point_line(
                    p,
                    "done",
                    kind == "cached",
                    Some(kind),
                    Some(wall_ms),
                    None,
                    rid,
                ),
                kind,
            ))
        }
        Some(Phase::Failed { error }) => {
            let error = error.clone();
            p.state = PState::Terminal;
            state
                .counters
                .sweep_points_failed
                .fetch_add(1, Ordering::Relaxed);
            Some((
                point_line(p, "error", false, None, None, Some(&error), rid),
                "failed",
            ))
        }
        // Evicted mid-wait (tiny registry bound): the cache may still
        // have it; otherwise resubmit on the next tick.
        None => {
            if reg.cache.get(p.key).is_some() {
                p.state = PState::Terminal;
                state
                    .counters
                    .sweep_points_cached
                    .fetch_add(1, Ordering::Relaxed);
                Some((
                    point_line(p, "done", true, Some("cached"), None, None, rid),
                    "cached",
                ))
            } else {
                p.state = PState::New;
                None
            }
        }
    }
}

/// Runs on a worker thread: evaluates one point on the peer shard that
/// owns it, falling back to local evaluation (degraded mode) when the
/// peer cannot be reached or fails.
#[allow(clippy::too_many_arguments)]
fn forward_job(
    state: Arc<State>,
    id: String,
    key: u64,
    spec: JobSpec,
    cfg: MachineConfig,
    rid: String,
    addr: String,
    owner: usize,
) {
    {
        let mut reg = state.registry.lock().expect("registry lock");
        if let Some(e) = reg.jobs.get_mut(&id) {
            e.phase = Phase::Running;
        }
    }
    let started = Instant::now();
    match client::run_on_peer(&addr, &spec.to_json(), &id, FORWARD_DEADLINE) {
        Ok(stats) => {
            let wall_ms = started.elapsed().as_millis() as u64;
            let stats = Arc::new(stats);
            let mut reg = state.registry.lock().expect("registry lock");
            reg.cache.insert(key, Arc::clone(&stats));
            state.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = reg.jobs.get_mut(&id) {
                e.phase = Phase::Done { stats, wall_ms };
                reg.mark_terminal(id.clone());
            }
            state.logger.log(
                hidisc::telemetry::log::Level::Info,
                "job_forwarded",
                &[
                    ("request_id", rid.as_str().into()),
                    ("job", id.as_str().into()),
                    ("peer", addr.as_str().into()),
                    ("wall_ms", wall_ms.into()),
                ],
            );
        }
        Err(err) => {
            state.logger.log(
                hidisc::telemetry::log::Level::Warn,
                "shard_forward_failed",
                &[
                    ("request_id", rid.as_str().into()),
                    ("job", id.as_str().into()),
                    ("peer", addr.as_str().into()),
                    ("error", err.as_str().into()),
                ],
            );
            if let Some(sh) = &state.shards {
                sh.mark_unhealthy(owner);
                sh.note_fallback(&id);
            }
            state
                .counters
                .shard_fallbacks
                .fetch_add(1, Ordering::Relaxed);
            crate::execute_job(state, id, key, spec, cfg, rid, Instant::now());
        }
    }
}

// ---------------------------------------------------------------------
// Stream pumping and teardown
// ---------------------------------------------------------------------

/// Feeds one streaming connection whatever sweep lines it has not seen
/// yet, terminating the chunked body once the sweep finishes. Called
/// from the reactor; locks only the sweep registry.
pub(crate) fn pump_conn(conn: &mut Conn, state: &Arc<State>) {
    if conn.backlogged() {
        return;
    }
    let Some(sb) = conn.stream_mut() else {
        return;
    };
    let sweep_id = sb.sweep.clone();
    let next = sb.next;
    let snapshot = {
        let sweeps = state.sweeps.lock().expect("sweeps lock");
        sweeps.map.get(&sweep_id).map(|e| {
            let chunks: Vec<Arc<String>> = e.lines[next.min(e.lines.len())..].to_vec();
            (chunks, e.lines.len(), e.finished)
        })
    };
    // Evicted under the attached stream (possible only once finished):
    // terminate cleanly.
    let Some((chunks, total, finished)) = snapshot else {
        conn.finish_stream();
        return;
    };
    for line in &chunks {
        conn.push_stream_chunk(line.as_bytes());
    }
    if let Some(sb) = conn.stream_mut() {
        sb.next = total;
    }
    if finished {
        conn.finish_stream();
    }
}

/// Fails every outstanding point of every unfinished sweep (service
/// teardown): pollers see `error` points and a terminal summary, and
/// attached streams terminate on the reactor's final pump.
pub(crate) fn fail_unfinished(state: &Arc<State>, reason: &str) {
    let mut sweeps = state.sweeps.lock().expect("sweeps lock");
    let ids: Vec<String> = sweeps
        .map
        .iter()
        .filter(|(_, e)| !e.finished)
        .map(|(id, _)| id.clone())
        .collect();
    for id in ids {
        let e = sweeps.map.get_mut(&id).expect("id just listed");
        let rid = e.request_id.clone();
        for i in 0..e.points.len() {
            let line = {
                let p = &mut e.points[i];
                if matches!(p.state, PState::Terminal) {
                    continue;
                }
                p.state = PState::Terminal;
                point_line(p, "error", false, None, None, Some(reason), &rid)
            };
            e.lines.push(Arc::new(line));
            e.done += 1;
            e.failed += 1;
            state
                .counters
                .sweep_points_failed
                .fetch_add(1, Ordering::Relaxed);
        }
        e.finished = true;
        let summary = summary_json(&id, e, true);
        e.lines.push(Arc::new(summary));
    }
}
