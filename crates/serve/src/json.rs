//! A minimal JSON value parser/encoder for request bodies and
//! responses. The suite is std-only by policy (see ROADMAP), so this is
//! hand-rolled; it covers the full JSON grammar but keeps numbers as
//! `f64` (request fields are small integers and strings).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`; use [`Json::as_u64`] for counts).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting the parser accepts. The parser recurses per
/// level, so untrusted input must not choose the recursion depth: a
/// request body of `MAX_BODY` open brackets would otherwise overflow the
/// connection thread's stack and abort the whole process.
pub const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i, 0)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing characters at byte {i}"));
        }
        Ok(v)
    }

    /// Object field lookup (None on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object keys, for unknown-field diagnostics.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{' | b'[') if depth >= MAX_DEPTH => Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {i}"
        )),
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i, depth + 1)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {i} is not a string")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                let v = parse_value(b, i, depth + 1)?;
                fields.push((key, v));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i, depth + 1)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b't') => lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => lit(b, i, "false", Json::Bool(false)),
        Some(b'n') => lit(b, i, "null", Json::Null),
        Some(_) => parse_number(b, i),
    }
}

fn lit(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    *i += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates map to the replacement character; the
                        // service never emits them.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
            }
            Some(&c) => {
                if c < 0x20 {
                    return Err(format!("raw control character at byte {i}"));
                }
                // Copy the full UTF-8 sequence.
                let start = *i;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(start..start + len)
                    .ok_or("truncated UTF-8 sequence".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *i += len;
            }
        }
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *i += 1;
    }
    let txt = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    txt.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{txt}` at byte {start}"))
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap(), &Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    /// A body of nothing but open brackets must come back as a parse
    /// error, not unbounded recursion: the service feeds this parser
    /// attacker-controlled bodies up to `http::MAX_BODY` bytes.
    #[test]
    fn deep_nesting_is_rejected_not_recursed() {
        for bomb in ["[".repeat(1024 * 1024), "{\"k\":".repeat(1024 * 1024)] {
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.contains("nesting deeper"), "error was: {err}");
        }
        // Depths inside the limit still parse.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn integer_extraction_is_exact() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "quote\" slash\\ newline\n tab\t control\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        assert_eq!(
            Json::parse(&doc).unwrap().get("k").unwrap().as_str(),
            Some(s)
        );
    }
}
