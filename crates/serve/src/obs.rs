//! Request-observability primitives for the serve stack (DESIGN.md §18):
//! request-id generation, canonical route labels, and the RED metric
//! registry — per-route × status-class counters plus real Prometheus
//! histograms for request latency, job phases, time-to-first-byte and
//! connection lifetime — rendered into `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use hidisc::fnv1a;
use hidisc::telemetry::{prometheus_histogram, Histogram};

// ---------------------------------------------------------------------
// Request ids
// ---------------------------------------------------------------------

/// Cap on an inbound `X-Request-Id` value the service will honor.
pub const MAX_REQUEST_ID_LEN: usize = 64;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        let mut h = fnv1a(hidisc::FNV_OFFSET, &now.as_nanos().to_le_bytes());
        h = fnv1a(h, &std::process::id().to_le_bytes());
        h
    })
}

/// A fresh request id: 16 lowercase hex digits, unique within the
/// process and seeded per process so ids from several serve instances
/// do not collide in a shared log store.
pub(crate) fn fresh_request_id() -> String {
    let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}", fnv1a(process_seed(), &n.to_le_bytes()))
}

/// An inbound `X-Request-Id` is honored when it is non-empty, at most
/// [`MAX_REQUEST_ID_LEN`] bytes and token-ish (`[A-Za-z0-9._-]`), so a
/// hostile value cannot smuggle header/log/JSON syntax back out.
pub(crate) fn acceptable_request_id(v: &str) -> bool {
    !v.is_empty()
        && v.len() <= MAX_REQUEST_ID_LEN
        && v.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

// ---------------------------------------------------------------------
// Canonical routes
// ---------------------------------------------------------------------

/// Canonical route labels — a closed set so metric cardinality stays
/// bounded no matter what paths clients probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    Healthz,
    Metrics,
    Run,
    Jobs,
    Sweep,
    Shutdown,
    /// Legacy unversioned paths answering `308` to their `/v1/` twin.
    Legacy,
    /// Everything else (404s, probes, parse errors).
    Other,
}

impl Route {
    pub const ALL: [Route; 8] = [
        Route::Healthz,
        Route::Metrics,
        Route::Run,
        Route::Jobs,
        Route::Sweep,
        Route::Shutdown,
        Route::Legacy,
        Route::Other,
    ];

    /// Classifies a request path (any method).
    pub fn of(path: &str) -> Route {
        match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/v1/run" => Route::Run,
            "/v1/sweep" => Route::Sweep,
            "/v1/shutdown" => Route::Shutdown,
            p if p.starts_with("/v1/jobs/") => Route::Jobs,
            p if p.starts_with("/v1/sweeps/") => Route::Sweep,
            p if crate::legacy_twin(p).is_some() => Route::Legacy,
            _ => Route::Other,
        }
    }

    /// The `route` label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Run => "run",
            Route::Jobs => "jobs",
            Route::Sweep => "sweep",
            Route::Shutdown => "shutdown",
            Route::Legacy => "legacy",
            Route::Other => "other",
        }
    }
}

/// Phases of one job's life, each fed into the job-phase histogram.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobPhase {
    /// Submit accepted → a worker picked the job up.
    QueueWait,
    /// Simulation wall time (assemble/compile/slice + machine run).
    SimRun,
    /// Result serialization: stats JSON → cache + registry publication.
    Serialize,
}

impl JobPhase {
    const ALL: [JobPhase; 3] = [JobPhase::QueueWait, JobPhase::SimRun, JobPhase::Serialize];

    fn label(self) -> &'static str {
        match self {
            JobPhase::QueueWait => "queue_wait",
            JobPhase::SimRun => "sim_run",
            JobPhase::Serialize => "serialize",
        }
    }
}

// ---------------------------------------------------------------------
// RED metrics
// ---------------------------------------------------------------------

/// Status classes tracked per route (`1xx` … `5xx`).
const CLASSES: [&str; 5] = ["1xx", "2xx", "3xx", "4xx", "5xx"];

fn class_of(status: u16) -> usize {
    ((status / 100).clamp(1, 5) - 1) as usize
}

/// Histogram shapes, all fixed-bucket ([`Histogram`]) with an overflow
/// bucket that becomes the `le="+Inf"` line:
/// request duration 250 µs × 40 (10 ms span), job phases 5 ms × 80
/// (400 ms), TTFB 250 µs × 40, connection lifetime 250 ms × 120 (30 s).
/// Values past the span still count (overflow bucket + exact `_sum`).
const DURATION_US: (u64, usize) = (250, 40);
const PHASE_US: (u64, usize) = (5_000, 80);
const TTFB_US: (u64, usize) = (250, 40);
const LIFETIME_MS: (u64, usize) = (250, 120);

/// The service's request-level metric registry. Counters are atomics;
/// histograms sit behind one mutex each, touched by the reactor thread
/// (requests, TTFB, lifetimes) and the workers (job phases).
pub(crate) struct HttpMetrics {
    /// Requests by `[route][status class]`.
    by_route: [[AtomicU64; CLASSES.len()]; Route::ALL.len()],
    /// Routing+handler latency per route, recorded in microseconds.
    duration: Mutex<Vec<Histogram>>,
    /// Job phase durations, recorded in microseconds.
    phase: Mutex<Vec<Histogram>>,
    /// Connection open → first response byte, microseconds.
    ttfb: Mutex<Histogram>,
    /// Connection open → close, milliseconds.
    lifetime: Mutex<Histogram>,
}

impl HttpMetrics {
    pub fn new() -> HttpMetrics {
        HttpMetrics {
            by_route: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            duration: Mutex::new(
                (0..Route::ALL.len())
                    .map(|_| Histogram::new(DURATION_US.0, DURATION_US.1))
                    .collect(),
            ),
            phase: Mutex::new(
                (0..JobPhase::ALL.len())
                    .map(|_| Histogram::new(PHASE_US.0, PHASE_US.1))
                    .collect(),
            ),
            ttfb: Mutex::new(Histogram::new(TTFB_US.0, TTFB_US.1)),
            lifetime: Mutex::new(Histogram::new(LIFETIME_MS.0, LIFETIME_MS.1)),
        }
    }

    /// One routed request: counts it and records handler latency.
    pub fn record_request(&self, route: Route, status: u16, dur: Duration) {
        let r = route_index(route);
        self.by_route[r][class_of(status)].fetch_add(1, Ordering::Relaxed);
        self.duration.lock().expect("duration lock")[r].record(micros(dur));
    }

    /// One completed job phase.
    pub fn record_phase(&self, phase: JobPhase, dur: Duration) {
        self.phase.lock().expect("phase lock")[phase as usize].record(micros(dur));
    }

    /// First response byte of a connection.
    pub fn record_ttfb(&self, dur: Duration) {
        self.ttfb.lock().expect("ttfb lock").record(micros(dur));
    }

    /// A connection closed after `dur`.
    pub fn record_conn_lifetime(&self, dur: Duration) {
        self.lifetime
            .lock()
            .expect("lifetime lock")
            .record(dur.as_millis().min(u64::MAX as u128) as u64);
    }

    /// Appends every family in Prometheus text format. Counter series
    /// are emitted only once non-zero (the closed label set keeps that
    /// deterministic); histogram families are emitted once any route
    /// recorded, which `/metrics` itself guarantees.
    pub fn render(&self, out: &mut String) {
        out.push_str(
            "# HELP hidisc_serve_requests_by_route_total Requests by canonical route and \
             status class.\n# TYPE hidisc_serve_requests_by_route_total counter\n",
        );
        for (r, route) in Route::ALL.iter().enumerate() {
            for (c, class) in CLASSES.iter().enumerate() {
                let v = self.by_route[r][c].load(Ordering::Relaxed);
                if v > 0 {
                    out.push_str(&format!(
                        "hidisc_serve_requests_by_route_total{{route=\"{}\",class=\"{class}\"}} \
                         {v}\n",
                        route.label()
                    ));
                }
            }
        }
        out.push_str(
            "# HELP hidisc_serve_request_duration_seconds Routing+handler latency per \
             canonical route (socket writes excluded).\n\
             # TYPE hidisc_serve_request_duration_seconds histogram\n",
        );
        {
            let d = self.duration.lock().expect("duration lock");
            for (r, route) in Route::ALL.iter().enumerate() {
                if d[r].total() > 0 {
                    prometheus_histogram(
                        out,
                        "hidisc_serve_request_duration_seconds",
                        &format!("route=\"{}\"", route.label()),
                        &d[r],
                        6,
                    );
                }
            }
        }
        out.push_str(
            "# HELP hidisc_serve_job_phase_seconds Job time by phase: queue_wait \
             (submit to pickup), sim_run (simulation wall), serialize (result \
             publication).\n# TYPE hidisc_serve_job_phase_seconds histogram\n",
        );
        {
            let p = self.phase.lock().expect("phase lock");
            for (i, phase) in JobPhase::ALL.iter().enumerate() {
                if p[i].total() > 0 {
                    prometheus_histogram(
                        out,
                        "hidisc_serve_job_phase_seconds",
                        &format!("phase=\"{}\"", phase.label()),
                        &p[i],
                        6,
                    );
                }
            }
        }
        out.push_str(
            "# HELP hidisc_serve_time_to_first_byte_seconds Connection accept to first \
             response byte.\n# TYPE hidisc_serve_time_to_first_byte_seconds histogram\n",
        );
        {
            let h = self.ttfb.lock().expect("ttfb lock");
            if h.total() > 0 {
                prometheus_histogram(out, "hidisc_serve_time_to_first_byte_seconds", "", &h, 6);
            }
        }
        out.push_str(
            "# HELP hidisc_serve_connection_lifetime_seconds Connection accept to \
             close.\n# TYPE hidisc_serve_connection_lifetime_seconds histogram\n",
        );
        {
            let h = self.lifetime.lock().expect("lifetime lock");
            if h.total() > 0 {
                prometheus_histogram(out, "hidisc_serve_connection_lifetime_seconds", "", &h, 3);
            }
        }
    }
}

fn route_index(route: Route) -> usize {
    route as usize
}

fn micros(dur: Duration) -> u64 {
    dur.as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_hex_and_distinct() {
        let a = fresh_request_id();
        let b = fresh_request_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16, "{id}");
            assert!(id.bytes().all(|c| c.is_ascii_hexdigit()), "{id}");
            assert!(acceptable_request_id(id), "{id}");
        }
    }

    #[test]
    fn inbound_request_ids_are_sanitized() {
        assert!(acceptable_request_id("client-id_1.2"));
        assert!(!acceptable_request_id(""));
        assert!(!acceptable_request_id("has space"));
        assert!(!acceptable_request_id("crlf\r\ninjection"));
        assert!(!acceptable_request_id("quote\"x"));
        assert!(!acceptable_request_id(&"a".repeat(MAX_REQUEST_ID_LEN + 1)));
    }

    #[test]
    fn routes_classify_paths_canonically() {
        assert_eq!(Route::of("/healthz"), Route::Healthz);
        assert_eq!(Route::of("/v1/run"), Route::Run);
        assert_eq!(Route::of("/v1/jobs/0123abc"), Route::Jobs);
        assert_eq!(Route::of("/v1/sweep"), Route::Sweep);
        assert_eq!(Route::of("/v1/sweeps/0123abc"), Route::Sweep);
        assert_eq!(Route::of("/v1/sweeps/0123abc/render"), Route::Sweep);
        assert_eq!(Route::of("/run"), Route::Legacy);
        assert_eq!(Route::of("/jobs/0123abc"), Route::Legacy);
        assert_eq!(Route::of("/nope"), Route::Other);
    }

    #[test]
    fn metrics_render_counts_and_histograms() {
        let m = HttpMetrics::new();
        m.record_request(Route::Run, 202, Duration::from_micros(300));
        m.record_request(Route::Run, 400, Duration::from_micros(100));
        m.record_request(Route::Sweep, 200, Duration::from_micros(250));
        m.record_phase(JobPhase::SimRun, Duration::from_millis(12));
        m.record_ttfb(Duration::from_micros(90));
        m.record_conn_lifetime(Duration::from_millis(700));
        let mut out = String::new();
        m.render(&mut out);
        assert!(
            out.contains("hidisc_serve_requests_by_route_total{route=\"run\",class=\"2xx\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("hidisc_serve_requests_by_route_total{route=\"run\",class=\"4xx\"} 1\n"),
            "{out}"
        );
        // Cumulative buckets: both requests land by the 500 µs edge.
        assert!(
            out.contains(
                "hidisc_serve_request_duration_seconds_bucket{route=\"run\",le=\"0.0005\"} 2\n"
            ),
            "{out}"
        );
        assert!(
            out.contains("hidisc_serve_request_duration_seconds_count{route=\"run\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("hidisc_serve_job_phase_seconds_bucket{phase=\"sim_run\",le=\"0.015\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("hidisc_serve_connection_lifetime_seconds_sum 0.7\n"),
            "{out}"
        );
        // The live sweep route records RED metrics like any other.
        assert!(
            out.contains("hidisc_serve_requests_by_route_total{route=\"sweep\",class=\"2xx\"} 1\n"),
            "{out}"
        );
        // Untouched routes stay silent; the family headers render once.
        assert!(!out.contains("route=\"shutdown\""), "{out}");
        assert_eq!(
            out.matches("# TYPE hidisc_serve_request_duration_seconds histogram")
                .count(),
            1
        );
    }
}
