//! `hidisc-serve` — simulation as a service.
//!
//! An HTTP/1.1 service (std + the vendored `epoll-shim`) that turns the
//! one-shot simulator into a long-lived endpoint (see DESIGN.md §14/§17).
//! The front end is a single-threaded, readiness-based **reactor**: every
//! connection is a non-blocking socket parked in epoll, with keep-alive
//! and pipelined requests handled per connection, so one box holds 10k+
//! concurrent connections while the bounded worker pool simulates.
//!
//! The API surface is versioned under `/v1/` (probes stay unversioned):
//!
//! - `POST /v1/run` submits a config+workload job. Identical experiments
//!   are **content-addressed**: the job id is the hex of a canonical
//!   hash over (machine config, workload, scale, seed, model), so
//!   duplicate submissions coalesce onto the in-flight run and repeated
//!   ones return instantly from the result cache (`cached: true`).
//! - `GET /v1/jobs/<id>` polls status/result.
//! - `POST /v1/sweep` submits a parameter *grid* (`hidisc-sweep`): the
//!   planner expands it server-side into deduplicated content-addressed
//!   jobs (cached points answer without simulation), submits them
//!   through the same bounded pool, and — by default — streams one
//!   NDJSON line per point as results land (chunked transfer encoding).
//!   The sweep id hashes the *sorted* point set, so equivalent grids
//!   coalesce. A `render` option assembles fig8/fig9/fig10/table1 CSV
//!   from the completed points.
//! - `GET /v1/sweeps/<id>` polls sweep progress;
//!   `GET /v1/sweeps/<id>/render` returns the rendered CSV once done.
//! - `GET /healthz` is a liveness probe.
//! - `GET /metrics` exposes per-service counters plus the latest run's
//!   interval metrics in Prometheus text format.
//! - `POST /v1/shutdown` initiates graceful shutdown: in-flight jobs
//!   finish, queued jobs are failed, the listener closes.
//! - Legacy unversioned paths (`/run`, `/jobs/<id>`, `/shutdown`) answer
//!   `308 Permanent Redirect` to their `/v1/` twin.
//!
//! Every error body is one structured envelope
//! `{"code","message","retry_after_ms"?,"request_id"}`; `code` carries
//! the typed [`ConfigError`]/verifier diagnostic code where one exists.
//!
//! Backpressure: the job queue is bounded; a full queue answers `429`
//! with a `Retry-After` hint instead of buffering without bound, and
//! connections past the cap answer `503`. Sweep points ride the same
//! bounded pool — unsubmitted points simply wait for a free slot.
//!
//! Shard mode (`repro serve --shard-of k/N --peers <addrs>`): sweep
//! points are routed by `content_address % N`; points owned by a peer
//! are forwarded to it (`POST /v1/run` + poll) from a worker thread,
//! with per-shard health tracking and local fallback evaluation when
//! the owner is down (degraded mode, never a failed sweep).
//!
//! Observability (DESIGN.md §18): every response carries an
//! `X-Request-Id` (minted per request, or echoing an acceptable inbound
//! one), the same id is stamped on the job a `POST /v1/run` creates and
//! on every log line the request produces; `/metrics` adds per-route ×
//! status-class counters and real Prometheus histograms (request
//! duration, job phases, TTFB, connection lifetime); structured logfmt /
//! JSON-lines logging is configured via [`ServeConfigBuilder::log_level`]
//! and friends (`repro serve --log-level/--log-format/--log-file/
//! --slow-request-ms`).

#![forbid(unsafe_code)]

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hidisc::telemetry::log::{Level, LogFormat, Logger};
use hidisc::telemetry::{metrics_prometheus, IntervalMetrics};
use hidisc::{ConfigError, Machine, MachineConfig, Model, RunError, Scheduler};
use hidisc_bench::pool::{SubmitError, Workers};
use hidisc_slicer::{compile, CompilerConfig};
use hidisc_workloads::Scale;

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
mod net;
pub(crate) mod obs;
mod reactor;
pub mod scale;
pub(crate) mod sweeps;

use cache::{CheckpointStore, ResultCache};
use json::{escape, Json};
use net::Reply;
use obs::{HttpMetrics, JobPhase};

/// Crate version baked into `/healthz` and `hidisc_build_info`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git revision the binary was built from (`unknown` outside a
/// checkout), baked in by `build.rs`.
pub const GIT_SHA: &str = env!("HIDISC_GIT_SHA");

/// Default [`ServeConfig::warm_checkpoint_cycle`].
pub const WARM_CHECKPOINT_CYCLE: u64 = 20_000;

// ---------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------

/// A validated `POST /run` request body.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name (any name `hidisc_workloads::by_name` accepts).
    pub workload: String,
    /// Workload scale (`test`, `paper`, `large`).
    pub scale: Scale,
    /// Workload generator seed.
    pub seed: u64,
    /// Machine model to run.
    pub model: Model,
    /// L2 latency override (Figure-10 style), paper value when absent.
    pub l2_lat: Option<u32>,
    /// Memory latency override, paper value when absent.
    pub mem_lat: Option<u32>,
    /// SCQ depth override.
    pub scq_depth: Option<usize>,
    /// Issue-scheduler override.
    pub scheduler: Option<Scheduler>,
    /// Per-request cycle budget (maps onto [`RunError::CycleBudget`]).
    pub max_cycles: Option<u64>,
    /// Per-request wall-clock timeout in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Interval-metrics sampling period (0 = off).
    pub metrics_interval: u64,
    /// Custom DISA assembly source. When present the job assembles,
    /// slices and runs this program instead of a named workload (then
    /// `workload` merely labels the job, defaulting to `custom`). The
    /// sliced triple must pass static verification (`hidisc-verify`)
    /// before the job is admitted; a rejected program answers `400` with
    /// the verifier's diagnostic.
    pub program: Option<String>,
}

/// Upper bound on custom program source (bytes) accepted by `POST /run`.
pub const MAX_PROGRAM_BYTES: usize = 64 * 1024;

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "test" => Ok(Scale::Test),
        "paper" => Ok(Scale::Paper),
        "large" => Ok(Scale::Large),
        other => Err(format!("unknown scale `{other}` (use test|paper|large)")),
    }
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Paper => "paper",
        Scale::Large => "large",
    }
}

fn parse_model(s: &str) -> Result<Model, String> {
    Model::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            let names: Vec<String> = Model::ALL.iter().map(|m| m.name().to_lowercase()).collect();
            format!("unknown model `{s}` (use {})", names.join("|"))
        })
}

fn parse_scheduler(s: &str) -> Result<Scheduler, String> {
    match s {
        "ready" => Ok(Scheduler::ReadyList),
        "scan" => Ok(Scheduler::Scan),
        other => Err(format!("unknown scheduler `{other}` (use ready|scan)")),
    }
}

impl JobSpec {
    /// Parses and validates a request body. Unknown fields, unknown
    /// workload names and type mismatches are rejected with a message
    /// (served as `400`, matching the CLI's exit-code-2 diagnostics).
    pub fn from_json(body: &[u8]) -> Result<JobSpec, String> {
        let text =
            std::str::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
        let v = Json::parse(text).map_err(|e| format!("malformed request body: {e}"))?;
        if !matches!(v, Json::Obj(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        const KNOWN: [&str; 12] = [
            "workload",
            "scale",
            "seed",
            "model",
            "l2_lat",
            "mem_lat",
            "scq_depth",
            "scheduler",
            "max_cycles",
            "timeout_ms",
            "metrics_interval",
            "program",
        ];
        for k in v.keys() {
            if !KNOWN.contains(&k) {
                return Err(format!("unknown field `{k}` (use {})", KNOWN.join(", ")));
            }
        }
        let str_field = |name: &str| -> Result<Option<String>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("field `{name}` must be a string")),
            }
        };
        let num_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(j) => j
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("field `{name}` must be a non-negative integer")),
            }
        };

        let program = str_field("program")?;
        if let Some(p) = &program {
            if p.len() > MAX_PROGRAM_BYTES {
                return Err(format!(
                    "field `program` is {} bytes; the cap is {MAX_PROGRAM_BYTES}",
                    p.len()
                ));
            }
        }
        let workload = match (str_field("workload")?, &program) {
            (Some(w), _) => w,
            (None, Some(_)) => "custom".to_string(),
            (None, None) => return Err("missing field `workload`".to_string()),
        };
        if program.is_none() && !hidisc_workloads::names().contains(&workload.as_str()) {
            return Err(format!(
                "unknown workload `{workload}` (use {})",
                hidisc_workloads::names().join("|")
            ));
        }
        let scale = match str_field("scale")? {
            None => Scale::Test,
            Some(s) => parse_scale(&s)?,
        };
        let model = match str_field("model")? {
            None => Model::HiDisc,
            Some(s) => parse_model(&s)?,
        };
        let scheduler = match str_field("scheduler")? {
            None => None,
            Some(s) => Some(parse_scheduler(&s)?),
        };
        Ok(JobSpec {
            workload,
            scale,
            seed: num_field("seed")?.unwrap_or(2003),
            model,
            l2_lat: num_field("l2_lat")?.map(|v| v as u32),
            mem_lat: num_field("mem_lat")?.map(|v| v as u32),
            scq_depth: num_field("scq_depth")?.map(|v| v as usize),
            scheduler,
            max_cycles: num_field("max_cycles")?,
            timeout_ms: num_field("timeout_ms")?,
            metrics_interval: num_field("metrics_interval")?.unwrap_or(0),
            program,
        })
    }

    /// Assembles the machine configuration through the validating
    /// builder (the same path as `repro`'s sweep flags). Delegates to
    /// `hidisc-sweep`'s [`hidisc_sweep::build_config`], the shared
    /// single source of truth, so a sweep point and an equivalent
    /// `/v1/run` request build (and hash) identically.
    pub fn config(&self) -> Result<MachineConfig, ConfigError> {
        hidisc_sweep::build_config(
            self.l2_lat,
            self.mem_lat,
            self.scq_depth,
            self.scheduler,
            self.max_cycles,
            self.metrics_interval,
        )
    }

    /// The job's content-address: the config's canonical hash extended
    /// with the workload identity (name, scale, seed) and the model.
    /// Telemetry settings and the wall-clock timeout are deliberately
    /// excluded — they do not change simulated results (the cycle
    /// budget, part of the config, is included). Delegates to
    /// [`hidisc_sweep::job_key`] so sweep points share cache entries.
    pub fn key(&self, cfg: &MachineConfig) -> u64 {
        hidisc_sweep::job_key(
            cfg,
            &self.workload,
            self.scale,
            self.seed,
            self.model,
            self.program.as_deref(),
        )
    }

    /// The warm-start address: like [`JobSpec::key`] but seeded from
    /// [`MachineConfig::warm_hash`], which normalises the cycle and
    /// deadlock budgets away. Budgets only decide where a run *stops*,
    /// not how state *evolves*, so two jobs differing only in budgets
    /// share the same simulated prefix — and the same checkpoint.
    pub fn warm_key(&self, cfg: &MachineConfig) -> u64 {
        hidisc_sweep::warm_job_key(
            cfg,
            &self.workload,
            self.scale,
            self.seed,
            self.model,
            self.program.as_deref(),
        )
    }

    /// Serialises the spec back into a `POST /v1/run` body (the inverse
    /// of [`JobSpec::from_json`]) — used to forward a job to the peer
    /// shard that owns its content address.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"workload\":\"{}\",\"scale\":\"{}\",\"seed\":{},\"model\":\"{}\"",
            escape(&self.workload),
            scale_name(self.scale),
            self.seed,
            self.model.name().to_lowercase(),
        );
        if let Some(v) = self.l2_lat {
            s.push_str(&format!(",\"l2_lat\":{v}"));
        }
        if let Some(v) = self.mem_lat {
            s.push_str(&format!(",\"mem_lat\":{v}"));
        }
        if let Some(v) = self.scq_depth {
            s.push_str(&format!(",\"scq_depth\":{v}"));
        }
        if let Some(v) = self.scheduler {
            s.push_str(&format!(
                ",\"scheduler\":\"{}\"",
                match v {
                    Scheduler::ReadyList => "ready",
                    Scheduler::Scan => "scan",
                }
            ));
        }
        if let Some(v) = self.max_cycles {
            s.push_str(&format!(",\"max_cycles\":{v}"));
        }
        if let Some(v) = self.timeout_ms {
            s.push_str(&format!(",\"timeout_ms\":{v}"));
        }
        if self.metrics_interval > 0 {
            s.push_str(&format!(",\"metrics_interval\":{}", self.metrics_interval));
        }
        if let Some(p) = &self.program {
            s.push_str(&format!(",\"program\":\"{}\"", escape(p)));
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------
// Service state
// ---------------------------------------------------------------------

/// Service construction parameters (`repro serve` flags).
///
/// Obtained exclusively through the validating [`ServeConfig::builder`]
/// — the same shape as `MachineConfig::builder` — so an invalid service
/// configuration is a typed [`ServeConfigError`] at construction, not a
/// panic or a silently-absurd server deep in the accept path.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    addr: String,
    workers: usize,
    queue_depth: usize,
    cache_bytes: usize,
    max_jobs: usize,
    cache_dir: Option<PathBuf>,
    max_connections: usize,
    idle_timeout_ms: u64,
    warm_checkpoint_cycle: u64,
    log_level: Option<Level>,
    log_format: LogFormat,
    log_file: Option<PathBuf>,
    slow_request_ms: u64,
    shard: Option<ShardSpec>,
}

/// Shard-mode parameters: this service owns slice `index` of the
/// `count`-way content-address space; `peers` lists every shard's
/// address in shard order (the own entry is never dialed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0..count`.
    pub index: u32,
    /// Total shard count.
    pub count: u32,
    /// `host:port` of each shard, indexed by shard number.
    pub peers: Vec<String>,
}

impl ShardSpec {
    /// Which shard owns a content address.
    pub fn owner_of(&self, key: u64) -> u32 {
        (key % self.count as u64) as u32
    }
}

impl ServeConfig {
    /// Starts a builder with the defaults: an ephemeral loopback port,
    /// one worker per host core, queue depth 32, a 16 MiB result cache,
    /// 10 240 connections, a 10 s idle timeout, logging off and a 1 s
    /// slow-request threshold.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            addr: "127.0.0.1:0".to_string(),
            workers: None,
            queue_depth: 32,
            cache_bytes: 16 * 1024 * 1024,
            max_jobs: 256,
            cache_dir: None,
            max_connections: 10_240,
            idle_timeout_ms: 10_000,
            warm_checkpoint_cycle: WARM_CHECKPOINT_CYCLE,
            log_level: None,
            log_format: LogFormat::Text,
            log_file: None,
            slow_request_ms: 1_000,
            shard_of: None,
            peers: Vec::new(),
        }
    }

    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Worker threads (resolved — never 0).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bounded job-queue depth; a full queue answers `429`.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// In-memory result-cache budget in **bytes** (evicted oldest-first
    /// past it).
    pub fn cache_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Bound on terminal job-registry entries (evicted oldest-first).
    pub fn max_jobs(&self) -> usize {
        self.max_jobs
    }

    /// Disk tier of the result cache; `None` keeps the cache memory-only.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Maximum concurrent connections held by the reactor; past the cap
    /// new connections are answered `503` + `Retry-After`.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// How long a connection may sit idle (keep-alive or mid-request)
    /// before the reactor closes it.
    pub fn idle_timeout(&self) -> Duration {
        Duration::from_millis(self.idle_timeout_ms)
    }

    /// Cycle at which a job's machine state is checkpointed for warm
    /// starts (see [`JobSpec::warm_key`]); `0` disables warm starts.
    pub fn warm_checkpoint_cycle(&self) -> u64 {
        self.warm_checkpoint_cycle
    }

    /// Minimum structured-log level; `None` disables logging entirely.
    pub fn log_level(&self) -> Option<Level> {
        self.log_level
    }

    /// Log line format (logfmt text or JSON lines).
    pub fn log_format(&self) -> LogFormat {
        self.log_format
    }

    /// Log destination; `None` writes to stderr.
    pub fn log_file(&self) -> Option<&Path> {
        self.log_file.as_deref()
    }

    /// Requests slower than this are promoted to WARN in the access log
    /// with their job-phase breakdown; `0` disables the promotion.
    pub fn slow_request_ms(&self) -> u64 {
        self.slow_request_ms
    }

    /// Shard-mode parameters; `None` runs stand-alone (every sweep point
    /// evaluates locally).
    pub fn shard(&self) -> Option<&ShardSpec> {
        self.shard.as_ref()
    }
}

/// Why a [`ServeConfigBuilder::build`] was rejected. The `Display` form
/// is the message `repro serve` prints before exiting with code 2;
/// [`ServeConfigError::code`] is the stable envelope/diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// The bind address is not `host:port`.
    Addr {
        /// The rejected address string.
        given: String,
    },
    /// A parameter that must be at least 1 is zero (workers, queue
    /// depth, cache bytes, connection cap, job-registry bound).
    Zero {
        /// Name of the offending field, e.g. `"queue_depth"`.
        what: &'static str,
    },
    /// A timeout is outside its accepted range.
    TimeoutRange {
        /// Name of the offending field, e.g. `"idle_timeout_ms"`.
        what: &'static str,
        /// The rejected value, in milliseconds.
        given_ms: u64,
        /// Smallest accepted value.
        min_ms: u64,
        /// Largest accepted value.
        max_ms: u64,
    },
    /// Inconsistent shard-mode parameters (`--shard-of`/`--peers`).
    Shard {
        /// What is wrong, e.g. `"peers lists 1 address for 2 shards"`.
        reason: String,
    },
}

impl ServeConfigError {
    /// Stable diagnostic code, in the same style as the verifier's
    /// `QB001`-family codes and [`ConfigError::code`].
    pub fn code(&self) -> &'static str {
        match self {
            ServeConfigError::Addr { .. } => "SRV001",
            ServeConfigError::Zero { .. } => "SRV002",
            ServeConfigError::TimeoutRange { .. } => "SRV003",
            ServeConfigError::Shard { .. } => "SRV004",
        }
    }
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::Addr { given } => {
                write!(f, "invalid serve config: addr `{given}` is not host:port")
            }
            ServeConfigError::Zero { what } => {
                write!(f, "invalid serve config: {what} must be at least 1")
            }
            ServeConfigError::TimeoutRange {
                what,
                given_ms,
                min_ms,
                max_ms,
            } => write!(
                f,
                "invalid serve config: {what} must be between {min_ms} and {max_ms} ms \
                 (got {given_ms})"
            ),
            ServeConfigError::Shard { reason } => {
                write!(f, "invalid serve config: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Validating builder for [`ServeConfig`], obtained from
/// [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    addr: String,
    /// `None` = one worker per host core, resolved at build time.
    workers: Option<usize>,
    queue_depth: usize,
    cache_bytes: usize,
    max_jobs: usize,
    cache_dir: Option<PathBuf>,
    max_connections: usize,
    idle_timeout_ms: u64,
    warm_checkpoint_cycle: u64,
    log_level: Option<Level>,
    log_format: LogFormat,
    log_file: Option<PathBuf>,
    slow_request_ms: u64,
    shard_of: Option<(u32, u32)>,
    peers: Vec<String>,
}

impl ServeConfigBuilder {
    /// Bind address, `host:port` (`:0` picks a free port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Worker-thread count; rejected at build if 0 (leave unset for one
    /// per host core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Bounded job-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// In-memory result-cache budget in bytes.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Bound on terminal job-registry entries.
    pub fn max_jobs(mut self, jobs: usize) -> Self {
        self.max_jobs = jobs;
        self
    }

    /// Disk tier of the result cache.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Concurrent-connection cap.
    pub fn max_connections(mut self, conns: usize) -> Self {
        self.max_connections = conns;
        self
    }

    /// Idle-connection timeout in milliseconds (accepted range
    /// 10..=600 000).
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Warm-start checkpoint cycle (0 disables warm starts).
    pub fn warm_checkpoint_cycle(mut self, cycle: u64) -> Self {
        self.warm_checkpoint_cycle = cycle;
        self
    }

    /// Minimum structured-log level (`None` = logging off, the default).
    pub fn log_level(mut self, level: Option<Level>) -> Self {
        self.log_level = level;
        self
    }

    /// Log line format.
    pub fn log_format(mut self, format: LogFormat) -> Self {
        self.log_format = format;
        self
    }

    /// Log destination file (stderr when unset). Created/truncated at
    /// service start.
    pub fn log_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.log_file = Some(path.into());
        self
    }

    /// Slow-request WARN threshold in milliseconds (0 disables).
    pub fn slow_request_ms(mut self, ms: u64) -> Self {
        self.slow_request_ms = ms;
        self
    }

    /// Shard mode: this service is shard `index` of `count`
    /// (`repro serve --shard-of k/N`); requires [`Self::peers`].
    pub fn shard_of(mut self, index: u32, count: u32) -> Self {
        self.shard_of = Some((index, count));
        self
    }

    /// Every shard's `host:port`, indexed by shard number; the own entry
    /// is required for positional consistency but never dialed.
    pub fn peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        let bad_addr = || ServeConfigError::Addr {
            given: self.addr.clone(),
        };
        let (host, port) = self.addr.rsplit_once(':').ok_or_else(bad_addr)?;
        if host.is_empty() || port.parse::<u16>().is_err() {
            return Err(bad_addr());
        }
        let workers = match self.workers {
            Some(0) => return Err(ServeConfigError::Zero { what: "workers" }),
            Some(n) => n,
            None => hidisc_bench::pool::threads(),
        };
        for (what, v) in [
            ("queue_depth", self.queue_depth),
            ("cache_bytes", self.cache_bytes),
            ("max_jobs", self.max_jobs),
            ("max_connections", self.max_connections),
        ] {
            if v == 0 {
                return Err(ServeConfigError::Zero { what });
            }
        }
        const IDLE_MIN_MS: u64 = 10;
        const IDLE_MAX_MS: u64 = 600_000;
        if !(IDLE_MIN_MS..=IDLE_MAX_MS).contains(&self.idle_timeout_ms) {
            return Err(ServeConfigError::TimeoutRange {
                what: "idle_timeout_ms",
                given_ms: self.idle_timeout_ms,
                min_ms: IDLE_MIN_MS,
                max_ms: IDLE_MAX_MS,
            });
        }
        let shard = match self.shard_of {
            None => {
                if !self.peers.is_empty() {
                    return Err(ServeConfigError::Shard {
                        reason: "peers given without --shard-of k/N".to_string(),
                    });
                }
                None
            }
            Some((index, count)) => {
                if count == 0 || index >= count {
                    return Err(ServeConfigError::Shard {
                        reason: format!("shard index {index} is not in 0..{count}"),
                    });
                }
                if self.peers.len() != count as usize {
                    return Err(ServeConfigError::Shard {
                        reason: format!(
                            "peers lists {} address(es) for {count} shard(s)",
                            self.peers.len()
                        ),
                    });
                }
                for p in &self.peers {
                    let ok = p
                        .rsplit_once(':')
                        .is_some_and(|(h, port)| !h.is_empty() && port.parse::<u16>().is_ok());
                    if !ok {
                        return Err(ServeConfigError::Shard {
                            reason: format!("peer `{p}` is not host:port"),
                        });
                    }
                }
                Some(ShardSpec {
                    index,
                    count,
                    peers: self.peers,
                })
            }
        };
        Ok(ServeConfig {
            addr: self.addr,
            workers,
            queue_depth: self.queue_depth,
            cache_bytes: self.cache_bytes,
            max_jobs: self.max_jobs,
            cache_dir: self.cache_dir,
            max_connections: self.max_connections,
            idle_timeout_ms: self.idle_timeout_ms,
            warm_checkpoint_cycle: self.warm_checkpoint_cycle,
            log_level: self.log_level,
            log_format: self.log_format,
            log_file: self.log_file,
            slow_request_ms: self.slow_request_ms,
            shard,
        })
    }
}

#[derive(Default)]
pub(crate) struct Counters {
    requests: AtomicU64,
    submitted: AtomicU64,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    sim_runs: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    rejected: AtomicU64,
    pub(crate) conn_rejected: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    dropped_events: AtomicU64,
    warm_restores: AtomicU64,
    /// Reactor `epoll_wait` returns (readiness batches handled).
    pub(crate) reactor_wakeups: AtomicU64,
    /// Reads/writes/accepts that hit `EAGAIN` and parked the fd.
    pub(crate) reactor_eagain: AtomicU64,
    /// Sweep points answered straight from the result cache or an
    /// already-terminal job (no new simulation caused by the sweep).
    pub(crate) sweep_points_cached: AtomicU64,
    /// Sweep points simulated locally for this sweep.
    pub(crate) sweep_points_simulated: AtomicU64,
    /// Sweep points evaluated by the owning peer shard.
    pub(crate) sweep_points_forwarded: AtomicU64,
    /// Sweep points that reached a failed terminal state.
    pub(crate) sweep_points_failed: AtomicU64,
    /// Forward attempts that fell back to local evaluation because the
    /// owning shard was unreachable (degraded mode).
    pub(crate) shard_fallbacks: AtomicU64,
}

enum Phase {
    Queued,
    Running,
    Done { stats: Arc<String>, wall_ms: u64 },
    Failed { error: String },
}

struct JobEntry {
    workload: String,
    scale: Scale,
    seed: u64,
    model: Model,
    phase: Phase,
    /// Id of the request that created this entry, for log correlation:
    /// `GET /v1/jobs/<id>` reports it as `requestId`.
    request_id: String,
}

struct Registry {
    jobs: HashMap<String, JobEntry>,
    /// Job ids in the order they reached a terminal phase. Terminal
    /// entries past `max_terminal` are evicted oldest-first, so the jobs
    /// map cannot grow without bound (results stay reachable through the
    /// LRU/disk [`ResultCache`]); queued/running entries are never
    /// evicted.
    terminal: VecDeque<String>,
    max_terminal: usize,
    cache: ResultCache,
}

impl Registry {
    /// Records that `id` reached Done/Failed and trims old terminal
    /// entries down to the cap.
    fn mark_terminal(&mut self, id: String) {
        self.terminal.push_back(id);
        while self.terminal.len() > self.max_terminal {
            let old = self.terminal.pop_front().expect("len checked");
            // A resubmitted id is live again (Queued/Running): keep it.
            // It gets a fresh deque slot when it terminates once more.
            if matches!(
                self.jobs.get(&old).map(|e| &e.phase),
                Some(Phase::Done { .. } | Phase::Failed { .. })
            ) {
                self.jobs.remove(&old);
            }
        }
    }
}

pub(crate) struct State {
    registry: Mutex<Registry>,
    /// Warm-start checkpoints, keyed by [`JobSpec::warm_key`]. Separate
    /// from the registry mutex: checkpoint save/restore happens inside
    /// `run_simulation`, which must not hold the registry lock.
    warm: Mutex<CheckpointStore>,
    warm_checkpoint_cycle: u64,
    workers: Mutex<Option<Workers>>,
    pub(crate) counters: Counters,
    metrics: Mutex<Option<IntervalMetrics>>,
    pub(crate) stop: AtomicBool,
    /// Connections currently registered with the reactor (gauge mirror).
    pub(crate) connections: AtomicUsize,
    pub(crate) max_connections: usize,
    pub(crate) idle_timeout: Duration,
    /// RED metrics: per-route counters and latency histograms.
    pub(crate) http: HttpMetrics,
    /// Structured event log (off by default).
    pub(crate) logger: Logger,
    /// Requests at or above this duration log at WARN; zero disables.
    pub(crate) slow_request: Duration,
    /// When the service started; `/healthz` uptime and the uptime gauge.
    pub(crate) started: Instant,
    /// The bounded sweep registry (`POST /v1/sweep` orchestration).
    pub(crate) sweeps: Mutex<sweeps::Sweeps>,
    /// Shard-mode routing state; `None` when stand-alone.
    pub(crate) shards: Option<sweeps::ShardSet>,
}

/// A running service instance.
pub struct Service {
    state: Arc<State>,
    reactor: Option<std::thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl Service {
    /// Binds, spawns the worker pool and the reactor, and returns.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(cfg.addr())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = epoll_shim::Poller::new()?;
        let logger = match (cfg.log_level, &cfg.log_file) {
            (None, _) => Logger::off(),
            (Some(level), None) => Logger::to_stderr(level, cfg.log_format),
            (Some(level), Some(path)) => {
                let file = std::fs::File::create(path)?;
                Logger::to_sink(level, cfg.log_format, Box::new(file))
            }
        };
        let state = Arc::new(State {
            registry: Mutex::new(Registry {
                jobs: HashMap::new(),
                terminal: VecDeque::new(),
                max_terminal: cfg.max_jobs(),
                cache: ResultCache::new(cfg.cache_bytes(), cfg.cache_dir.clone()),
            }),
            warm: Mutex::new(CheckpointStore::new(
                64,
                cfg.cache_dir.as_ref().map(|d| d.join("warm")),
            )),
            warm_checkpoint_cycle: cfg.warm_checkpoint_cycle,
            workers: Mutex::new(Some(Workers::new(cfg.workers(), cfg.queue_depth()))),
            counters: Counters::default(),
            metrics: Mutex::new(None),
            stop: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            max_connections: cfg.max_connections(),
            idle_timeout: cfg.idle_timeout(),
            http: HttpMetrics::new(),
            logger,
            slow_request: Duration::from_millis(cfg.slow_request_ms),
            started: Instant::now(),
            sweeps: Mutex::new(sweeps::Sweeps::new(sweeps::MAX_SWEEPS)),
            shards: cfg.shard.clone().map(sweeps::ShardSet::new),
        });
        state.logger.log(
            Level::Info,
            "serve_start",
            &[
                ("addr", addr.to_string().into()),
                ("version", VERSION.into()),
                ("git_sha", GIT_SHA.into()),
                ("workers", cfg.workers().into()),
                ("queue_depth", cfg.queue_depth().into()),
                ("max_connections", cfg.max_connections().into()),
            ],
        );
        let st = Arc::clone(&state);
        let reactor = std::thread::spawn(move || reactor::run(poller, listener, st));
        Ok(Service {
            state,
            reactor: Some(reactor),
            addr,
        })
    }

    /// The bound address (resolves `:0` port picks).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once `POST /shutdown` was received (or [`Service::shutdown`]
    /// began).
    pub fn stop_requested(&self) -> bool {
        self.state.stop.load(Ordering::Relaxed)
    }

    /// Blocks until a `POST /shutdown` arrives, then tears down
    /// gracefully: the listener closes, in-flight jobs finish, still
    /// queued jobs are failed.
    pub fn wait(mut self) {
        while !self.state.stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.teardown();
    }

    /// Programmatic graceful shutdown (same sequence as `wait` after a
    /// `POST /shutdown`).
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        self.teardown();
    }

    fn teardown(&mut self) {
        self.state.logger.log(
            Level::Info,
            "serve_stop",
            &[(
                "uptime_ms",
                (self.state.started.elapsed().as_millis() as u64).into(),
            )],
        );
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        let workers = self.state.workers.lock().expect("workers lock").take();
        if let Some(w) = workers {
            // In-flight jobs finish; queued jobs are discarded here and
            // failed below.
            w.shutdown(false);
        }
        let mut reg = self.state.registry.lock().expect("registry lock");
        let queued: Vec<String> = reg
            .jobs
            .iter()
            .filter(|(_, j)| matches!(j.phase, Phase::Queued))
            .map(|(id, _)| id.clone())
            .collect();
        for id in queued {
            self.state
                .counters
                .jobs_failed
                .fetch_add(1, Ordering::Relaxed);
            if let Some(job) = reg.jobs.get_mut(&id) {
                job.phase = Phase::Failed {
                    error: "service shut down before the job ran".to_string(),
                };
            }
            reg.mark_terminal(id);
        }
        drop(reg);
        // Unfinished sweeps can no longer make progress: fail their
        // outstanding points so pollers and attached streams terminate.
        sweeps::fail_unfinished(&self.state, "service shut down before the sweep finished");
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        self.teardown();
    }
}

// ---------------------------------------------------------------------
// Routing and the error envelope
// ---------------------------------------------------------------------

/// Renders the one structured error body every non-2xx answer uses:
/// `{"code","message","retry_after_ms"?,"request_id"}`. `code` is a
/// stable, machine-matchable string — the typed [`ConfigError::code`] /
/// verifier diagnostic code where one exists, a snake_case service code
/// otherwise; `request_id` repeats the response's `X-Request-Id` so an
/// error body pasted into a report still correlates with the logs.
pub(crate) fn envelope(
    code: &str,
    message: &str,
    retry_after_ms: Option<u64>,
    request_id: &str,
) -> String {
    let mut body = format!(
        "{{\"code\":\"{}\",\"message\":\"{}\"",
        escape(code),
        escape(message)
    );
    if let Some(ms) = retry_after_ms {
        body.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    body.push_str(&format!(",\"request_id\":\"{}\"}}\n", escape(request_id)));
    body
}

fn json_reply(status: u16, body: String) -> Reply {
    Reply {
        status,
        content_type: "application/json",
        extra: Vec::new(),
        body,
        close: false,
        disposition: "",
        stream: None,
    }
}

fn error_reply(status: u16, code: &str, message: &str, rid: &str) -> Reply {
    json_reply(status, envelope(code, message, None, rid))
}

/// An error reply that also closes the connection (parse errors — the
/// stream position is unrecoverable).
pub(crate) fn error_reply_closing(status: u16, code: &str, message: &str, rid: &str) -> Reply {
    let mut r = error_reply(status, code, message, rid);
    r.close = true;
    r
}

/// A backpressure reply: `Retry-After` header plus `retry_after_ms` in
/// the envelope.
fn retry_reply(status: u16, code: &str, message: &str, retry_after_ms: u64, rid: &str) -> Reply {
    let mut r = json_reply(status, envelope(code, message, Some(retry_after_ms), rid));
    r.extra.push((
        "Retry-After",
        retry_after_ms.div_ceil(1000).max(1).to_string(),
    ));
    r
}

/// The `503` a connection past `max_connections` gets for any request it
/// sends before the reactor closes it.
pub(crate) fn overcap_reply(rid: &str) -> Reply {
    let mut r = retry_reply(
        503,
        "too_many_connections",
        "too many connections; retry later",
        1_000,
        rid,
    );
    r.close = true;
    r
}

/// The `/v1/` twin of a legacy unversioned path, when there is one.
pub(crate) fn legacy_twin(path: &str) -> Option<String> {
    match path {
        "/run" => Some("/v1/run".to_string()),
        "/shutdown" => Some("/v1/shutdown".to_string()),
        "/sweep" => Some("/v1/sweep".to_string()),
        p if p.starts_with("/jobs/") => Some(format!("/v1{p}")),
        _ => None,
    }
}

pub(crate) fn route(req: &http::Request, rid: &str, state: &Arc<State>) -> Reply {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    // Legacy unversioned paths answer 308 to their /v1/ twin (308 keeps
    // the method and body across the redirect, unlike 301).
    if let Some(twin) = legacy_twin(req.path.as_str()) {
        let mut r = json_reply(
            308,
            envelope("moved_permanently", &format!("moved to {twin}"), None, rid),
        );
        r.extra.push(("Location", twin));
        return r;
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => json_reply(
            200,
            format!(
                "{{\"status\":\"ok\",\"version\":\"{}\",\"gitSha\":\"{}\",\"uptimeMs\":{}}}\n",
                escape(VERSION),
                escape(GIT_SHA),
                state.started.elapsed().as_millis() as u64
            ),
        ),
        ("GET", "/metrics") => Reply {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            extra: Vec::new(),
            body: render_metrics(state),
            close: false,
            disposition: "",
            stream: None,
        },
        ("POST", "/v1/run") => post_run(state, &req.body, rid),
        ("POST", "/v1/shutdown") => {
            state.stop.store(true, Ordering::Relaxed);
            json_reply(200, "{\"status\":\"shutting down\"}\n".to_string())
        }
        ("POST", "/v1/sweep") => sweeps::post_sweep(state, &req.body, rid),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            get_job(state, &path["/v1/jobs/".len()..], rid)
        }
        ("GET", path) if path.starts_with("/v1/sweeps/") => {
            sweeps::get_sweep(state, &path["/v1/sweeps/".len()..], rid)
        }
        (_, "/healthz" | "/metrics" | "/v1/run" | "/v1/shutdown" | "/v1/sweep") => error_reply(
            405,
            "method_not_allowed",
            &format!("method {} not allowed here", req.method),
            rid,
        ),
        (_, path) if path.starts_with("/v1/jobs/") || path.starts_with("/v1/sweeps/") => {
            error_reply(
                405,
                "method_not_allowed",
                &format!("method {} not allowed here", req.method),
                rid,
            )
        }
        _ => error_reply(
            404,
            "not_found",
            &format!("no such endpoint {}", req.path),
            rid,
        ),
    }
}

/// The response body for one job, assembled field by field.
struct JobBody<'a> {
    id: &'a str,
    status: &'a str,
    entry: Option<&'a JobEntry>,
    cached: bool,
    stats: Option<&'a str>,
    wall_ms: Option<u64>,
    error: Option<&'a str>,
    coalesced: bool,
    /// Id of the request that created the job (absent only when a job is
    /// resolved purely from the disk cache after a restart).
    request_id: Option<&'a str>,
}

impl<'a> JobBody<'a> {
    fn new(id: &'a str, status: &'a str) -> JobBody<'a> {
        JobBody {
            id,
            status,
            entry: None,
            cached: false,
            stats: None,
            wall_ms: None,
            error: None,
            coalesced: false,
            request_id: None,
        }
    }

    fn render(&self) -> String {
        let mut out = format!("{{\"job\":\"{}\",\"status\":\"{}\"", self.id, self.status);
        if let Some(e) = self.entry {
            out.push_str(&format!(
                ",\"workload\":\"{}\",\"scale\":\"{}\",\"seed\":{},\"model\":\"{}\"",
                escape(&e.workload),
                scale_name(e.scale),
                e.seed,
                e.model.name()
            ));
        }
        if self.status == "done" {
            out.push_str(&format!(",\"cached\":{}", self.cached));
        }
        if self.coalesced {
            out.push_str(",\"coalesced\":true");
        }
        if let Some(ms) = self.wall_ms {
            out.push_str(&format!(",\"wallMs\":{ms}"));
        }
        if let Some(err) = self.error {
            out.push_str(&format!(",\"error\":\"{}\"", escape(err)));
        }
        if let Some(rid) = self.request_id {
            out.push_str(&format!(",\"requestId\":\"{}\"", escape(rid)));
        }
        if let Some(s) = self.stats {
            out.push_str(",\"stats\":");
            out.push_str(s);
        }
        out.push_str("}\n");
        out
    }
}

/// Environment a custom program runs under: zeroed memory, no parameter
/// registers, and a bounded step budget so profiling always terminates.
fn custom_env() -> hidisc_slicer::ExecEnv {
    hidisc_slicer::ExecEnv {
        regs: Vec::new(),
        mem: hidisc_isa::mem::Memory::new(),
        max_steps: 10_000_000,
    }
}

/// Pre-flight for custom programs: assemble, slice and statically verify
/// (queue balance, symbolic depth bounds, CMAS purity, slice liveness,
/// address disambiguation, run-ahead squash safety and poison liveness —
/// the full `hidisc-verify` pass list) before the job is admitted
/// anywhere near the worker pool. The rejection — served
/// as `400` — carries the verifier's diagnostic code (e.g. `QB004`) as
/// the envelope code and its first error diagnostic as the message.
/// Named workloads skip this: their slices are covered by the verifier's
/// own suite-wide property tests.
fn preflight(spec: &JobSpec, cfg: &MachineConfig) -> Result<(), (&'static str, String)> {
    let Some(src) = &spec.program else {
        return Ok(());
    };
    let prog = hidisc_isa::asm::assemble(&spec.workload, src)
        .map_err(|e| ("bad_request", format!("program does not assemble: {e}")))?;
    let depths = hidisc_bench::depths_of(cfg);
    hidisc_verify::compile_verified(&prog, &custom_env(), &CompilerConfig::default(), depths)
        .map(|_| ())
        .map_err(|e| {
            let code = match &e {
                hidisc_verify::VerifyError::Rejected(r) => r
                    .errors()
                    .next()
                    .map(|d| d.code.as_str())
                    .unwrap_or("bad_request"),
                hidisc_verify::VerifyError::Compile(_) => "bad_request",
            };
            (code, e.to_string())
        })
}

fn post_run(state: &Arc<State>, body: &[u8], rid: &str) -> Reply {
    if state.stop.load(Ordering::Relaxed) {
        return error_reply(503, "shutting_down", "service is shutting down", rid);
    }
    let spec = match JobSpec::from_json(body) {
        Ok(s) => s,
        Err(msg) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return error_reply(400, "bad_request", &msg, rid);
        }
    };
    let cfg = match spec.config() {
        Ok(c) => c,
        Err(e) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return error_reply(400, e.code(), &e.to_string(), rid);
        }
    };
    if let Err((code, msg)) = preflight(&spec, &cfg) {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return error_reply(400, code, &msg, rid);
    }
    let key = spec.key(&cfg);
    let id = format!("{key:016x}");

    let mut reg = state.registry.lock().expect("registry lock");

    // Cache hit: answer immediately, recording a job entry so later
    // GET /jobs/<id> polls resolve too.
    if let Some(stats) = reg.cache.get(key) {
        state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        let newly = !reg.jobs.contains_key(&id);
        let entry = reg.jobs.entry(id.clone()).or_insert_with(|| JobEntry {
            workload: spec.workload.clone(),
            scale: spec.scale,
            seed: spec.seed,
            model: spec.model,
            phase: Phase::Done {
                stats: Arc::clone(&stats),
                wall_ms: 0,
            },
            request_id: rid.to_string(),
        });
        let body = JobBody {
            entry: Some(entry),
            cached: true,
            stats: Some(&stats),
            request_id: Some(&entry.request_id),
            ..JobBody::new(&id, "done")
        }
        .render();
        if newly {
            reg.mark_terminal(id);
        }
        let mut r = json_reply(200, body);
        r.disposition = "cache_hit";
        return r;
    }

    // Coalesce onto an identical job already queued or running.
    match reg.jobs.get(&id) {
        Some(e) if matches!(e.phase, Phase::Queued) => {
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let body = JobBody {
                entry: Some(e),
                coalesced: true,
                request_id: Some(&e.request_id),
                ..JobBody::new(&id, "queued")
            }
            .render();
            let mut r = json_reply(202, body);
            r.disposition = "coalesced";
            return r;
        }
        Some(e) if matches!(e.phase, Phase::Running) => {
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            let body = JobBody {
                entry: Some(e),
                coalesced: true,
                request_id: Some(&e.request_id),
                ..JobBody::new(&id, "running")
            }
            .render();
            let mut r = json_reply(202, body);
            r.disposition = "coalesced";
            return r;
        }
        Some(JobEntry {
            phase: Phase::Done { stats, wall_ms },
            ..
        }) => {
            // Completed earlier but evicted from the cache: the job
            // entry still has the result.
            state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let (stats, wall_ms) = (Arc::clone(stats), *wall_ms);
            let e = reg.jobs.get(&id).expect("entry just matched");
            let body = JobBody {
                entry: Some(e),
                cached: true,
                stats: Some(&stats),
                wall_ms: Some(wall_ms),
                request_id: Some(&e.request_id),
                ..JobBody::new(&id, "done")
            }
            .render();
            let mut r = json_reply(200, body);
            r.disposition = "cache_hit";
            return r;
        }
        _ => {} // absent, or Failed: (re)submit
    }

    state.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    let submit = {
        let st = Arc::clone(state);
        let id2 = id.clone();
        let spec2 = spec.clone();
        let rid2 = rid.to_string();
        let queued_at = Instant::now();
        let workers = state.workers.lock().expect("workers lock");
        match workers.as_ref() {
            None => Err(SubmitError::Closed),
            Some(w) => w.try_submit(move || execute_job(st, id2, key, spec2, cfg, rid2, queued_at)),
        }
    };
    match submit {
        Ok(()) => {
            state.counters.submitted.fetch_add(1, Ordering::Relaxed);
            state.logger.log(
                Level::Info,
                "job_queued",
                &[
                    ("request_id", rid.into()),
                    ("job", id.as_str().into()),
                    ("workload", spec.workload.as_str().into()),
                    ("scale", scale_name(spec.scale).into()),
                    ("model", spec.model.name().into()),
                ],
            );
            let entry = JobEntry {
                workload: spec.workload.clone(),
                scale: spec.scale,
                seed: spec.seed,
                model: spec.model,
                phase: Phase::Queued,
                request_id: rid.to_string(),
            };
            let body = JobBody {
                entry: Some(&entry),
                request_id: Some(&entry.request_id),
                ..JobBody::new(&id, "queued")
            }
            .render();
            reg.jobs.insert(id, entry);
            let mut r = json_reply(202, body);
            r.disposition = "submitted";
            r
        }
        Err(SubmitError::Full) => {
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            retry_reply(
                429,
                "queue_full",
                "job queue is full; retry later",
                1_000,
                rid,
            )
        }
        Err(SubmitError::Closed) => {
            error_reply(503, "shutting_down", "service is shutting down", rid)
        }
    }
}

fn get_job(state: &Arc<State>, id: &str, rid: &str) -> Reply {
    let mut reg = state.registry.lock().expect("registry lock");
    if let Some(e) = reg.jobs.get(id) {
        let body = match &e.phase {
            Phase::Queued => JobBody {
                entry: Some(e),
                request_id: Some(&e.request_id),
                ..JobBody::new(id, "queued")
            }
            .render(),
            Phase::Running => JobBody {
                entry: Some(e),
                request_id: Some(&e.request_id),
                ..JobBody::new(id, "running")
            }
            .render(),
            Phase::Done { stats, wall_ms } => JobBody {
                entry: Some(e),
                stats: Some(stats),
                wall_ms: Some(*wall_ms),
                request_id: Some(&e.request_id),
                ..JobBody::new(id, "done")
            }
            .render(),
            Phase::Failed { error } => JobBody {
                entry: Some(e),
                error: Some(error),
                request_id: Some(&e.request_id),
                ..JobBody::new(id, "error")
            }
            .render(),
        };
        return json_reply(200, body);
    }
    // Unknown to this process — a warm disk cache (e.g. after a restart)
    // can still resolve it. No creator request id survives the restart.
    if let Ok(key) = u64::from_str_radix(id, 16) {
        if let Some(stats) = reg.cache.get(key) {
            state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let body = JobBody {
                cached: true,
                stats: Some(&stats),
                ..JobBody::new(id, "done")
            }
            .render();
            let mut r = json_reply(200, body);
            r.disposition = "cache_hit";
            return r;
        }
    }
    error_reply(404, "not_found", &format!("no such job {id}"), rid)
}

// ---------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------

fn execute_job(
    state: Arc<State>,
    id: String,
    key: u64,
    spec: JobSpec,
    cfg: MachineConfig,
    rid: String,
    queued_at: Instant,
) {
    let queue_wait = queued_at.elapsed();
    state.http.record_phase(JobPhase::QueueWait, queue_wait);
    {
        let mut reg = state.registry.lock().expect("registry lock");
        if let Some(e) = reg.jobs.get_mut(&id) {
            e.phase = Phase::Running;
        }
    }
    state.counters.sim_runs.fetch_add(1, Ordering::Relaxed);
    state.logger.log(
        Level::Debug,
        "job_start",
        &[
            ("request_id", rid.as_str().into()),
            ("job", id.as_str().into()),
            ("queue_wait_ms", (queue_wait.as_millis() as u64).into()),
        ],
    );
    let started = Instant::now();
    let warm =
        (state.warm_checkpoint_cycle > 0).then_some((&state.warm, state.warm_checkpoint_cycle));
    let outcome = run_simulation(&spec, cfg, warm);
    let sim = started.elapsed();
    state.http.record_phase(JobPhase::SimRun, sim);
    let wall_ms = sim.as_millis() as u64;

    match outcome {
        Ok(run) => {
            if run.warm_restored {
                state.counters.warm_restores.fetch_add(1, Ordering::Relaxed);
            }
            state
                .counters
                .dropped_events
                .fetch_add(run.dropped_events, Ordering::Relaxed);
            if let Some(m) = run.metrics {
                *state.metrics.lock().expect("metrics lock") = Some(m);
            }
            let serialize_started = Instant::now();
            let warm_restored = run.warm_restored;
            let stats = Arc::new(run.stats_json);
            {
                let mut reg = state.registry.lock().expect("registry lock");
                reg.cache.insert(key, Arc::clone(&stats));
                state.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
                if let Some(e) = reg.jobs.get_mut(&id) {
                    e.phase = Phase::Done { stats, wall_ms };
                    reg.mark_terminal(id.clone());
                }
            }
            let serialize = serialize_started.elapsed();
            state.http.record_phase(JobPhase::Serialize, serialize);
            // A slow job is worth a WARN with its phase breakdown even
            // when every individual HTTP exchange around it was fast.
            let slow = !state.slow_request.is_zero() && sim >= state.slow_request;
            state.logger.log(
                if slow { Level::Warn } else { Level::Info },
                "job_done",
                &[
                    ("request_id", rid.as_str().into()),
                    ("job", id.as_str().into()),
                    ("queue_wait_ms", (queue_wait.as_millis() as u64).into()),
                    ("sim_ms", wall_ms.into()),
                    ("serialize_ms", (serialize.as_millis() as u64).into()),
                    ("warm_restored", warm_restored.into()),
                    ("slow", slow.into()),
                ],
            );
        }
        Err(error) => {
            state.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            state.logger.log(
                Level::Warn,
                "job_failed",
                &[
                    ("request_id", rid.as_str().into()),
                    ("job", id.as_str().into()),
                    ("sim_ms", wall_ms.into()),
                    ("error", error.as_str().into()),
                ],
            );
            let mut reg = state.registry.lock().expect("registry lock");
            if let Some(e) = reg.jobs.get_mut(&id) {
                e.phase = Phase::Failed { error };
                reg.mark_terminal(id);
            }
        }
    }
}

struct RunOutcome {
    stats_json: String,
    metrics: Option<IntervalMetrics>,
    dropped_events: u64,
    /// True when the run skipped its shared prefix by restoring a warm
    /// checkpoint instead of re-simulating it.
    warm_restored: bool,
}

fn run_simulation(
    spec: &JobSpec,
    cfg: MachineConfig,
    warm: Option<(&Mutex<CheckpointStore>, u64)>,
) -> Result<RunOutcome, String> {
    let (compiled, env) = match &spec.program {
        Some(src) => {
            let prog = hidisc_isa::asm::assemble(&spec.workload, src)
                .map_err(|e| format!("program does not assemble: {e}"))?;
            let env = custom_env();
            let compiled = compile(&prog, &env, &CompilerConfig::default())
                .map_err(|e| format!("compile failed: {e}"))?;
            (compiled, env)
        }
        None => {
            let w = hidisc_workloads::by_name(&spec.workload, spec.scale, spec.seed)
                .ok_or_else(|| format!("unknown workload `{}`", spec.workload))?;
            let env = hidisc_bench::env_of(&w);
            let compiled = compile(&w.prog, &env, &CompilerConfig::default())
                .map_err(|e| format!("compile failed: {e}"))?;
            (compiled, env)
        }
    };
    let mut m = Machine::new(spec.model, &compiled, &env, cfg);
    let mut warm_restored = false;
    if let Some((store, warm_at)) = warm {
        let wkey = spec.warm_key(&cfg);
        if let Some(bytes) = store.lock().expect("warm store lock").get(wkey) {
            if m.load_warm_checkpoint(&bytes, wkey).is_ok() {
                warm_restored = true;
            } else {
                // Stale or truncated checkpoint (e.g. a wire-format
                // bump): a failed load may leave partial state, so
                // rebuild the machine and run cold. The prefix run below
                // overwrites the bad entry.
                m = Machine::new(spec.model, &compiled, &env, cfg);
            }
        }
        // Jobs whose cycle budget ends inside the prefix run cold — their
        // entire run is shorter than the shared portion.
        if !warm_restored && cfg.max_cycles > warm_at {
            match m.run_to_cycle(warm_at) {
                // Stopped at the boundary mid-run: this prefix is common
                // to every budget variant of the experiment — save it.
                Ok(false) => {
                    let bytes = Arc::new(m.save_warm_checkpoint(wkey));
                    store.lock().expect("warm store lock").insert(wkey, bytes);
                }
                // Finished inside the prefix: nothing left to share.
                Ok(true) => {}
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    let result = match spec.timeout_ms {
        Some(ms) => m.run_deadline(
            compiled.profile.dyn_instrs,
            Instant::now() + Duration::from_millis(ms),
        ),
        None => m.run(compiled.profile.dyn_instrs),
    };
    let tel = m.telemetry();
    let metrics = tel.metrics().cloned();
    let dropped_events = tel.dropped();
    match result {
        Ok(stats) => Ok(RunOutcome {
            stats_json: stats.to_json(),
            metrics,
            dropped_events,
            warm_restored,
        }),
        Err(e) => {
            let msg = match &e {
                RunError::Deadline { .. } => {
                    let ms = spec.timeout_ms.unwrap_or(0);
                    format!("wall-clock timeout after {ms} ms ({e})")
                }
                _ => e.to_string(),
            };
            Err(msg)
        }
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

fn render_metrics(state: &Arc<State>) -> String {
    let c = &state.counters;
    let mut s = String::new();
    let counters: [(&str, &str, u64); 16] = [
        (
            "hidisc_serve_requests_total",
            "HTTP requests routed.",
            c.requests.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_jobs_submitted_total",
            "Jobs accepted onto the worker queue.",
            c.submitted.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_coalesced_total",
            "Submissions coalesced onto an identical in-flight job.",
            c.coalesced.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_cache_hits_total",
            "Submissions answered from the result cache.",
            c.cache_hits.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_cache_misses_total",
            "Submissions that required a simulation run.",
            c.cache_misses.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_sim_runs_total",
            "Simulation runs started by workers.",
            c.sim_runs.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_jobs_done_total",
            "Jobs that completed successfully.",
            c.jobs_done.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_jobs_failed_total",
            "Jobs that failed or were shed at shutdown.",
            c.jobs_failed.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_rejected_total",
            "Submissions refused with 429 (queue full).",
            c.rejected.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_connections_rejected_total",
            "Connections refused past the connection cap.",
            c.conn_rejected.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_bad_requests_total",
            "Requests rejected as malformed (parse or validation).",
            c.bad_requests.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_warm_restores_total",
            "Runs that restored a warm-start checkpoint.",
            c.warm_restores.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_reactor_wakeups_total",
            "Reactor epoll_wait returns (readiness batches).",
            c.reactor_wakeups.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_reactor_eagain_total",
            "Reads/writes/accepts that hit EAGAIN and parked the fd.",
            c.reactor_eagain.load(Ordering::Relaxed),
        ),
        (
            "hidisc_serve_shard_fallbacks_total",
            "Forwards that fell back to local evaluation (peer down).",
            c.shard_fallbacks.load(Ordering::Relaxed),
        ),
        (
            "hidisc_telemetry_dropped_events_total",
            "Telemetry events dropped by bounded trace buffers.",
            c.dropped_events.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, v) in counters {
        s.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    }
    // Sweep-point outcomes share one metric name under an `outcome`
    // label, so dashboards can stack them.
    s.push_str(
        "# HELP hidisc_serve_sweep_points_total Sweep points reaching a terminal state, \
         by outcome.\n# TYPE hidisc_serve_sweep_points_total counter\n",
    );
    for (outcome, v) in [
        ("cached", c.sweep_points_cached.load(Ordering::Relaxed)),
        (
            "simulated",
            c.sweep_points_simulated.load(Ordering::Relaxed),
        ),
        (
            "forwarded",
            c.sweep_points_forwarded.load(Ordering::Relaxed),
        ),
        ("failed", c.sweep_points_failed.load(Ordering::Relaxed)),
    ] {
        s.push_str(&format!(
            "hidisc_serve_sweep_points_total{{outcome=\"{outcome}\"}} {v}\n"
        ));
    }
    let (queued, running) = {
        let w = state.workers.lock().expect("workers lock");
        w.as_ref()
            .map(|w| (w.queued(), w.running()))
            .unwrap_or((0, 0))
    };
    let (cache_entries, cache_bytes, job_entries) = {
        let reg = state.registry.lock().expect("registry lock");
        (reg.cache.len(), reg.cache.bytes(), reg.jobs.len())
    };
    let sweeps_active = state.sweeps.lock().expect("sweeps lock").active();
    // `open_connections` is the one canonical connection gauge; the old
    // `connections_active` twin (same value, second name) was dropped in
    // the observability pass — DESIGN.md §18 records the rename.
    let open = state.connections.load(Ordering::Relaxed);
    let uptime = state.started.elapsed().as_secs() as usize;
    for (name, help, v) in [
        (
            "hidisc_serve_queue_depth",
            "Jobs waiting on the worker queue.",
            queued,
        ),
        (
            "hidisc_serve_jobs_running",
            "Jobs currently simulating.",
            running,
        ),
        (
            "hidisc_serve_cache_entries",
            "Result-cache entries resident in memory.",
            cache_entries,
        ),
        (
            "hidisc_serve_cache_bytes",
            "Result-cache bytes resident in memory.",
            cache_bytes,
        ),
        (
            "hidisc_serve_job_entries",
            "Job-registry entries (live and terminal).",
            job_entries,
        ),
        (
            "hidisc_serve_open_connections",
            "Connections currently registered with the reactor.",
            open,
        ),
        (
            "hidisc_serve_sweeps_active",
            "Sweeps currently running (registered and not finished).",
            sweeps_active,
        ),
        (
            "hidisc_serve_uptime_seconds",
            "Seconds since the service started.",
            uptime,
        ),
    ] {
        s.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    }
    if let Some(sh) = &state.shards {
        s.push_str(
            "# HELP hidisc_serve_shard_healthy Shard health as seen from this node \
             (1 = forwarding, 0 = degraded to local fallback).\n\
             # TYPE hidisc_serve_shard_healthy gauge\n",
        );
        for (i, ok) in sh.health().into_iter().enumerate() {
            s.push_str(&format!(
                "hidisc_serve_shard_healthy{{shard=\"{i}\"}} {}\n",
                ok as u8
            ));
        }
    }
    s.push_str(&format!(
        "# HELP hidisc_build_info Build identity of this binary; the value is always 1.\n\
         # TYPE hidisc_build_info gauge\n\
         hidisc_build_info{{version=\"{}\",git_sha=\"{}\"}} 1\n",
        escape(VERSION),
        escape(GIT_SHA)
    ));
    state.http.render(&mut s);
    if let Some(m) = state.metrics.lock().expect("metrics lock").as_ref() {
        s.push_str(&metrics_prometheus(m));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_parses_and_validates() {
        let spec = JobSpec::from_json(
            br#"{"workload":"dm","scale":"test","seed":7,"model":"hidisc","max_cycles":1000}"#,
        )
        .unwrap();
        assert_eq!(spec.workload, "dm");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.model, Model::HiDisc);
        assert_eq!(spec.max_cycles, Some(1000));

        assert!(JobSpec::from_json(b"not json").is_err());
        assert!(JobSpec::from_json(br#"{"scale":"test"}"#)
            .unwrap_err()
            .contains("workload"));
        assert!(JobSpec::from_json(br#"{"workload":"nope"}"#)
            .unwrap_err()
            .contains("unknown workload"));
        assert!(JobSpec::from_json(br#"{"workload":"dm","bogus":1}"#)
            .unwrap_err()
            .contains("unknown field"));
        assert!(JobSpec::from_json(br#"{"workload":"dm","seed":-1}"#)
            .unwrap_err()
            .contains("non-negative"));
    }

    #[test]
    fn config_errors_carry_the_typed_message() {
        let mut spec = JobSpec::from_json(br#"{"workload":"dm"}"#).unwrap();
        spec.scq_depth = Some(0);
        let err = spec.config().unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid machine config: queues.scq must be at least 1"
        );
    }

    #[test]
    fn custom_program_spec_parses_and_preflights() {
        let spec = JobSpec::from_json(br#"{"program":"li r1, 64\nsd r1, 0(r1)\nhalt"}"#).unwrap();
        assert_eq!(spec.workload, "custom");
        let cfg = spec.config().unwrap();
        assert!(preflight(&spec, &cfg).is_ok());

        // A program operating on an architectural queue is rejected with
        // the verifier's located diagnostic, code and all.
        let bad = JobSpec::from_json(br#"{"program":"li r1, 1\nsend LDQ, r1\nhalt"}"#).unwrap();
        let (code, msg) = preflight(&bad, &bad.config().unwrap()).unwrap_err();
        assert_eq!(code, "QB004");
        assert!(msg.contains("QB004"), "{msg}");
        assert!(msg.contains("orig@1"), "{msg}");

        // Assembly errors surface as 400s too.
        let nosyntax = JobSpec::from_json(br#"{"program":"frobnicate r1"}"#).unwrap();
        assert!(preflight(&nosyntax, &nosyntax.config().unwrap()).is_err());

        // Named workloads skip the pre-flight.
        let named = JobSpec::from_json(br#"{"workload":"dm"}"#).unwrap();
        assert!(preflight(&named, &named.config().unwrap()).is_ok());

        // The source cap is enforced at parse time.
        let huge = format!(
            "{{\"program\":\"{}\"}}",
            "nop\\n".repeat(MAX_PROGRAM_BYTES / 4 + 1)
        );
        assert!(JobSpec::from_json(huge.as_bytes())
            .unwrap_err()
            .contains("cap"));
    }

    #[test]
    fn custom_program_changes_the_job_key() {
        let spec = JobSpec::from_json(br#"{"program":"li r1, 64\nsd r1, 0(r1)\nhalt"}"#).unwrap();
        let cfg = spec.config().unwrap();
        let base = spec.key(&cfg);
        let mut other = spec.clone();
        other.program = Some("li r1, 8\nsd r1, 0(r1)\nhalt".to_string());
        assert_ne!(base, other.key(&cfg));
        // ... and differs from a named workload sharing the label.
        let mut named = spec.clone();
        named.program = None;
        assert_ne!(base, named.key(&cfg));
    }

    #[test]
    fn job_key_separates_workload_identity() {
        let spec = JobSpec::from_json(br#"{"workload":"dm"}"#).unwrap();
        let cfg = spec.config().unwrap();
        let base = spec.key(&cfg);
        let mut other = spec.clone();
        other.workload = "tc".to_string();
        assert_ne!(base, other.key(&cfg));
        let mut other = spec.clone();
        other.seed = spec.seed + 1;
        assert_ne!(base, other.key(&cfg));
        let mut other = spec.clone();
        other.model = Model::Superscalar;
        assert_ne!(base, other.key(&cfg));
        let mut other = spec.clone();
        other.scale = Scale::Paper;
        assert_ne!(base, other.key(&cfg));
        // Telemetry/timeout do not change the key.
        let mut other = spec.clone();
        other.timeout_ms = Some(5_000);
        other.metrics_interval = 100;
        assert_eq!(base, other.key(&other.config().unwrap()));
    }
}
