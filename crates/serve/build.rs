//! Bakes the git revision into the binary (`hidisc_build_info`,
//! `/healthz`) so multi-node sweeps can tell deployed builds apart.
//! Falls back to `unknown` outside a git checkout or without git.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=HIDISC_GIT_SHA={sha}");
    // Rebuild when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
