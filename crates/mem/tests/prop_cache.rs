//! The set-associative cache must agree with a naive reference model
//! (explicit per-set LRU lists) on arbitrary access traces.

use hidisc_mem::cache::Cache;
use hidisc_mem::CacheConfig;
use proptest::prelude::*;

/// Naive oracle: each set is a Vec of tags, most-recent first.
struct NaiveLru {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block: u64,
    nsets: u64,
}

impl NaiveLru {
    fn new(cfg: CacheConfig) -> NaiveLru {
        NaiveLru {
            sets: vec![Vec::new(); cfg.sets as usize],
            ways: cfg.ways as usize,
            block: cfg.block_bytes as u64,
            nsets: cfg.sets as u64,
        }
    }

    /// Returns hit/miss and updates the model.
    fn access(&mut self, addr: u64) -> bool {
        let blk = addr / self.block;
        let set = (blk % self.nsets) as usize;
        let tag = blk / self.nsets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.insert(0, tag);
            true
        } else {
            s.insert(0, tag);
            s.truncate(self.ways);
            false
        }
    }
}

fn small_cfg() -> CacheConfig {
    CacheConfig {
        sets: 8,
        block_bytes: 32,
        ways: 2,
        latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_naive_lru(addrs in prop::collection::vec(0u64..(1 << 14), 1..400)) {
        let cfg = small_cfg();
        let mut cache = Cache::new(cfg);
        let mut oracle = NaiveLru::new(cfg);
        for &a in &addrs {
            let got = cache.access(a, false, false).hit;
            let want = oracle.access(a);
            prop_assert_eq!(got, want, "address {:#x}", a);
        }
    }

    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(0u64..(1 << 13), 1..300)) {
        let mut cache = Cache::new(small_cfg());
        let mut misses = 0u64;
        for &a in &addrs {
            if !cache.access(a, false, false).hit {
                misses += 1;
            }
        }
        let st = cache.stats();
        prop_assert_eq!(st.demand_accesses, addrs.len() as u64);
        prop_assert_eq!(st.demand_misses, misses);
        prop_assert!(st.demand_misses <= st.demand_accesses);
    }

    #[test]
    fn peek_never_changes_behaviour(
        addrs in prop::collection::vec(0u64..(1 << 12), 1..200),
        peeks in prop::collection::vec(0u64..(1 << 12), 1..200),
    ) {
        let cfg = small_cfg();
        let mut a_cache = Cache::new(cfg);
        let mut b_cache = Cache::new(cfg);
        let mut a_hits = Vec::new();
        let mut b_hits = Vec::new();
        for (i, &addr) in addrs.iter().enumerate() {
            a_hits.push(a_cache.access(addr, false, false).hit);
            // b interleaves peeks
            if let Some(&p) = peeks.get(i) {
                let _ = b_cache.peek(p);
            }
            b_hits.push(b_cache.access(addr, false, false).hit);
        }
        prop_assert_eq!(a_hits, b_hits);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup(
        // ways * sets distinct blocks fit exactly
        rounds in 2u32..6,
    ) {
        let cfg = small_cfg();
        let mut cache = Cache::new(cfg);
        let blocks = (cfg.sets * cfg.ways) as u64;
        // warm
        for b in 0..blocks {
            cache.access(b * cfg.block_bytes as u64, false, false);
        }
        // every later round must hit
        for _ in 0..rounds {
            for b in 0..blocks {
                prop_assert!(cache.access(b * cfg.block_bytes as u64, false, false).hit);
            }
        }
    }
}
