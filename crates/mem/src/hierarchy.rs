//! The two-level memory system with MSHRs.
//!
//! [`MemSystem::access`] is the single entry point used by the timing
//! cores: given an address, an access kind and the current cycle it returns
//! the cycle at which the access completes, updating cache state and
//! statistics. Misses allocate an MSHR; when all MSHRs are busy the access
//! is rejected and the requester must retry on a later cycle (this is how
//! the cores model limited memory-level parallelism).
//!
//! Fills update tags immediately but carry a `ready_at` time in their MSHR,
//! so a demand access that touches a block whose fill is still in flight
//! completes when the fill does — this is what makes *late* prefetches only
//! partially effective, as in the paper.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::stats::MemStats;
use hidisc_isa::wire::{Dec, Enc, WireResult};
use hidisc_telemetry::{Category, EventData, MissKind, Telemetry};

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Load,
    /// Demand store (write-allocate, write-back).
    Store,
    /// Prefetch (from the CMP or a `pref` instruction): fills the caches
    /// but is not a demand access.
    Prefetch,
}

impl AccessKind {
    fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
    fn is_prefetch(self) -> bool {
        matches!(self, AccessKind::Prefetch)
    }
    fn miss_kind(self) -> MissKind {
        match self {
            AccessKind::Load => MissKind::Load,
            AccessKind::Store => MissKind::Store,
            AccessKind::Prefetch => MissKind::Prefetch,
        }
    }
}

/// Trace-only side facts of one access that [`AccessResult`] does not
/// carry (dirty-victim writebacks per level).
#[derive(Debug, Clone, Copy, Default)]
struct AccessSide {
    l1_writeback: bool,
    l2_writeback: bool,
}

/// Completion information for an accepted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available (load) or the access retires
    /// (store/prefetch).
    pub complete_at: u64,
    /// The access hit in L1 (including hits on in-flight fills).
    pub l1_hit: bool,
    /// On an L1 miss: the access hit in L2.
    pub l2_hit: bool,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    block: u64,
    ready_at: u64,
    was_prefetch: bool,
}

/// The memory system: L1 data cache + unified L2 + DRAM latency + MSHRs.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    mshrs: Vec<Mshr>,
    mem_accesses: u64,
    mshr_rejects: u64,
    mshr_merges: u64,
    late_prefetch_hits: u64,
    late_merge_misses: u64,
}

impl MemSystem {
    /// Creates a memory system with the given configuration.
    pub fn new(cfg: MemConfig) -> MemSystem {
        MemSystem {
            cfg,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            mshrs: Vec::with_capacity(cfg.mshrs as usize),
            mem_accesses: 0,
            mshr_rejects: 0,
            mshr_merges: 0,
            late_prefetch_hits: 0,
            late_merge_misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn retire_expired(&mut self, now: u64) {
        self.mshrs.retain(|m| m.ready_at > now);
    }

    fn inflight(&self, block: u64) -> Option<&Mshr> {
        self.mshrs.iter().find(|m| m.block == block)
    }

    /// Performs an access at cycle `now`. Returns `None` when all MSHRs
    /// are busy and the access would need a new one (the caller retries on
    /// a later cycle).
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> Option<AccessResult> {
        self.access_impl(addr, kind, now).map(|(r, _)| r)
    }

    /// [`MemSystem::access`] plus telemetry: records miss, eviction and
    /// MSHR-occupancy events ([`Category::Mem`]) and feeds demand-miss
    /// fill latencies into the interval metrics. Behaviourally identical
    /// to `access` — telemetry reads the outcome, it never changes it.
    pub fn access_traced(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
        trace: &mut Telemetry,
    ) -> Option<AccessResult> {
        let (r, side) = self.access_impl(addr, kind, now)?;
        if trace.on(Category::Mem) && !r.l1_hit {
            trace.emit(EventData::MemMiss {
                addr,
                kind: kind.miss_kind(),
                l2_hit: r.l2_hit,
                ready_at: r.complete_at,
            });
            if side.l1_writeback {
                trace.emit(EventData::Eviction { level: 1 });
            }
            if side.l2_writeback {
                trace.emit(EventData::Eviction { level: 2 });
            }
            trace.emit(EventData::MshrOccupancy {
                n: self.mshrs.len() as u32,
            });
        }
        if !r.l1_hit && !kind.is_prefetch() {
            trace.record_miss_latency(r.complete_at.saturating_sub(now));
        }
        Some(r)
    }

    fn access_impl(
        &mut self,
        addr: u64,
        kind: AccessKind,
        now: u64,
    ) -> Option<(AccessResult, AccessSide)> {
        self.retire_expired(now);
        let block = self.l1.block_of(addr);

        // If the line is absent and no MSHR slot is free, reject before
        // touching any state.
        if !self.l1.peek(addr)
            && self.inflight(block).is_none()
            && self.mshrs.len() >= self.cfg.mshrs as usize
        {
            self.mshr_rejects += 1;
            return None;
        }

        let l1_lat = self.cfg.l1.latency as u64;
        let probe = self.l1.access(addr, kind.is_store(), kind.is_prefetch());
        if probe.hit {
            // Possibly a hit on an in-flight fill.
            if let Some(m) = self.inflight(block) {
                let ready = m.ready_at;
                let was_prefetch = m.was_prefetch;
                self.mshr_merges += 1;
                if was_prefetch
                    && !kind.is_prefetch()
                    && ready > now + l1_lat
                    && probe.first_touch_of_prefetch
                {
                    // The *first* demand touch still waits for the
                    // prefetch fill: a late prefetch. Architecturally this
                    // is a (partially hidden) miss and the statistics
                    // report it as one — otherwise a prefetcher running
                    // barely ahead of the demand stream would look like a
                    // perfect cache. Later touches of the same in-flight
                    // block merge without extra miss accounting, exactly
                    // as they would behind an ordinary demand miss.
                    self.late_prefetch_hits += 1;
                    self.late_merge_misses += 1;
                }
                return Some((
                    AccessResult {
                        complete_at: ready.max(now + l1_lat),
                        l1_hit: true,
                        l2_hit: false,
                    },
                    AccessSide::default(),
                ));
            }
            return Some((
                AccessResult {
                    complete_at: now + l1_lat,
                    l1_hit: true,
                    l2_hit: false,
                },
                AccessSide::default(),
            ));
        }

        // L1 miss: consult L2. (Writebacks of dirty victims update the
        // writeback counter inside the caches; their latency is absorbed by
        // the write buffer, as in sim-outorder.)
        let probe2 = self.l2.access(addr, false, kind.is_prefetch());
        let mut lat = l1_lat + self.cfg.l2.latency as u64;
        if !probe2.hit {
            lat += self.cfg.mem_latency as u64;
            self.mem_accesses += 1;
        }
        let ready_at = now + lat;
        self.mshrs.push(Mshr {
            block,
            ready_at,
            was_prefetch: kind.is_prefetch(),
        });
        Some((
            AccessResult {
                complete_at: ready_at,
                l1_hit: false,
                l2_hit: probe2.hit,
            },
            AccessSide {
                l1_writeback: probe.evicted_dirty,
                l2_writeback: probe2.evicted_dirty,
            },
        ))
    }

    /// Functional (latency-free) access for sampled simulation's warm
    /// phases: tags, LRU state, hit/miss statistics and the memory-access
    /// counter update exactly as in [`MemSystem::access`], but no MSHR is
    /// occupied and nothing is ever rejected. Warm-mode code commits many
    /// instructions per cycle, so routing its traffic through the timed
    /// path would exhaust the MSHR file and silently stop warming the
    /// caches — the systematic bias this entry point exists to avoid.
    /// Returns whether the access hit in L1.
    pub fn warm_access(&mut self, addr: u64, kind: AccessKind) -> bool {
        let probe = self.l1.access(addr, kind.is_store(), kind.is_prefetch());
        if !probe.hit {
            let probe2 = self.l2.access(addr, false, kind.is_prefetch());
            if !probe2.hit {
                self.mem_accesses += 1;
            }
        }
        probe.hit
    }

    /// Number of MSHRs currently outstanding at cycle `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.retire_expired(now);
        self.mshrs.len()
    }

    /// The earliest cycle strictly after `now` at which an in-flight fill
    /// completes. A full MSHR file rejects requesters until then, so this
    /// is the wake-up time for every core retrying a rejected access.
    /// `None` when nothing is in flight beyond `now`.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.mshrs
            .iter()
            .map(|m| m.ready_at)
            .filter(|&t| t > now)
            .min()
    }

    /// Structural-progress fingerprint (see `hidisc::Machine`). Every
    /// counter here moves only inside an *accepted* access; `mshr_rejects`
    /// — the one counter a rejected access bumps — is excluded, because
    /// rejected retries are precisely what idle cycles repeat.
    pub fn progress_token(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95)
        }
        let cache = |mut h: u64, s: &crate::stats::CacheStats| {
            h = mix(h, s.demand_accesses);
            h = mix(h, s.prefetch_accesses);
            h = mix(h, s.writebacks);
            h
        };
        let mut h = mix(0, self.mem_accesses);
        h = mix(h, self.mshr_merges);
        h = mix(h, self.late_prefetch_hits);
        h = cache(h, self.l1.stats());
        h = cache(h, self.l2.stats());
        h
    }

    /// Replays the MSHR rejects of `k` identical idle cycles
    /// (`rejects_per_cycle` rejected retries happened on the measured idle
    /// cycle and would repeat every skipped cycle).
    pub fn add_idle_rejects(&mut self, rejects_per_cycle: u64, k: u64) {
        self.mshr_rejects += rejects_per_cycle * k;
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> MemStats {
        let mut l1 = *self.l1.stats();
        l1.late_prefetch_hits = self.late_prefetch_hits;
        l1.demand_misses += self.late_merge_misses;
        MemStats {
            l1,
            l2: *self.l2.stats(),
            mem_accesses: self.mem_accesses,
            mshr_rejects: self.mshr_rejects,
            mshr_merges: self.mshr_merges,
        }
    }

    /// Serialises the dynamic state: both cache levels, the in-flight
    /// MSHRs (in allocation order) and the system-level counters.
    pub fn save_state(&self, e: &mut Enc) {
        self.l1.save_state(e);
        self.l2.save_state(e);
        e.usize(self.mshrs.len());
        for m in &self.mshrs {
            e.u64(m.block);
            e.u64(m.ready_at);
            e.bool(m.was_prefetch);
        }
        e.u64(self.mem_accesses);
        e.u64(self.mshr_rejects);
        e.u64(self.mshr_merges);
        e.u64(self.late_prefetch_hits);
        e.u64(self.late_merge_misses);
    }

    /// Restores the state saved by [`MemSystem::save_state`]; the receiver
    /// must have the same configuration.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        self.l1.load_state(d)?;
        self.l2.load_state(d)?;
        let n = d.usize()?;
        self.mshrs.clear();
        for _ in 0..n {
            let block = d.u64()?;
            let ready_at = d.u64()?;
            let was_prefetch = d.bool()?;
            self.mshrs.push(Mshr {
                block,
                ready_at,
                was_prefetch,
            });
        }
        self.mem_accesses = d.u64()?;
        self.mshr_rejects = d.u64()?;
        self.mshr_merges = d.u64()?;
        self.late_prefetch_hits = d.u64()?;
        self.late_merge_misses = d.u64()?;
        Ok(())
    }

    /// Clears cache contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.mshrs.clear();
        self.mem_accesses = 0;
        self.mshr_rejects = 0;
        self.mshr_merges = 0;
        self.late_prefetch_hits = 0;
        self.late_merge_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, MemConfig};

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig {
            l1: CacheConfig {
                sets: 4,
                block_bytes: 16,
                ways: 2,
                latency: 1,
            },
            l2: CacheConfig {
                sets: 16,
                block_bytes: 32,
                ways: 2,
                latency: 10,
            },
            mem_latency: 100,
            mshrs: 2,
        })
    }

    #[test]
    fn latency_tiers() {
        let mut s = sys();
        // Cold: L1 miss + L2 miss → 1 + 10 + 100
        let r = s.access(0x1000, AccessKind::Load, 0).unwrap();
        assert_eq!(r.complete_at, 111);
        assert!(!r.l1_hit && !r.l2_hit);
        // Warm L1 (after fill time): pure hit
        let r = s.access(0x1000, AccessKind::Load, 200).unwrap();
        assert_eq!(r.complete_at, 201);
        assert!(r.l1_hit);
    }

    #[test]
    fn l2_hit_latency() {
        let mut s = sys();
        s.access(0x1000, AccessKind::Load, 0).unwrap();
        // Evict from tiny L1 by filling the set (stride 64 = sets*block)
        s.access(0x1040, AccessKind::Load, 300).unwrap();
        s.access(0x1080, AccessKind::Load, 600).unwrap();
        // 0x1000 now out of L1 but still in L2 (L2 is bigger)
        let r = s.access(0x1000, AccessKind::Load, 900).unwrap();
        assert!(!r.l1_hit && r.l2_hit);
        assert_eq!(r.complete_at, 900 + 1 + 10);
    }

    #[test]
    fn in_flight_fill_gates_completion() {
        let mut s = sys();
        let r1 = s.access(0x1000, AccessKind::Load, 0).unwrap();
        // A second access to the same block 5 cycles later merges with the
        // outstanding fill rather than hitting in 1 cycle.
        let r2 = s.access(0x1008, AccessKind::Load, 5).unwrap();
        assert!(r2.l1_hit);
        assert_eq!(r2.complete_at, r1.complete_at);
        assert_eq!(s.stats().mshr_merges, 1);
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut s = sys();
        assert!(s.access(0x0, AccessKind::Load, 0).is_some());
        assert!(s.access(0x100, AccessKind::Load, 0).is_some());
        // Third distinct miss at the same cycle: no MSHR left.
        assert!(s.access(0x200, AccessKind::Load, 0).is_none());
        assert_eq!(s.stats().mshr_rejects, 1);
        // After the fills complete, it goes through.
        assert!(s.access(0x200, AccessKind::Load, 500).is_some());
    }

    #[test]
    fn late_prefetch_partial_benefit() {
        let mut s = sys();
        let p = s.access(0x1000, AccessKind::Prefetch, 0).unwrap();
        // Demand load arrives before the prefetch fill completes: it waits
        // until the fill, not a full miss, and is counted as a late
        // prefetch hit.
        let d = s.access(0x1000, AccessKind::Load, 10).unwrap();
        assert_eq!(d.complete_at, p.complete_at);
        assert_eq!(s.stats().l1.late_prefetch_hits, 1);
        // A late hit is still a useful (first-touch) prefetch hit.
        assert_eq!(s.stats().l1.useful_prefetch_hits, 1);
        // Timely prefetch: another block, demand long after.
        s.access(0x2000, AccessKind::Prefetch, 1000).unwrap();
        let d = s.access(0x2000, AccessKind::Load, 2000).unwrap();
        assert_eq!(d.complete_at, 2001);
        assert_eq!(s.stats().l1.useful_prefetch_hits, 2);
        assert_eq!(s.stats().l1.late_prefetch_hits, 1);
    }

    #[test]
    fn prefetch_does_not_inflate_demand_stats() {
        let mut s = sys();
        s.access(0x1000, AccessKind::Prefetch, 0).unwrap();
        let st = s.stats();
        assert_eq!(st.l1.demand_accesses, 0);
        assert_eq!(st.l1.prefetch_accesses, 1);
        assert_eq!(st.l1.prefetch_misses, 1);
    }

    #[test]
    fn outstanding_tracks_mshr_retirement() {
        let mut s = sys();
        s.access(0x0, AccessKind::Load, 0).unwrap();
        assert_eq!(s.outstanding(5), 1);
        assert_eq!(s.outstanding(1000), 0);
    }

    #[test]
    fn save_load_round_trips_behaviour() {
        let mut s = sys();
        s.access(0x1000, AccessKind::Prefetch, 0).unwrap();
        s.access(0x1000, AccessKind::Load, 10).unwrap();
        s.access(0x2000, AccessKind::Load, 20).unwrap();
        let mut e = hidisc_isa::wire::Enc::new();
        s.save_state(&mut e);
        let bytes = e.finish();

        // Restore into a *fresh* system and check observable equivalence:
        // same stats, same outstanding fills, same behaviour afterwards.
        let mut t = sys();
        let mut d = hidisc_isa::wire::Dec::new(&bytes);
        t.load_state(&mut d).unwrap();
        d.done().unwrap();
        assert_eq!(t.stats(), s.stats());
        assert_eq!(t.next_event(20), s.next_event(20));
        let a = s.access(0x1000, AccessKind::Load, 500).unwrap();
        let b = t.access(0x1000, AccessKind::Load, 500).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.progress_token(), s.progress_token());
    }
}
