//! A hardware stride prefetcher (reference prediction table) in the style
//! of Chen & Baer, "Effective Hardware-Based Data Prefetching for
//! High-Performance Processors" — the paper's reference \[3\] for hardware
//! prefetching. Used as a *related-work comparator*: a conventional
//! superscalar equipped with this prefetcher is the machine the paper's
//! Section 2 says "still suffers when faced with irregular memory access
//! patterns".
//!
//! Classic four-state RPT entry per load PC:
//!
//! ```text
//! initial --same stride--> transient --same stride--> steady
//!    ^                         |                         |
//!    +----stride changed-------+          stride changed +--> no-pred
//! ```
//!
//! Prefetches are emitted only in the *steady* state, `distance` strides
//! ahead of the current access.

use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};

/// RPT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RptConfig {
    /// Table entries (direct-mapped by load pc).
    pub entries: usize,
    /// How many strides ahead to prefetch.
    pub distance: u32,
}

impl Default for RptConfig {
    fn default() -> Self {
        RptConfig {
            entries: 64,
            distance: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Initial,
    Transient,
    Steady,
    NoPred,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u32,
    valid: bool,
    last_addr: u64,
    stride: i64,
    state: State,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            pc: 0,
            valid: false,
            last_addr: 0,
            stride: 0,
            state: State::Initial,
        }
    }
}

/// Statistics of the stride prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RptStats {
    /// Loads observed.
    pub observed: u64,
    /// Prefetch addresses emitted (steady-state hits).
    pub emitted: u64,
    /// Entry replacements (pc conflicts).
    pub replacements: u64,
}

/// The reference prediction table.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: RptConfig,
    table: Vec<Entry>,
    stats: RptStats,
}

impl StridePrefetcher {
    /// Creates an empty table.
    pub fn new(cfg: RptConfig) -> StridePrefetcher {
        assert!(cfg.entries > 0);
        StridePrefetcher {
            cfg,
            table: vec![Entry::default(); cfg.entries],
            stats: RptStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &RptStats {
        &self.stats
    }

    /// Observes a demand load at `pc` touching `addr`; returns an address
    /// to prefetch when the entry predicts confidently.
    pub fn observe(&mut self, pc: u32, addr: u64) -> Option<u64> {
        self.stats.observed += 1;
        let slot = (pc as usize) % self.cfg.entries;
        let e = &mut self.table[slot];

        if !e.valid || e.pc != pc {
            if e.valid {
                self.stats.replacements += 1;
            }
            *e = Entry {
                pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                state: State::Initial,
            };
            return None;
        }

        let stride = addr.wrapping_sub(e.last_addr) as i64;
        let matched = stride == e.stride && stride != 0;
        e.state = match (e.state, matched) {
            (State::Initial, true) => State::Transient,
            (State::Initial, false) => State::Initial,
            (State::Transient, true) => State::Steady,
            (State::Transient, false) => State::NoPred,
            (State::Steady, true) => State::Steady,
            (State::Steady, false) => State::Initial,
            (State::NoPred, true) => State::Transient,
            (State::NoPred, false) => State::NoPred,
        };
        if !matched {
            e.stride = stride;
        }
        e.last_addr = addr;

        if e.state == State::Steady {
            self.stats.emitted += 1;
            Some(addr.wrapping_add((e.stride * self.cfg.distance as i64) as u64))
        } else {
            None
        }
    }

    /// Serialises the table and statistics (geometry comes from the
    /// config, which the checkpoint header pins).
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.table.len());
        for entry in &self.table {
            e.u32(entry.pc);
            e.bool(entry.valid);
            e.u64(entry.last_addr);
            e.i64(entry.stride);
            e.u8(match entry.state {
                State::Initial => 0,
                State::Transient => 1,
                State::Steady => 2,
                State::NoPred => 3,
            });
        }
        let RptStats {
            observed,
            emitted,
            replacements,
        } = self.stats;
        e.u64(observed);
        e.u64(emitted);
        e.u64(replacements);
    }

    /// Restores the state saved by [`StridePrefetcher::save_state`]; the
    /// receiver must have the same table size.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        if n != self.table.len() {
            return Err(WireError {
                pos: 0,
                what: "prefetch table size mismatch",
            });
        }
        for entry in &mut self.table {
            entry.pc = d.u32()?;
            entry.valid = d.bool()?;
            entry.last_addr = d.u64()?;
            entry.stride = d.i64()?;
            entry.state = match d.u8()? {
                0 => State::Initial,
                1 => State::Transient,
                2 => State::Steady,
                3 => State::NoPred,
                _ => {
                    return Err(WireError {
                        pos: 0,
                        what: "prefetch entry state out of range",
                    })
                }
            };
        }
        self.stats.observed = d.u64()?;
        self.stats.emitted = d.u64()?;
        self.stats.replacements = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_stride() {
        let mut p = StridePrefetcher::new(RptConfig {
            entries: 8,
            distance: 2,
        });
        assert_eq!(p.observe(5, 1000), None); // allocate
        assert_eq!(p.observe(5, 1064), None); // initial -> transient
        assert_eq!(p.observe(5, 1128), None); // transient -> steady
                                              // steady: prefetch 2 strides ahead
        assert_eq!(p.observe(5, 1192), Some(1192 + 128));
        assert_eq!(p.observe(5, 1256), Some(1256 + 128));
    }

    #[test]
    fn random_addresses_never_predict() {
        let mut p = StridePrefetcher::new(RptConfig::default());
        let addrs = [100u64, 7000, 320, 99999, 12, 4096, 777];
        let mut emitted = 0;
        for &a in &addrs {
            if p.observe(9, a).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 0, "irregular stream must not trigger prefetches");
    }

    #[test]
    fn stride_change_backs_off_then_relearns() {
        let mut p = StridePrefetcher::new(RptConfig {
            entries: 8,
            distance: 1,
        });
        for k in 0..4 {
            p.observe(3, 1000 + 8 * k);
        }
        // change stride: steady -> initial (no prefetch)
        assert_eq!(p.observe(3, 5000), None);
        // relearn the new stride
        p.observe(3, 5016);
        p.observe(3, 5032);
        assert_eq!(p.observe(3, 5048), Some(5048 + 16));
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(RptConfig {
            entries: 8,
            distance: 1,
        });
        for k in 0..3i64 {
            p.observe(1, (10_000 - 64 * k) as u64);
        }
        let got = p.observe(1, 10_000 - 192);
        assert_eq!(got, Some((10_000 - 256) as u64));
    }

    #[test]
    fn pc_conflicts_replace() {
        let mut p = StridePrefetcher::new(RptConfig {
            entries: 1,
            distance: 1,
        });
        p.observe(1, 100);
        p.observe(2, 200); // evicts pc 1
        assert_eq!(p.stats().replacements, 1);
        // pc 1 must retrain from scratch
        p.observe(1, 108);
        p.observe(1, 116);
        p.observe(1, 124);
        // entry was reallocated at the second observe; two matching
        // strides later it is steady again
        assert!(p.observe(1, 132).is_some());
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut p = StridePrefetcher::new(RptConfig {
            entries: 16,
            distance: 1,
        });
        for k in 0..4u64 {
            p.observe(1, 1000 + 8 * k);
            p.observe(2, 9000 + 256 * k);
        }
        assert_eq!(p.observe(1, 1032), Some(1040));
        assert_eq!(p.observe(2, 10024), Some(10280));
    }
}
