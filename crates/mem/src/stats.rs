//! Cache and memory-system statistics.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand (load/store) accesses.
    pub demand_accesses: u64,
    /// Demand accesses that missed.
    pub demand_misses: u64,
    /// Prefetch accesses (issued by the CMP or `pref` instructions).
    pub prefetch_accesses: u64,
    /// Prefetch accesses that missed (i.e. prefetches that did work).
    pub prefetch_misses: u64,
    /// First demand touches of lines that were brought in by a prefetch
    /// (useful prefetches, timely or late).
    pub useful_prefetch_hits: u64,
    /// Demand accesses that hit an in-flight prefetch fill and had to wait
    /// for it (late prefetches: a subset of `useful_prefetch_hits` whose
    /// latency was only partially hidden).
    pub late_prefetch_hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand miss rate in `[0, 1]`; 0 when there were no accesses.
    pub fn demand_miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }
}

/// Statistics for the whole memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 data cache.
    pub l1: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Accesses that had to go to main memory.
    pub mem_accesses: u64,
    /// Accesses rejected because all MSHRs were busy (the requester
    /// retries).
    pub mshr_rejects: u64,
    /// Misses merged into an already outstanding MSHR for the same block.
    pub mshr_merges: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(CacheStats::default().demand_miss_rate(), 0.0);
        let s = CacheStats {
            demand_accesses: 4,
            demand_misses: 1,
            ..Default::default()
        };
        assert!((s.demand_miss_rate() - 0.25).abs() < 1e-12);
    }
}
