//! # hidisc-mem — the memory-hierarchy timing model
//!
//! Tag-only, cycle-approximate model of the memory system used by every
//! machine configuration in the HiDISC suite: a write-back, write-allocate
//! L1 data cache, a unified L2, and a fixed-latency DRAM, with MSHRs for
//! non-blocking misses.
//!
//! The model is *tag-only*: actual data lives in the architectural
//! `hidisc_isa::mem::Memory` shared with the functional simulator; this
//! crate only decides *when* an access completes and tracks hit/miss
//! statistics.
//!
//! Default parameters reproduce Table 1 of the paper:
//!
//! | parameter | value |
//! |-----------|-------|
//! | L1 data   | 256 sets, 32 B blocks, 4-way, LRU, 1 cycle |
//! | L2 unified| 1024 sets, 64 B blocks, 4-way, LRU, 12 cycles |
//! | memory    | 120 cycles |

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod prefetcher;
pub mod stats;

pub use cache::Cache;
pub use config::{CacheConfig, MemConfig};
pub use hierarchy::{AccessKind, AccessResult, MemSystem};
pub use prefetcher::{RptConfig, StridePrefetcher};
pub use stats::{CacheStats, MemStats};
