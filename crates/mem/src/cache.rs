//! Set-associative, tag-only cache with true-LRU replacement.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    /// Line was filled by a prefetch and has not yet been touched by a
    /// demand access.
    prefetched: bool,
    tag: u64,
    /// Monotonic timestamp of last touch, for LRU.
    lru: u64,
}

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// The access hit.
    pub hit: bool,
    /// On a hit: the line had been brought in by a prefetch and this is the
    /// first demand touch.
    pub first_touch_of_prefetch: bool,
    /// On a miss with an eviction: the victim was dirty (writeback).
    pub evicted_dirty: bool,
}

/// A tag-only set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.sets * cfg.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
            set_shift: cfg.block_bytes.trailing_zeros(),
            set_mask: (cfg.sets - 1) as u64,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The block-aligned address of `addr`.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr & !((self.cfg.block_bytes - 1) as u64)
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift >> self.cfg.sets.trailing_zeros()
    }

    /// Probes and updates the cache for an access at `addr`.
    ///
    /// * On a hit the line's LRU position is refreshed; stores mark it
    ///   dirty.
    /// * On a miss the line is allocated (write-allocate), evicting the LRU
    ///   way.
    ///
    /// `is_store` marks the line dirty; `is_prefetch` updates the prefetch
    /// statistics instead of the demand statistics and tags the filled line
    /// as prefetched.
    pub fn access(&mut self, addr: u64, is_store: bool, is_prefetch: bool) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let tag = self.tag_of(addr);
        let set = self.set_index(addr);
        if is_prefetch {
            self.stats.prefetch_accesses += 1;
        } else {
            self.stats.demand_accesses += 1;
        }
        let w = self.cfg.ways as usize;
        let lines = &mut self.lines[set * w..(set + 1) * w];
        let stats = &mut self.stats;

        // Hit path.
        if let Some(l) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = tick;
            if is_store {
                l.dirty = true;
            }
            let first_touch = l.prefetched && !is_prefetch;
            if first_touch {
                l.prefetched = false;
                stats.useful_prefetch_hits += 1;
            }
            return Probe {
                hit: true,
                first_touch_of_prefetch: first_touch,
                evicted_dirty: false,
            };
        }

        // Miss: allocate over LRU (or an invalid way).
        if is_prefetch {
            stats.prefetch_misses += 1;
        } else {
            stats.demand_misses += 1;
        }
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("associativity is positive");
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            stats.writebacks += 1;
        }
        *victim = Line {
            valid: true,
            dirty: is_store,
            prefetched: is_prefetch,
            tag,
            lru: tick,
        };
        Probe {
            hit: false,
            first_touch_of_prefetch: false,
            evicted_dirty,
        }
    }

    /// Probes without modifying state (no LRU update, no allocation, no
    /// statistics). Used by the profiling pass to ask "would this hit?".
    pub fn peek(&self, addr: u64) -> bool {
        let tag = self.tag_of(addr);
        let set = self.set_index(addr);
        let w = self.cfg.ways as usize;
        self.lines[set * w..(set + 1) * w]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates all lines and forgets statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Serialises the dynamic state (lines, LRU clock, statistics). The
    /// geometry is not stored: the checkpoint header pins the config and
    /// the receiving cache must be built with the same one.
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.lines.len());
        for l in &self.lines {
            e.bool(l.valid);
            e.bool(l.dirty);
            e.bool(l.prefetched);
            e.u64(l.tag);
            e.u64(l.lru);
        }
        e.u64(self.tick);
        let CacheStats {
            demand_accesses,
            demand_misses,
            prefetch_accesses,
            prefetch_misses,
            useful_prefetch_hits,
            late_prefetch_hits,
            writebacks,
        } = self.stats;
        for v in [
            demand_accesses,
            demand_misses,
            prefetch_accesses,
            prefetch_misses,
            useful_prefetch_hits,
            late_prefetch_hits,
            writebacks,
        ] {
            e.u64(v);
        }
    }

    /// Restores the dynamic state saved by [`Cache::save_state`]; the
    /// receiver must have the same geometry.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        if n != self.lines.len() {
            return Err(WireError {
                pos: 0,
                what: "cache line count mismatch",
            });
        }
        for l in &mut self.lines {
            l.valid = d.bool()?;
            l.dirty = d.bool()?;
            l.prefetched = d.bool()?;
            l.tag = d.u64()?;
            l.lru = d.u64()?;
        }
        self.tick = d.u64()?;
        self.stats.demand_accesses = d.u64()?;
        self.stats.demand_misses = d.u64()?;
        self.stats.prefetch_accesses = d.u64()?;
        self.stats.prefetch_misses = d.u64()?;
        self.stats.useful_prefetch_hits = d.u64()?;
        self.stats.late_prefetch_hits = d.u64()?;
        self.stats.writebacks = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets, 2 ways, 16-byte blocks → 128 B
        Cache::new(CacheConfig {
            sets: 4,
            block_bytes: 16,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100, false, false).hit);
        assert!(c.access(0x100, false, false).hit);
        assert!(c.access(0x10f, false, false).hit); // same block
        assert!(!c.access(0x110, false, false).hit); // next block
        assert_eq!(c.stats().demand_accesses, 4);
        assert_eq!(c.stats().demand_misses, 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small();
        // Three blocks mapping to the same set (set stride = sets*block = 64)
        let a = 0x000;
        let b = 0x040;
        let d = 0x080;
        c.access(a, false, false);
        c.access(b, false, false);
        c.access(a, false, false); // refresh a: b is now LRU
        c.access(d, false, false); // evicts b
        assert!(c.access(a, false, false).hit);
        assert!(!c.access(b, false, false).hit);
    }

    #[test]
    fn store_marks_dirty_and_writeback_counted() {
        let mut c = small();
        c.access(0x000, true, false); // dirty
        c.access(0x040, false, false);
        c.access(0x080, false, false); // evicts 0x000 (dirty)
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_statistics() {
        let mut c = small();
        c.access(0x100, false, true); // prefetch fill
        assert_eq!(c.stats().prefetch_accesses, 1);
        assert_eq!(c.stats().prefetch_misses, 1);
        let p = c.access(0x100, false, false); // first demand touch
        assert!(p.hit && p.first_touch_of_prefetch);
        assert_eq!(c.stats().useful_prefetch_hits, 1);
        let p = c.access(0x100, false, false); // second touch: not "first"
        assert!(p.hit && !p.first_touch_of_prefetch);
    }

    #[test]
    fn peek_does_not_disturb() {
        let mut c = small();
        c.access(0x200, false, false);
        let before = *c.stats();
        assert!(c.peek(0x200));
        assert!(!c.peek(0x300));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small();
        c.access(0x100, true, false);
        c.reset();
        assert!(!c.peek(0x100));
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn block_of_masks_low_bits() {
        let c = small();
        assert_eq!(c.block_of(0x123), 0x120);
        assert_eq!(c.block_of(0x120), 0x120);
    }
}
