//! Memory-system configuration.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (charged on a hit at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Table 1 L1 data cache: 256 sets, 32-byte blocks, 4-way, 1 cycle.
    pub fn paper_l1() -> CacheConfig {
        CacheConfig {
            sets: 256,
            block_bytes: 32,
            ways: 4,
            latency: 1,
        }
    }

    /// Table 1 unified L2: 1024 sets, 64-byte blocks, 4-way, 12 cycles.
    pub fn paper_l2() -> CacheConfig {
        CacheConfig {
            sets: 1024,
            block_bytes: 64,
            ways: 4,
            latency: 12,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.block_bytes as u64
    }

    /// Panics if geometry is not a power of two or zero-sized.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
    }
}

/// Configuration of the whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (charged after an L2 miss).
    pub mem_latency: u32,
    /// Number of miss-status-holding registers (outstanding L1 misses).
    pub mshrs: u32,
}

impl MemConfig {
    /// The paper's Table 1 configuration (L2 = 12 cycles, memory = 120
    /// cycles).
    pub fn paper() -> MemConfig {
        MemConfig {
            l1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            mem_latency: 120,
            mshrs: 8,
        }
    }

    /// The paper configuration with the Figure-10 latency override:
    /// `(l2_latency, mem_latency)` ∈ {(4,40), (8,80), (12,120), (16,160)}.
    pub fn paper_with_latency(l2_latency: u32, mem_latency: u32) -> MemConfig {
        let mut c = MemConfig::paper();
        c.l2.latency = l2_latency;
        c.mem_latency = mem_latency;
        c
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        // 256 sets * 4 ways * 32 B = 32 KiB L1
        assert_eq!(CacheConfig::paper_l1().capacity(), 32 * 1024);
        // 1024 sets * 4 ways * 64 B = 256 KiB L2
        assert_eq!(CacheConfig::paper_l2().capacity(), 256 * 1024);
    }

    #[test]
    fn latency_override() {
        let c = MemConfig::paper_with_latency(16, 160);
        assert_eq!(c.l2.latency, 16);
        assert_eq!(c.mem_latency, 160);
        assert_eq!(c.l1.latency, 1);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_non_pow2() {
        CacheConfig {
            sets: 3,
            block_bytes: 32,
            ways: 4,
            latency: 1,
        }
        .validate();
    }
}
