//! The out-of-order core must be architecturally equivalent to the
//! reference interpreter on arbitrary structured programs: same final
//! registers (observed through the arena stores) and same final memory.

use hidisc_isa::interp::Interp;
use hidisc_isa::mem::Memory;
use hidisc_isa::testgen::{random_program, GenConfig};
use hidisc_mem::{MemConfig, MemSystem};
use hidisc_ooo::{CoreConfig, CoreCtx, OooCore, QueueConfig, QueueFile};
use hidisc_telemetry::Telemetry;
use proptest::prelude::*;

fn run_core(cfg: CoreConfig, seed: u64, gen: GenConfig) -> (u64, u64, u64) {
    let (prog, mem, regs) = random_program(seed, gen);

    // Reference.
    let mut interp = Interp::new(&prog, mem.clone());
    for &(r, v) in &regs {
        interp.set_reg(r, v);
    }
    let ref_stats = interp.run(4_000_000).unwrap();
    let want = interp.mem.checksum();

    // Timing core.
    let mut core = OooCore::new("prop", cfg, prog);
    for &(r, v) in &regs {
        core.set_reg(r, v);
    }
    let mut data = mem;
    let mut mem_sys = MemSystem::new(MemConfig::paper());
    let mut queues = QueueFile::new(QueueConfig::paper());
    let mut triggers = Vec::new();
    let mut trace = Telemetry::disabled();
    let mut now = 0u64;
    while !core.is_done() {
        let mut ctx = CoreCtx {
            mem_sys: &mut mem_sys,
            queues: &mut queues,
            data: &mut data,
            triggers: &mut triggers,
            trace: &mut trace,
        };
        core.step(now, &mut ctx).unwrap();
        now += 1;
        assert!(now < 80_000_000, "runaway core simulation (seed {seed})");
    }
    assert_eq!(data.checksum(), want, "seed {seed}: memory diverged");
    assert_eq!(
        core.stats().committed,
        ref_stats.instrs,
        "seed {seed}: committed count diverged"
    );
    (want, now, ref_stats.instrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn superscalar_matches_interpreter(seed in any::<u64>()) {
        run_core(CoreConfig::paper_superscalar(), seed, GenConfig::default());
    }

    #[test]
    fn narrow_inorderish_core_matches_interpreter(seed in any::<u64>()) {
        // A 1-wide, tiny-window core: stresses completely different
        // scheduling paths than the 8-wide machine.
        let cfg = CoreConfig {
            fetch_width: 1,
            dispatch_width: 1,
            issue_width: 1,
            commit_width: 1,
            ruu_size: 4,
            lsq_size: 2,
            ifq_size: 2,
            ..CoreConfig::paper_superscalar()
        };
        run_core(cfg, seed, GenConfig::default());
    }

    #[test]
    fn int_only_programs_run_on_ap_config(seed in any::<u64>()) {
        let gen = GenConfig { with_fp: false, ..GenConfig::default() };
        run_core(CoreConfig::paper_ap(), seed, gen);
    }

    #[test]
    fn timing_is_deterministic(seed in any::<u64>()) {
        let a = run_core(CoreConfig::paper_superscalar(), seed, GenConfig::default());
        let b = run_core(CoreConfig::paper_superscalar(), seed, GenConfig::default());
        prop_assert_eq!(a, b);
    }
}

/// Deep-nesting smoke test outside proptest (heavier programs).
#[test]
fn deep_programs_match() {
    let gen = GenConfig {
        max_depth: 3,
        max_block: 8,
        max_trip: 8,
        ..GenConfig::default()
    };
    for seed in 0..8 {
        run_core(CoreConfig::paper_superscalar(), seed * 7 + 1, gen);
    }
}

/// The memory state must match even with a cold, tiny cache forcing many
/// MSHR rejections and retries.
#[test]
fn tiny_memory_system_does_not_change_results() {
    use hidisc_mem::CacheConfig;
    for seed in 0..8 {
        let (prog, mem, regs) = random_program(seed, GenConfig::default());
        let mut interp = Interp::new(&prog, mem.clone());
        for &(r, v) in &regs {
            interp.set_reg(r, v);
        }
        interp.run(4_000_000).unwrap();
        let want = interp.mem.checksum();

        let mut core = OooCore::new("prop", CoreConfig::paper_superscalar(), prog);
        for &(r, v) in &regs {
            core.set_reg(r, v);
        }
        let mut data: Memory = mem;
        let mut mem_sys = MemSystem::new(MemConfig {
            l1: CacheConfig {
                sets: 2,
                block_bytes: 16,
                ways: 1,
                latency: 1,
            },
            l2: CacheConfig {
                sets: 4,
                block_bytes: 32,
                ways: 1,
                latency: 10,
            },
            mem_latency: 100,
            mshrs: 1,
        });
        let mut queues = QueueFile::new(QueueConfig::paper());
        let mut triggers = Vec::new();
        let mut trace = Telemetry::disabled();
        let mut now = 0u64;
        while !core.is_done() {
            let mut ctx = CoreCtx {
                mem_sys: &mut mem_sys,
                queues: &mut queues,
                data: &mut data,
                triggers: &mut triggers,
                trace: &mut trace,
            };
            core.step(now, &mut ctx).unwrap();
            now += 1;
            assert!(now < 200_000_000, "runaway (seed {seed})");
        }
        assert_eq!(data.checksum(), want, "seed {seed}");
    }
}
