//! Direct tests of the decoupled-queue semantics in the out-of-order
//! core: blocking pops at dispatch, pushes at commit with backpressure,
//! store-data pairing through the LSQ, CQ tokens and trigger forks.

use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::{IntReg, Queue};
use hidisc_mem::{MemConfig, MemSystem};
use hidisc_ooo::{CoreConfig, CoreCtx, OooCore, QueueConfig, QueueFile, TriggerFork};
use hidisc_telemetry::Telemetry;

struct Rig {
    mem_sys: MemSystem,
    queues: QueueFile,
    data: Memory,
    triggers: Vec<TriggerFork>,
    trace: Telemetry,
    now: u64,
}

impl Rig {
    fn new(qcfg: QueueConfig) -> Rig {
        Rig {
            mem_sys: MemSystem::new(MemConfig::paper()),
            queues: QueueFile::new(qcfg),
            data: Memory::new(),
            triggers: Vec::new(),
            trace: Telemetry::disabled(),
            now: 0,
        }
    }

    fn step(&mut self, core: &mut OooCore) {
        let mut ctx = CoreCtx {
            mem_sys: &mut self.mem_sys,
            queues: &mut self.queues,
            data: &mut self.data,
            triggers: &mut self.triggers,
            trace: &mut self.trace,
        };
        core.step(self.now, &mut ctx).unwrap();
        self.now += 1;
    }

    fn run_until_done(&mut self, core: &mut OooCore, limit: u64) {
        while !core.is_done() {
            self.step(core);
            assert!(self.now < limit, "exceeded {limit} cycles");
        }
    }
}

#[test]
fn recv_blocks_until_data_arrives() {
    let prog = assemble("t", "recv r1, LDQ\nadd r2, r1, 1\nhalt").unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    // 50 cycles with an empty LDQ: no commit possible.
    for _ in 0..50 {
        rig.step(&mut core);
    }
    assert_eq!(core.stats().committed, 0);
    assert!(
        core.stats().dispatch_stall_q[0] > 40,
        "LDQ stall cycles must accrue"
    );
    assert_eq!(core.stats().lod_events, 1, "one blocking episode");
    // Provide the value: execution completes and sees it.
    rig.queues.try_push(Queue::Ldq, 41);
    rig.run_until_done(&mut core, 200);
    assert_eq!(core.regs.get_i(IntReg::new(2)), 42);
}

#[test]
fn send_stalls_commit_on_full_queue() {
    // Push more values than the queue holds; nobody drains it.
    let prog = assemble(
        "t",
        "li r1, 7\nsend LDQ, r1\nsend LDQ, r1\nsend LDQ, r1\nsend LDQ, r1\nhalt",
    )
    .unwrap();
    let qcfg = QueueConfig {
        ldq: 2,
        ..QueueConfig::paper()
    };
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(qcfg);
    for _ in 0..100 {
        rig.step(&mut core);
    }
    assert!(!core.is_done(), "core must be stuck on the full LDQ");
    assert_eq!(rig.queues.len(Queue::Ldq), 2);
    assert!(core.stats().commit_stall_q[0] > 50);
    // Drain one: exactly one more push goes through.
    rig.queues.try_pop(Queue::Ldq);
    for _ in 0..20 {
        rig.step(&mut core);
    }
    assert_eq!(rig.queues.stats(Queue::Ldq).pushes, 3);
    // Drain the rest: the program finishes.
    rig.queues.try_pop(Queue::Ldq);
    rig.queues.try_pop(Queue::Ldq);
    rig.run_until_done(&mut core, 500);
    assert_eq!(rig.queues.stats(Queue::Ldq).pushes, 4);
}

#[test]
fn storeq_pairs_address_with_queue_data() {
    // The store address is ready immediately (SAQ role of the LSQ); the
    // data arrives later through the SDQ.
    let prog = assemble("t", "li r1, 0x4000\ns.d SDQ, 0(r1)\nli r2, 5\nhalt").unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    for _ in 0..30 {
        rig.step(&mut core);
    }
    // Younger instructions dispatched fine (r2 computed), but the store
    // cannot commit.
    assert!(!core.is_done());
    assert_eq!(core.regs.get_i(IntReg::new(2)), 5);
    rig.queues.try_push(Queue::Sdq, 0xfeed);
    rig.run_until_done(&mut core, 200);
    assert_eq!(rig.data.read_i64(0x4000).unwrap(), 0xfeed);
}

#[test]
fn cq_tokens_steer_cbranches() {
    // cbr taken, then cbr not-taken: lands on the add at the fallthrough.
    let prog = assemble(
        "t",
        r"
        cbr over
        li r1, 111     ; skipped (first token: taken)
    over:
        cbr end
        li r2, 222     ; executed (second token: not taken)... wait
        halt
    end:
        halt
    ",
    )
    .unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_cp(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.queues.try_push(Queue::Cq, 1); // taken
    rig.queues.try_push(Queue::Cq, 0); // not taken
    rig.run_until_done(&mut core, 500);
    assert_eq!(
        core.regs.get_i(IntReg::new(1)),
        0,
        "taken branch skips li r1"
    );
    assert_eq!(
        core.regs.get_i(IntReg::new(2)),
        222,
        "not-taken falls through"
    );
}

#[test]
fn push_cq_annotation_emits_tokens_at_commit() {
    let mut prog = assemble(
        "t",
        r"
        li r1, 3
    loop:
        sub r1, r1, 1
        bne r1, r0, loop
        halt
    ",
    )
    .unwrap();
    // Annotate the branch to push CQ tokens.
    let branch_pc = 2;
    prog.annot_mut(branch_pc).push_cq = true;
    let mut core = OooCore::new("t", CoreConfig::paper_ap(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.run_until_done(&mut core, 500);
    // 3 executions: taken, taken, not-taken.
    assert_eq!(rig.queues.stats(Queue::Cq).pushes, 3);
    assert_eq!(rig.queues.try_pop(Queue::Cq), Some(1));
    assert_eq!(rig.queues.try_pop(Queue::Cq), Some(1));
    assert_eq!(rig.queues.try_pop(Queue::Cq), Some(0));
}

#[test]
fn trigger_annotation_forks_with_register_snapshot() {
    let mut prog = assemble("t", "li r5, 99\nli r6, 7\nnop\nhalt").unwrap();
    prog.annot_mut(2).trigger = Some(4);
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.run_until_done(&mut core, 200);
    assert_eq!(rig.triggers.len(), 1);
    let t = &rig.triggers[0];
    assert_eq!(t.cmas, 4);
    assert_eq!(t.regs.get_i(IntReg::new(5)), 99);
    assert_eq!(t.regs.get_i(IntReg::new(6)), 7);
    assert_eq!(core.stats().triggers_fired, 1);
}

#[test]
fn getscq_never_blocks_and_drains() {
    let prog = assemble("t", "getscq\ngetscq\nli r1, 1\nhalt").unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.queues.try_push(Queue::Scq, 1);
    rig.run_until_done(&mut core, 200);
    // One token drained; the second getscq found it empty and proceeded.
    assert_eq!(rig.queues.len(Queue::Scq), 0);
    assert_eq!(core.regs.get_i(IntReg::new(1)), 1);
}

#[test]
fn loadq_pushes_loaded_value_at_commit() {
    let prog = assemble("t", "li r1, 0x8000\nl.d LDQ, 0(r1)\nhalt").unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_superscalar(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.data.write_f64(0x8000, 2.75).unwrap();
    rig.run_until_done(&mut core, 500);
    let bits = rig.queues.try_pop(Queue::Ldq).expect("value pushed");
    assert_eq!(f64::from_bits(bits), 2.75);
}

#[test]
fn cdq_recv_blocks_the_access_stream() {
    // An AP that needs a CS-produced address: dispatch blocks on the CDQ.
    let prog = assemble("t", "recv r4, CDQ\nld r5, 0(r4)\nhalt").unwrap();
    let mut core = OooCore::new("t", CoreConfig::paper_ap(), prog);
    let mut rig = Rig::new(QueueConfig::paper());
    rig.data.write_i64(0x9000, 123).unwrap();
    for _ in 0..40 {
        rig.step(&mut core);
    }
    assert!(!core.is_done());
    assert!(core.stats().dispatch_stall_q[2] > 30, "CDQ stalls accrue");
    rig.queues.try_push(Queue::Cdq, 0x9000);
    rig.run_until_done(&mut core, 500);
    assert_eq!(core.regs.get_i(IntReg::new(5)), 123);
}
