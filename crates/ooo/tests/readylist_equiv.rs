//! Differential proof that the wakeup-driven ready-list issue scheduler is
//! invisible: for every benchmark of the suite and every machine model,
//! the default [`Scheduler::ReadyList`] must produce exactly the
//! statistics, cycle count and final memory of the retained
//! [`Scheduler::Scan`] path — the seed implementation's per-cycle walk of
//! the whole RUU.
//!
//! See DESIGN.md, "Ready-list issue scheduling", for the invariants
//! (wakeup completeness, oldest-first order, completion-heap/next_event
//! agreement) this test pins down.

use hidisc::{Machine, MachineConfig, Model, Scheduler};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use hidisc_workloads::{suite, Scale, Workload};

fn env_of(w: &Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

/// Paper preset with a scheduler override. The differential ff shadow
/// re-checks every jump, so it is kept on whenever fast-forward is: the
/// grid then also covers the ready-list × fast-forward interaction
/// (DESIGN.md §11 ↔ §10).
fn config_with(scheduler: Scheduler, fast_forward: bool) -> MachineConfig {
    MachineConfig::builder()
        .scheduler(scheduler)
        .fast_forward(fast_forward)
        .ff_check(fast_forward)
        .build()
        .expect("paper preset with scheduler override is valid")
}

/// Every `Scale::Test` workload × every model: the ready-list scheduler
/// versus the seed scan scheduler must be simulation-identical, with
/// fast-forward disabled (pure per-cycle stepping on both sides).
#[test]
fn ready_list_is_stat_identical_across_suite_and_models() {
    compare_schedulers(false);
}

/// The same grid with fast-forward (and its differential shadow check)
/// enabled on both sides: the ready-list `next_event`/progress-token
/// implementations must agree with the scan ones about skip legality.
#[test]
fn ready_list_is_stat_identical_under_fast_forward() {
    compare_schedulers(true);
}

fn compare_schedulers(fast_forward: bool) {
    for w in suite(Scale::Test, 42) {
        let env = env_of(&w);
        let compiled = compile(&w.prog, &env, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        for model in Model::ALL {
            let scan = Machine::new(
                model,
                &compiled,
                &env,
                config_with(Scheduler::Scan, fast_forward),
            )
            .run(compiled.profile.dyn_instrs)
            .unwrap_or_else(|e| panic!("{}/{model}: scan run failed: {e}", w.name));
            let ready = Machine::new(
                model,
                &compiled,
                &env,
                config_with(Scheduler::ReadyList, fast_forward),
            )
            .run(compiled.profile.dyn_instrs)
            .unwrap_or_else(|e| panic!("{}/{model}: ready-list run failed: {e}", w.name));

            assert_eq!(
                scan.cycles, ready.cycles,
                "{}/{model}: cycle count diverged under the ready list (ff={fast_forward})",
                w.name
            );
            assert_eq!(
                scan.mem_checksum, ready.mem_checksum,
                "{}/{model}: memory diverged under the ready list (ff={fast_forward})",
                w.name
            );
            assert!(
                scan.sim_eq(&ready),
                "{}/{model}: statistics diverged under the ready list (ff={fast_forward}):\n\
                 scan: {scan:#?}\nready: {ready:#?}",
                w.name
            );
        }
    }
}

/// The paper's high-latency point (Figure 10) keeps the window fuller for
/// longer, exercising deep wakeup chains; equivalence must hold there too.
#[test]
fn ready_list_is_stat_identical_at_high_latency() {
    let w = &suite(Scale::Test, 7)[2]; // pointer: serial chase, stall-heavy
    let env = env_of(w);
    let compiled = compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
    for model in Model::ALL {
        let mut scan_cfg = MachineConfig::paper_with_latency(16, 160);
        scan_cfg.superscalar.scheduler = Scheduler::Scan;
        scan_cfg.cp.scheduler = Scheduler::Scan;
        scan_cfg.ap.scheduler = Scheduler::Scan;
        let ready_cfg = MachineConfig::paper_with_latency(16, 160);
        let scan = Machine::new(model, &compiled, &env, scan_cfg)
            .run(compiled.profile.dyn_instrs)
            .unwrap();
        let ready = Machine::new(model, &compiled, &env, ready_cfg)
            .run(compiled.profile.dyn_instrs)
            .unwrap();
        assert!(
            scan.sim_eq(&ready),
            "pointer/{model} @ high latency: ready list diverged from scan"
        );
    }
}
