//! Bimodal branch predictor (Table 1: "Branch predict mode: Bimodal,
//! branch table size 2048").

use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};

/// A table of 2-bit saturating counters indexed by instruction index.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` 2-bit counters (power of two),
    /// initialised to weakly-taken.
    pub fn new(entries: u32) -> Bimodal {
        assert!(
            entries.is_power_of_two(),
            "predictor size must be a power of two"
        );
        Bimodal {
            table: vec![2; entries as usize],
            mask: entries - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[inline]
    pub fn predict(&mut self, pc: u32) -> bool {
        self.predictions += 1;
        self.table[self.idx(pc)] >= 2
    }

    /// Trains the counter with the actual outcome; counts a misprediction
    /// if `predicted != taken`.
    #[inline]
    pub fn update(&mut self, pc: u32, taken: bool, predicted: bool) {
        if predicted != taken {
            self.mispredictions += 1;
        }
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// `(predictions, mispredictions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            let pred = p.predict(5);
            p.update(5, true, pred);
        }
        assert!(p.predict(5));
        // Now always-not-taken: takes a couple of updates to flip.
        for _ in 0..4 {
            let pred = p.predict(5);
            p.update(5, false, pred);
        }
        assert!(!p.predict(5));
    }

    #[test]
    fn counts_mispredictions() {
        let mut p = Bimodal::new(16);
        let pred = p.predict(0); // weakly taken ⇒ true
        assert!(pred);
        p.update(0, false, pred);
        assert_eq!(p.stats().1, 1);
        assert!(p.misprediction_rate() > 0.0);
    }

    #[test]
    fn aliasing_uses_mask() {
        let mut p = Bimodal::new(4);
        // pcs 1 and 5 alias
        for _ in 0..3 {
            let pr = p.predict(1);
            p.update(1, false, pr);
        }
        assert!(!p.predict(5));
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        Bimodal::new(12);
    }
}

/// Gshare predictor: 2-bit counters indexed by `pc ⊕ global-history`.
/// Not used by the paper's Table-1 configuration (which is bimodal), but
/// available for sensitivity studies.
#[derive(Debug, Clone)]
pub struct GShare {
    table: Vec<u8>,
    mask: u32,
    history: u32,
    history_mask: u32,
    predictions: u64,
    mispredictions: u64,
}

impl GShare {
    /// Creates a gshare predictor with `entries` counters (power of two)
    /// and `history_bits` of global history.
    pub fn new(entries: u32, history_bits: u32) -> GShare {
        assert!(
            entries.is_power_of_two(),
            "predictor size must be a power of two"
        );
        assert!(history_bits <= 16);
        GShare {
            table: vec![2; entries as usize],
            mask: entries - 1,
            history: 0,
            history_mask: (1 << history_bits) - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    /// Predicts the branch at `pc` under the current global history.
    pub fn predict(&mut self, pc: u32) -> bool {
        self.predictions += 1;
        self.table[self.idx(pc)] >= 2
    }

    /// Trains with the outcome and shifts the global history.
    pub fn update(&mut self, pc: u32, taken: bool, predicted: bool) {
        if predicted != taken {
            self.mispredictions += 1;
        }
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & self.history_mask;
    }

    /// `(predictions, mispredictions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

/// Which predictor a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Table-1 default.
    Bimodal,
    /// Gshare with the given history length.
    GShare { history_bits: u32 },
}

/// A configured branch predictor.
#[derive(Debug, Clone)]
pub enum Predictor {
    Bimodal(Bimodal),
    GShare(GShare),
}

impl Predictor {
    /// Builds a predictor of the given kind and size.
    pub fn new(kind: PredictorKind, entries: u32) -> Predictor {
        match kind {
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::new(entries)),
            PredictorKind::GShare { history_bits } => {
                Predictor::GShare(GShare::new(entries, history_bits))
            }
        }
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&mut self, pc: u32) -> bool {
        match self {
            Predictor::Bimodal(p) => p.predict(pc),
            Predictor::GShare(p) => p.predict(pc),
        }
    }

    /// Trains with the actual outcome.
    pub fn update(&mut self, pc: u32, taken: bool, predicted: bool) {
        match self {
            Predictor::Bimodal(p) => p.update(pc, taken, predicted),
            Predictor::GShare(p) => p.update(pc, taken, predicted),
        }
    }

    /// `(predictions, mispredictions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        match self {
            Predictor::Bimodal(p) => p.stats(),
            Predictor::GShare(p) => p.stats(),
        }
    }

    /// Serialises the predictor's dynamic state (table sizes come from
    /// the config, which the checkpoint header pins).
    pub fn save_state(&self, e: &mut Enc) {
        match self {
            Predictor::Bimodal(p) => {
                e.usize(p.table.len());
                e.bytes(&p.table);
                e.u64(p.predictions);
                e.u64(p.mispredictions);
            }
            Predictor::GShare(p) => {
                e.usize(p.table.len());
                e.bytes(&p.table);
                e.u32(p.history);
                e.u64(p.predictions);
                e.u64(p.mispredictions);
            }
        }
    }

    /// Restores the dynamic state; the receiver must already be
    /// configured identically (same kind and table size).
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let mismatch = |pos| WireError {
            pos,
            what: "predictor table size mismatch",
        };
        let n = d.usize()?;
        match self {
            Predictor::Bimodal(p) => {
                if n != p.table.len() {
                    return Err(mismatch(0));
                }
                p.table.copy_from_slice(d.bytes(n)?);
                p.predictions = d.u64()?;
                p.mispredictions = d.u64()?;
            }
            Predictor::GShare(p) => {
                if n != p.table.len() {
                    return Err(mismatch(0));
                }
                p.table.copy_from_slice(d.bytes(n)?);
                p.history = d.u32()?;
                p.predictions = d.u64()?;
                p.mispredictions = d.u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod gshare_tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern_that_defeats_bimodal() {
        // T,N,T,N... bimodal oscillates; gshare with history learns it.
        let mut g = GShare::new(1024, 8);
        let mut b = Bimodal::new(1024);
        let mut g_miss = 0;
        let mut b_miss = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            let gp = g.predict(77);
            let bp = b.predict(77);
            if gp != taken {
                g_miss += 1;
            }
            if bp != taken {
                b_miss += 1;
            }
            g.update(77, taken, gp);
            b.update(77, taken, bp);
        }
        assert!(
            g_miss * 4 < b_miss,
            "gshare ({g_miss}) should crush bimodal ({b_miss}) on alternation"
        );
    }

    #[test]
    fn predictor_enum_dispatches() {
        let mut p = Predictor::new(PredictorKind::GShare { history_bits: 4 }, 64);
        for _ in 0..8 {
            let pr = p.predict(3);
            p.update(3, true, pr);
        }
        assert!(p.predict(3));
        assert!(p.stats().0 >= 9);
        let mut b = Predictor::new(PredictorKind::Bimodal, 64);
        let pr = b.predict(3);
        b.update(3, false, pr);
        assert_eq!(b.stats().1, 1);
    }

    #[test]
    fn history_masking() {
        let mut g = GShare::new(64, 2);
        for _ in 0..100 {
            let p = g.predict(0);
            g.update(0, true, p);
        }
        // history saturates within the mask without overflow
        assert!(g.predict(0));
    }
}
