//! The out-of-order core pipeline.
//!
//! See the crate docs for the model summary. The per-cycle stage order is
//! commit → store-data pump → mispredict resolution → issue → dispatch →
//! fetch, so an instruction needs at least one cycle per stage and results
//! become visible to dependents the cycle after they complete.

use crate::config::{CoreConfig, Scheduler};
use crate::fu::{latency_of, FuPool};
use crate::lsq::{queue_opt_code, queue_opt_from, LoadCheck, Lsq, LsqEntry};
use crate::predictor::Predictor;
use crate::queues::QueueFile;
use crate::ruu::{EntryState, Ruu};
use crate::stats::CoreStats;
use hidisc_isa::instr::{FuClass, RegRef, Src, Width};
use hidisc_isa::interp::{
    f64_to_i64, step_at, MemEvent, MemKind, PopResult, PushResult, QueueEnv, RegFile, Step,
};
use hidisc_isa::mem::Memory;
use hidisc_isa::reg::{NUM_FP_REGS, NUM_INT_REGS};
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use hidisc_isa::{Instr, IsaError, Program, Queue, Result};
use hidisc_mem::{AccessKind, MemSystem, StridePrefetcher};
use hidisc_telemetry::{Category, EventData, Telemetry};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Rename-table slots: one per architectural register, integer file first.
const RENAME_SLOTS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// Rename-table slot of a register reference.
fn rename_slot(r: RegRef) -> usize {
    match r {
        RegRef::Int(r) => r.index(),
        RegRef::Fp(r) => NUM_INT_REGS + r.index(),
    }
}

/// A CMAS fork event produced when the Access Processor commits a trigger
/// instruction: the CMP spawns a thread with this register context.
#[derive(Debug, Clone)]
pub struct TriggerFork {
    /// CMAS id from the trigger annotation.
    pub cmas: u32,
    /// Snapshot of the forking core's register file.
    pub regs: RegFile,
}

/// Shared machine resources handed to the core each cycle.
pub struct CoreCtx<'a> {
    /// The (shared) memory-hierarchy timing model.
    pub mem_sys: &'a mut MemSystem,
    /// The architectural queues.
    pub queues: &'a mut QueueFile,
    /// Architectural data memory.
    pub data: &'a mut Memory,
    /// Sink for CMAS trigger forks fired at commit.
    pub triggers: &'a mut Vec<TriggerFork>,
    /// Telemetry recorder; a disabled recorder reduces every emission to
    /// one untaken branch.
    pub trace: &'a mut Telemetry,
}

impl CoreCtx<'_> {
    /// [`QueueFile::try_pop`] plus a [`EventData::QueuePop`] event (with
    /// the remaining depth) when the pop succeeds.
    pub fn pop_queue(&mut self, q: Queue) -> Option<u64> {
        let v = self.queues.try_pop(q);
        if v.is_some() && self.trace.on(Category::Queue) {
            self.trace.emit(EventData::QueuePop {
                q,
                depth: self.queues.len(q) as u32,
            });
        }
        v
    }

    /// [`QueueFile::try_push`] plus a [`EventData::QueuePush`] event
    /// (with the resulting depth) when the push succeeds.
    pub fn push_queue(&mut self, q: Queue, v: u64) -> bool {
        let ok = self.queues.try_push(q, v);
        if ok && self.trace.on(Category::Queue) {
            self.trace.emit(EventData::QueuePush {
                q,
                depth: self.queues.len(q) as u32,
            });
        }
        ok
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u32,
    instr: Instr,
    predicted_taken: bool,
}

/// Sign/zero-extends a raw stored value to the load's width.
fn extend(v: i64, width: Width, signed: bool) -> i64 {
    match (width, signed) {
        (Width::B, true) => v as i8 as i64,
        (Width::B, false) => v as u8 as i64,
        (Width::H, true) => v as i16 as i64,
        (Width::H, false) => v as u16 as i64,
        (Width::W, true) => v as i32 as i64,
        (Width::W, false) => v as u32 as i64,
        (Width::D, _) => v,
    }
}

/// Result of the functional part of dispatching one instruction.
enum DispatchOutcome {
    /// Dispatched; entry fields were filled in.
    Ok,
    /// Blocked popping this queue.
    QueueEmpty(Queue),
    /// Blocked on an older store with unavailable data.
    MemDep,
}

/// One out-of-order processor.
#[derive(Debug, Clone)]
pub struct OooCore {
    /// Human-readable name ("superscalar", "CP", "AP").
    pub name: &'static str,
    cfg: CoreConfig,
    prog: Program,
    /// Architectural + speculative register file (functional execution is
    /// in-order at dispatch, so this is always program-order correct).
    pub regs: RegFile,
    predictor: Predictor,
    fu: FuPool,
    ruu: Ruu,
    lsq: Lsq,
    ifq: VecDeque<Fetched>,
    fetch_pc: u32,
    fetch_halted: bool,
    frontend_ready_at: u64,
    /// Unresolved mispredicted branch: `(seq, correct_next_pc)`.
    mispredict_pending: Option<(u64, u32)>,
    /// Set once `halt` commits.
    pub finished: bool,
    now: u64,
    stats: CoreStats,
    /// Queue that stalled dispatch last cycle (for LoD edge detection).
    stalled_on: Option<Queue>,
    /// Optional Chen-Baer stride prefetcher on demand loads.
    rpt: Option<StridePrefetcher>,
    /// Ready-list scheduling: last in-flight producer of each register
    /// (O(1) rename lookup; the scan scheduler derives this from the RUU).
    rename: [Option<u64>; RENAME_SLOTS],
    /// Ready-list scheduling: `Waiting` entries whose operands are all
    /// available, in age order (`BTreeSet` iterates ascending = oldest
    /// first, matching the scan scheduler's issue order).
    ready: BTreeSet<u64>,
    /// Ready-list scheduling: issued entries keyed by completion time —
    /// `(complete_at, seq)` min-heap. Harvest pops while the top is due;
    /// `next_event` reads the top instead of re-walking the RUU.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Sampled simulation: fetch is paused while the pipeline drains
    /// ahead of a warm phase.
    fetch_paused: bool,
    /// Sampled simulation: the core is in the functional warm phase
    /// (pipeline idealised, architectural state and caches kept live).
    warm: bool,
    /// Resume pc for the warm phase / the detailed phase after it.
    warm_pc: u32,
}

impl OooCore {
    /// Creates a core running `prog`.
    pub fn new(name: &'static str, cfg: CoreConfig, prog: Program) -> OooCore {
        cfg.validate();
        OooCore {
            name,
            predictor: Predictor::new(cfg.predictor_kind, cfg.predictor_entries),
            fu: FuPool::new(&cfg),
            ruu: Ruu::new(cfg.ruu_size as usize),
            lsq: Lsq::new(cfg.lsq_size.max(1) as usize),
            ifq: VecDeque::with_capacity(cfg.ifq_size as usize),
            fetch_pc: 0,
            fetch_halted: false,
            frontend_ready_at: 0,
            mispredict_pending: None,
            finished: false,
            now: 0,
            stats: CoreStats::default(),
            stalled_on: None,
            rpt: cfg.hw_prefetcher.map(StridePrefetcher::new),
            rename: [None; RENAME_SLOTS],
            ready: BTreeSet::new(),
            completions: BinaryHeap::new(),
            fetch_paused: false,
            warm: false,
            warm_pc: 0,
            regs: RegFile::new(),
            cfg,
            prog,
        }
    }

    /// Stride-prefetcher statistics, when one is attached.
    pub fn rpt_stats(&self) -> Option<hidisc_mem::prefetcher::RptStats> {
        self.rpt.as_ref().map(|p| *p.stats())
    }

    /// The program this core executes.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Branch-predictor statistics `(predictions, mispredictions)`.
    pub fn predictor_stats(&self) -> (u64, u64) {
        self.predictor.stats()
    }

    /// Sets an integer register before simulation starts (workload
    /// parameters).
    pub fn set_reg(&mut self, r: hidisc_isa::IntReg, v: i64) {
        self.regs.set_i(r, v);
    }

    /// True when the core has committed its `halt` and drained.
    pub fn is_done(&self) -> bool {
        self.finished
    }

    /// Current fetch pc (front-end position, for diagnostics).
    pub fn fetch_pc(&self) -> u32 {
        self.fetch_pc
    }

    /// The earliest future cycle (strictly after `now`) at which this
    /// core's behaviour can change *on its own* — i.e. without any shared
    /// resource (queue, MSHR) changing underneath it. These are the
    /// timestamps the pipeline compares against the clock:
    ///
    /// - completion times of issued instructions (which also gate
    ///   mispredict resolution and commit), and
    /// - the front-end refill time after a redirect.
    ///
    /// Returns `None` when the core is finished or holds no pending
    /// timestamp — it is then purely queue- or memory-blocked and can only
    /// be woken by another component's event.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.finished {
            return None;
        }
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now && next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        match self.cfg.scheduler {
            Scheduler::ReadyList => {
                // The heap top is the earliest completion. After a harvest
                // at cycle `c` every heap entry has `complete_at > c`, so
                // for the usual query (`now >= c`, the machine asking after
                // stepping) the top alone decides; fall back to a full heap
                // walk when the top is already due.
                if let Some(&Reverse((t, _))) = self.completions.peek() {
                    if t > now {
                        consider(t);
                    } else {
                        for &Reverse((t, _)) in self.completions.iter() {
                            consider(t);
                        }
                    }
                }
            }
            Scheduler::Scan => {
                for e in self.ruu.iter() {
                    if e.state == EntryState::Issued {
                        consider(e.complete_at);
                    }
                }
            }
        }
        consider(self.frontend_ready_at);
        next
    }

    /// How far ahead of the machine clock this core's issue stage
    /// timestamps its memory accesses (the address-generation latency):
    /// `access(addr, kind, now + agen)`. A retried access therefore stops
    /// being rejected `agen` cycles *before* the blocking MSHR's
    /// `ready_at`, and the fast-forward wake-up must lead the memory event
    /// by this amount.
    pub fn access_lead(&self) -> u64 {
        self.cfg.lat.agen as u64
    }

    /// Structural-progress fingerprint: two equal tokens on consecutive
    /// cycles mean the second cycle changed nothing but pure-stall
    /// statistics, so the machine may fast-forward identical cycles (see
    /// `hidisc::Machine`). Counters that move on no-progress cycles
    /// (`cycles`, stall/retry counters) are deliberately excluded.
    pub fn progress_token(&self) -> u64 {
        use crate::queues::token_mix as mix;
        let mut h = mix(0, self.stats.committed);
        h = mix(h, self.stats.dispatched);
        h = mix(h, self.finished as u64);
        h = mix(h, self.fetch_halted as u64);
        h = mix(h, self.fetch_pc as u64);
        h = mix(h, self.ifq.len() as u64);
        h = mix(h, self.frontend_ready_at);
        h = mix(h, self.mispredict_pending.map_or(0, |(seq, _)| seq + 1));
        h = mix(h, self.stalled_on.map_or(0, |q| q as u64 + 1));
        // Aggregate counts instead of per-entry hashes: this runs on the
        // per-cycle hot path. Counts are exact here because entry flags
        // only move forward (Waiting → Issued → Done; data_known and
        // performed are only ever set), so on a cycle with no dispatch or
        // commit (caught by the counters above) any transition strictly
        // changes at least one count. The RUU and LSQ maintain them across
        // state transitions, so no walk is needed.
        let (waiting, done) = self.ruu.state_counts();
        h = mix(h, self.ruu.len() as u64);
        h = mix(h, waiting as u64);
        h = mix(h, done as u64);
        let (data_known, performed) = self.lsq.flag_counts();
        h = mix(h, self.lsq.len() as u64);
        h = mix(h, data_known as u64);
        h = mix(h, performed as u64);
        h
    }

    /// Applies the statistics of `k` skipped idle cycles, `delta` being
    /// the per-cycle delta measured on the last stepped (idle) cycle.
    pub fn add_idle_stats(&mut self, delta: &CoreStats, k: u64) {
        self.stats.add_idle_scaled(delta, k);
    }

    /// Advances the core by one cycle.
    pub fn step(&mut self, now: u64, ctx: &mut CoreCtx<'_>) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.now = now;
        self.stats.cycles += 1;
        self.fu.begin_cycle();
        self.harvest(now, ctx.trace);
        self.resolve_mispredict(now);
        self.commit(ctx)?;
        self.pump_store_data(ctx);
        self.issue(ctx);
        self.dispatch(ctx)?;
        self.fetch(ctx.trace);
        Ok(())
    }

    // ------------------------------------------------------------- harvest

    /// Promotes issued instructions whose results are due to `Done` and, in
    /// ready-list mode, wakes their consumers.
    fn harvest(&mut self, now: u64, trace: &mut Telemetry) {
        match self.cfg.scheduler {
            Scheduler::Scan => {
                if trace.on(Category::Pipeline) {
                    let due: Vec<(u64, u32)> = self
                        .ruu
                        .iter()
                        .filter(|e| e.state == EntryState::Issued && e.complete_at <= now)
                        .map(|e| (e.seq, e.pc))
                        .collect();
                    for (seq, pc) in due {
                        trace.emit(EventData::Complete { seq, pc });
                    }
                }
                self.ruu.harvest_completions(now)
            }
            Scheduler::ReadyList => {
                while let Some(&Reverse((t, seq))) = self.completions.peek() {
                    if t > now {
                        break;
                    }
                    self.completions.pop();
                    if trace.on(Category::Pipeline) {
                        let pc = self.ruu.get(seq).map_or(0, |e| e.pc);
                        trace.emit(EventData::Complete { seq, pc });
                    }
                    // Consumers registered a link per unavailable operand
                    // at dispatch; the last producer to complete tips
                    // `pending_deps` to zero and the consumer becomes
                    // ready. A consumer is younger than its producer and
                    // commit is in-order, so it is still in the window.
                    for c in self.ruu.mark_done(seq) {
                        let e = self.ruu.get_mut(c).expect("consumer in window");
                        e.pending_deps -= 1;
                        if e.pending_deps == 0 {
                            self.ready.insert(c);
                        }
                    }
                }
            }
        }
    }

    // --------------------------------------------------------------- fetch

    fn fetch(&mut self, trace: &mut Telemetry) {
        if self.fetch_halted || self.finished || self.fetch_paused {
            return;
        }
        if self.mispredict_pending.is_some() || self.now < self.frontend_ready_at {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.ifq.len() >= self.cfg.ifq_size as usize {
                break;
            }
            let Some(&instr) = self.prog.get(self.fetch_pc) else {
                self.fetch_halted = true;
                break;
            };
            let pc = self.fetch_pc;
            let mut predicted_taken = false;
            match instr {
                Instr::Branch { target, .. } | Instr::CBranch { target } => {
                    predicted_taken = self.predictor.predict(pc);
                    self.fetch_pc = if predicted_taken { target } else { pc + 1 };
                }
                Instr::Jump { target } => {
                    self.fetch_pc = target;
                }
                Instr::Halt => {
                    self.fetch_halted = true;
                }
                _ => {
                    self.fetch_pc = pc + 1;
                }
            }
            self.ifq.push_back(Fetched {
                pc,
                instr,
                predicted_taken,
            });
            if trace.on(Category::Pipeline) {
                trace.emit(EventData::Fetch { pc });
            }
            if matches!(instr, Instr::Halt) {
                break;
            }
        }
    }

    // ------------------------------------------------------------ dispatch

    fn dispatch(&mut self, ctx: &mut CoreCtx<'_>) -> Result<()> {
        let mut stalled: Option<Queue> = None;
        let mut mem_dep = false;
        for _ in 0..self.cfg.dispatch_width {
            let Some(&f) = self.ifq.front() else { break };
            if self.ruu.is_full() {
                self.stats.ruu_full_cycles += 1;
                break;
            }
            if f.instr.is_mem() && self.lsq.is_full() {
                self.stats.lsq_full_cycles += 1;
                break;
            }
            if f.instr.is_mem() && !self.fu.exists(FuClass::Mem) {
                return Err(IsaError::Exec {
                    pc: f.pc,
                    msg: format!(
                        "memory instruction on core {} with no memory ports",
                        self.name
                    ),
                });
            }
            if f.instr.is_fp() && !self.fu.exists(f.instr.fu_class()) {
                return Err(IsaError::Exec {
                    pc: f.pc,
                    msg: format!("fp instruction on core {} with no fp units", self.name),
                });
            }

            match self.dispatch_one(f, ctx)? {
                DispatchOutcome::Ok => {
                    self.ifq.pop_front();
                    self.stats.dispatched += 1;
                    if matches!(f.instr, Instr::Halt) {
                        break;
                    }
                }
                DispatchOutcome::QueueEmpty(q) => {
                    self.stats.stall_dispatch(q);
                    stalled = Some(q);
                    break;
                }
                DispatchOutcome::MemDep => {
                    self.stats.mem_dep_stalls += 1;
                    if ctx.trace.on(Category::Pipeline) {
                        ctx.trace.emit(EventData::LsqConflict { pc: f.pc });
                    }
                    mem_dep = true;
                    break;
                }
            }
        }
        // Loss-of-decoupling event = a fresh episode of blocking on a queue
        // pop (or on cross-stream store data).
        let blocking = stalled.or(if mem_dep { Some(Queue::Sdq) } else { None });
        if blocking.is_some() && self.stalled_on.is_none() {
            self.stats.lod_events += 1;
        }
        self.stalled_on = blocking;
        Ok(())
    }

    /// Dispatches one instruction: functional execution, RUU/LSQ
    /// allocation, dependence capture, branch handling.
    fn dispatch_one(&mut self, f: Fetched, ctx: &mut CoreCtx<'_>) -> Result<DispatchOutcome> {
        let Fetched {
            pc,
            instr,
            predicted_taken,
        } = f;
        let mut payload: u64 = 0;
        let mut lsq_entry: Option<LsqEntry> = None;
        let mut branch_actual = false;
        let mut correct_next = pc + 1;

        // ---- functional execution (program order) ----
        match instr {
            Instr::IntOp { op, dst, a, b } => {
                let bv = match b {
                    Src::Reg(r) => self.regs.get_i(r),
                    Src::Imm(v) => v,
                };
                let v = op.eval(self.regs.get_i(a), bv);
                self.regs.set_i(dst, v);
            }
            Instr::Li { dst, imm } => self.regs.set_i(dst, imm),
            Instr::FpBin { op, dst, a, b } => {
                let v = op.eval(self.regs.get_f(a), self.regs.get_f(b));
                self.regs.set_f(dst, v);
            }
            Instr::FpUn { op, dst, a } => {
                let v = op.eval(self.regs.get_f(a));
                self.regs.set_f(dst, v);
            }
            Instr::FpCmp { op, dst, a, b } => {
                let v = op.eval(self.regs.get_f(a), self.regs.get_f(b)) as i64;
                self.regs.set_i(dst, v);
            }
            Instr::CvtIf { dst, src } => {
                let v = self.regs.get_i(src) as f64;
                self.regs.set_f(dst, v);
            }
            Instr::CvtFi { dst, src } => {
                let v = f64_to_i64(self.regs.get_f(src));
                self.regs.set_i(dst, v);
            }
            _ => {}
        }

        // Memory & queue instructions need more careful handling; do them
        // in a second match so the first can stay simple.
        match instr {
            Instr::Load {
                dst,
                base,
                off,
                width,
                signed,
            } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                let v = match self.lsq.check_load(u64::MAX, addr, width) {
                    LoadCheck::Clear => ctx.data.load(addr, width, signed)?,
                    LoadCheck::Forward(raw) => {
                        self.stats.forwarded_loads += 1;
                        extend(raw, width, signed)
                    }
                    LoadCheck::Blocked(_) => return Ok(DispatchOutcome::MemDep),
                };
                self.regs.set_i(dst, v);
                lsq_entry = Some(LsqEntry {
                    seq: 0, // patched below
                    is_store: false,
                    addr,
                    width,
                    value: v,
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::LoadF { dst, base, off } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                let v = match self.lsq.check_load(u64::MAX, addr, Width::D) {
                    LoadCheck::Clear => ctx.data.read_f64(addr)?,
                    LoadCheck::Forward(raw) => {
                        self.stats.forwarded_loads += 1;
                        f64::from_bits(raw as u64)
                    }
                    LoadCheck::Blocked(_) => return Ok(DispatchOutcome::MemDep),
                };
                self.regs.set_f(dst, v);
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: false,
                    addr,
                    width: Width::D,
                    value: v.to_bits() as i64,
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::LoadQ {
                q: _,
                base,
                off,
                width,
                signed,
            } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                let v = match self.lsq.check_load(u64::MAX, addr, width) {
                    LoadCheck::Clear => ctx.data.load(addr, width, signed)?,
                    LoadCheck::Forward(raw) => {
                        self.stats.forwarded_loads += 1;
                        extend(raw, width, signed)
                    }
                    LoadCheck::Blocked(_) => return Ok(DispatchOutcome::MemDep),
                };
                payload = v as u64;
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: false,
                    addr,
                    width,
                    value: v,
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::Store {
                src,
                base,
                off,
                width,
            } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: true,
                    addr,
                    width,
                    value: self.regs.get_i(src),
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::StoreF { src, base, off } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: true,
                    addr,
                    width: Width::D,
                    value: self.regs.get_f(src).to_bits() as i64,
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::StoreQ {
                q,
                base,
                off,
                width,
            } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: true,
                    addr,
                    width,
                    value: 0,
                    data_known: false,
                    data_queue: Some(q),
                    performed: false,
                });
            }
            Instr::Prefetch { base, off } => {
                let addr = (self.regs.get_i(base) as u64).wrapping_add_signed(off as i64);
                lsq_entry = Some(LsqEntry {
                    seq: 0,
                    is_store: false,
                    addr,
                    width: Width::D,
                    value: 0,
                    data_known: true,
                    data_queue: None,
                    performed: false,
                });
            }
            Instr::SendI { q: _, src } => payload = self.regs.get_i(src) as u64,
            Instr::SendF { q: _, src } => payload = self.regs.get_f(src).to_bits(),
            Instr::RecvI { q, dst } => match ctx.pop_queue(q) {
                Some(v) => self.regs.set_i(dst, v as i64),
                None => return Ok(DispatchOutcome::QueueEmpty(q)),
            },
            Instr::RecvF { q, dst } => match ctx.pop_queue(q) {
                Some(v) => self.regs.set_f(dst, f64::from_bits(v)),
                None => return Ok(DispatchOutcome::QueueEmpty(q)),
            },
            Instr::GetScq => {
                // Never blocks: an empty SCQ just means the CMP is behind.
                let _ = ctx.pop_queue(Queue::Scq);
            }
            Instr::Branch { cond, a, b, target } => {
                branch_actual = cond.eval(self.regs.get_i(a), self.regs.get_i(b));
                correct_next = if branch_actual { target } else { pc + 1 };
                payload = branch_actual as u64;
            }
            Instr::CBranch { target } => match ctx.pop_queue(Queue::Cq) {
                Some(v) => {
                    branch_actual = v != 0;
                    correct_next = if branch_actual { target } else { pc + 1 };
                }
                None => return Ok(DispatchOutcome::QueueEmpty(Queue::Cq)),
            },
            Instr::Jump { target } => {
                correct_next = target;
                payload = 1;
            }
            _ => {}
        }

        // ---- allocate the RUU entry and capture timing dependences ----
        let deps = {
            let mut deps = [None; 3];
            for (i, u) in instr.uses().into_iter().enumerate() {
                if let Some(r) = u {
                    deps[i] = self.last_producer(r);
                }
            }
            deps
        };
        let seq = self.ruu.push(pc, instr);
        {
            let e = self.ruu.get_mut(seq).expect("just pushed");
            e.deps = deps;
            e.payload = payload;
            e.predicted_taken = predicted_taken;
            e.actual_taken = branch_actual;
            e.correct_next = correct_next;
        }
        if let Some(mut le) = lsq_entry {
            le.seq = seq;
            self.lsq.push(le);
        }
        self.set_producer(instr, seq);
        if ctx.trace.on(Category::Pipeline) {
            ctx.trace.emit(EventData::Dispatch { seq, pc });
        }

        // Wakeup bookkeeping: one link per unavailable operand (a producer
        // in `deps` is unavailable by construction of `last_producer`). A
        // duplicated operand registers — and later decrements — twice,
        // which balances.
        if self.cfg.scheduler == Scheduler::ReadyList {
            let mut pending = 0u8;
            for &d in deps.iter().flatten() {
                self.ruu
                    .get_mut(d)
                    .expect("producer in window")
                    .consumers
                    .push(seq);
                pending += 1;
            }
            if pending == 0 {
                self.ready.insert(seq);
            } else {
                self.ruu.get_mut(seq).unwrap().pending_deps = pending;
            }
        }

        // ---- branch outcome handling ----
        match instr {
            Instr::Branch { .. } => {
                self.predictor.update(pc, branch_actual, predicted_taken);
                if branch_actual != predicted_taken {
                    self.stats.mispredicts += 1;
                    if ctx.trace.on(Category::Pipeline) {
                        ctx.trace.emit(EventData::Mispredict { pc });
                    }
                    self.ifq.clear();
                    self.ruu.get_mut(seq).unwrap().mispredicted = true;
                    self.mispredict_pending = Some((seq, correct_next));
                }
            }
            Instr::CBranch { .. } => {
                self.predictor.update(pc, branch_actual, predicted_taken);
                if branch_actual != predicted_taken {
                    self.stats.cbranch_redirects += 1;
                    if ctx.trace.on(Category::Pipeline) {
                        ctx.trace.emit(EventData::Mispredict { pc });
                    }
                    self.ifq.clear();
                    // The pop *is* the resolution: redirect immediately,
                    // paying only the front-end refill penalty.
                    self.fetch_pc = correct_next;
                    self.fetch_halted = false;
                    self.frontend_ready_at = self.now + self.cfg.frontend_penalty as u64;
                }
            }
            _ => {}
        }
        Ok(DispatchOutcome::Ok)
    }

    /// Last in-flight producer of a register whose result is not yet
    /// available, or `None` when the operand is ready. Ready-list mode
    /// keeps a rename table (O(1)); scan mode derives it from the RUU,
    /// oldest to youngest — the youngest def decides. The two agree: the
    /// table records every def in dispatch order, a recorded producer that
    /// has committed or completed fails the `producer_done` check the same
    /// way the scan's availability branch clears `newest`.
    fn last_producer(&self, r: RegRef) -> Option<u64> {
        match self.cfg.scheduler {
            Scheduler::ReadyList => {
                self.rename[rename_slot(r)].filter(|&seq| !self.ruu.producer_done(seq, self.now))
            }
            Scheduler::Scan => {
                let mut newest = None;
                for e in self.ruu.iter() {
                    if e.state != EntryState::Done || e.complete_at > self.now {
                        if e.instr.def() == Some(r) {
                            newest = Some(e.seq);
                        }
                    } else if e.instr.def() == Some(r) {
                        // Completed but not yet committed: result available.
                        newest = None;
                    }
                }
                newest
            }
        }
    }

    /// Records `seq` as the newest producer of its destination register.
    fn set_producer(&mut self, instr: Instr, seq: u64) {
        if let Some(r) = instr.def() {
            self.rename[rename_slot(r)] = Some(seq);
        }
    }

    // --------------------------------------------------------------- issue

    fn issue(&mut self, ctx: &mut CoreCtx<'_>) {
        match self.cfg.scheduler {
            Scheduler::ReadyList => self.issue_ready(ctx),
            Scheduler::Scan => self.issue_scan(ctx),
        }
    }

    /// Ready-list issue: walk the ready set in age order (the same order
    /// the scan visits issuable entries). Entries that fail a structural
    /// check (functional unit, MSHR, blocking store) stay in the set and
    /// retry; issued entries move to the completion heap.
    fn issue_ready(&mut self, ctx: &mut CoreCtx<'_>) {
        let mut budget = self.cfg.issue_width;
        let mut cursor = 0u64;
        while budget > 0 {
            let Some(&seq) = self.ready.range(cursor..).next() else {
                break;
            };
            cursor = seq + 1;
            if let Some(complete_at) = self.try_issue(seq, ctx) {
                self.ready.remove(&seq);
                self.ruu.mark_issued(seq, complete_at);
                self.completions.push(Reverse((complete_at, seq)));
                if ctx.trace.on(Category::Pipeline) {
                    let pc = self.ruu.get(seq).map_or(0, |e| e.pc);
                    ctx.trace.emit(EventData::Issue {
                        seq,
                        pc,
                        complete_at,
                    });
                }
                budget -= 1;
            }
        }
    }

    /// Scan issue (the seed implementation): walk the whole window for
    /// `Waiting` entries and check operand availability per candidate.
    fn issue_scan(&mut self, ctx: &mut CoreCtx<'_>) {
        let now = self.now;
        let mut budget = self.cfg.issue_width;
        let candidates: Vec<u64> = self
            .ruu
            .iter()
            .filter(|e| e.state == EntryState::Waiting)
            .map(|e| e.seq)
            .collect();
        for seq in candidates {
            if budget == 0 {
                break;
            }
            let deps = self.ruu.get(seq).unwrap().deps;
            if !deps
                .iter()
                .flatten()
                .all(|&d| self.ruu.producer_done(d, now))
            {
                continue;
            }
            if let Some(complete_at) = self.try_issue(seq, ctx) {
                self.ruu.mark_issued(seq, complete_at);
                if ctx.trace.on(Category::Pipeline) {
                    let pc = self.ruu.get(seq).map_or(0, |e| e.pc);
                    ctx.trace.emit(EventData::Issue {
                        seq,
                        pc,
                        complete_at,
                    });
                }
                budget -= 1;
            }
        }
    }

    /// Attempts to issue one operand-ready instruction: acquires a
    /// functional unit and computes the completion time, with all the
    /// memory-system side effects of the attempt (MSHR allocation, retry
    /// and drop counters). Returns `None` — leaving the entry `Waiting` —
    /// when a structural hazard blocks it this cycle. Shared by both
    /// schedulers so their issue decisions are identical by construction.
    fn try_issue(&mut self, seq: u64, ctx: &mut CoreCtx<'_>) -> Option<u64> {
        let now = self.now;
        let (instr, _pc) = {
            let e = self.ruu.get(seq).unwrap();
            (e.instr, e.pc)
        };

        let complete_at = if instr.is_load() || matches!(instr, Instr::Prefetch { .. }) {
            let (addr, width) = {
                let le = self.lsq.get(seq).expect("load has LSQ entry");
                (le.addr, le.width)
            };
            let agen = self.cfg.lat.agen as u64;
            if matches!(instr, Instr::Prefetch { .. }) {
                if !self.fu.try_acquire(FuClass::Mem) {
                    return None;
                }
                match ctx
                    .mem_sys
                    .access_traced(addr, AccessKind::Prefetch, now + agen, ctx.trace)
                {
                    Some(r) => {
                        // The prefetch instruction itself retires
                        // quickly; the fill continues in the MSHR.
                        let _ = r;
                        now + agen + 1
                    }
                    None => {
                        // Droppable: no MSHR, give up on this prefetch.
                        self.stats.dropped_prefetches += 1;
                        now + agen
                    }
                }
            } else {
                match self.lsq.check_load(seq, addr, width) {
                    LoadCheck::Blocked(_) => return None,
                    LoadCheck::Forward(_) => {
                        if !self.fu.try_acquire(FuClass::Mem) {
                            return None;
                        }
                        now + agen + 1
                    }
                    LoadCheck::Clear => {
                        if !self.fu.try_acquire(FuClass::Mem) {
                            return None;
                        }
                        match ctx.mem_sys.access_traced(
                            addr,
                            AccessKind::Load,
                            now + agen,
                            ctx.trace,
                        ) {
                            Some(r) => {
                                // Related-work comparator: a hardware
                                // stride prefetcher observing demand
                                // loads (droppable fills).
                                if let Some(rpt) = self.rpt.as_mut() {
                                    if let Some(pf) = rpt.observe(_pc, addr) {
                                        let _ = ctx.mem_sys.access(
                                            pf,
                                            AccessKind::Prefetch,
                                            now + agen,
                                        );
                                    }
                                }
                                r.complete_at
                            }
                            None => {
                                self.stats.mshr_retries += 1;
                                return None;
                            }
                        }
                    }
                }
            }
        } else if instr.is_store() {
            // Address generation only; the cache access happens at
            // commit through the write buffer.
            if !self.fu.try_acquire(FuClass::IntAlu) {
                return None;
            }
            now + self.cfg.lat.agen as u64
        } else {
            let class = instr.fu_class();
            if !self.fu.try_acquire(class) {
                return None;
            }
            now + latency_of(&instr, &self.cfg.lat) as u64
        };

        Some(complete_at)
    }

    // ----------------------------------------------------------- mispredict

    fn resolve_mispredict(&mut self, now: u64) {
        if let Some((seq, next)) = self.mispredict_pending {
            if self.ruu.producer_done(seq, now) {
                self.fetch_pc = next;
                self.fetch_halted = false;
                self.frontend_ready_at = now + self.cfg.frontend_penalty as u64;
                self.mispredict_pending = None;
            }
        }
    }

    // ---------------------------------------------------------------- pump

    fn pump_store_data(&mut self, ctx: &mut CoreCtx<'_>) {
        let max = self.cfg.mem_ports.max(1) as usize;
        self.lsq.pump_store_data(max, |q| ctx.pop_queue(q));
    }

    // -------------------------------------------------------------- commit

    fn commit(&mut self, ctx: &mut CoreCtx<'_>) -> Result<()> {
        for _ in 0..self.cfg.commit_width {
            let Some(front) = self.ruu.front() else { break };
            if front.state != EntryState::Done || front.complete_at > self.now {
                break;
            }
            let seq = front.seq;
            let pc = front.pc;
            let instr = front.instr;
            let payload = front.payload;
            let actual_taken = front.actual_taken;
            let annot = *self.prog.annot(pc);

            // Stores: need data, then drain through the write buffer.
            if instr.is_store() {
                let (addr, width, value, data_known, data_queue) = {
                    let le = self.lsq.get(seq).expect("store has LSQ entry");
                    (le.addr, le.width, le.value, le.data_known, le.data_queue)
                };
                if !data_known {
                    self.stats.stall_commit(data_queue.unwrap_or(Queue::Sdq));
                    break;
                }
                match ctx
                    .mem_sys
                    .access_traced(addr, AccessKind::Store, self.now, ctx.trace)
                {
                    Some(_) => {
                        ctx.data.store(addr, width, value)?;
                        // Routed through the LSQ so its flag counts (used
                        // by the progress token) stay exact.
                        self.lsq.mark_performed(seq);
                    }
                    None => break, // MSHR full: retry next cycle
                }
            }

            // Queue pushes (all-or-nothing per entry).
            if let Some(q) = instr.queue_push() {
                if !ctx.push_queue(q, payload) {
                    self.stats.stall_commit(q);
                    break;
                }
            }
            if annot.push_cq
                && instr.is_control()
                && !ctx.push_queue(Queue::Cq, actual_taken as u64)
            {
                self.stats.stall_commit(Queue::Cq);
                break;
            }

            // Slip control: the compiler's GET_SCQ (never blocks).
            if annot.scq_get {
                let _ = ctx.pop_queue(Queue::Scq);
            }

            // CMAS trigger fork.
            if let Some(cmas) = annot.trigger {
                ctx.triggers.push(TriggerFork {
                    cmas,
                    regs: self.regs.clone(),
                });
                self.stats.triggers_fired += 1;
            }

            if instr.is_mem() {
                self.stats.committed_mem += 1;
                self.lsq.remove(seq);
            }
            if matches!(instr, Instr::Halt) {
                self.finished = true;
            }
            self.stats.committed += 1;
            if ctx.trace.on(Category::Pipeline) {
                ctx.trace.emit(EventData::Commit { seq, pc });
            }
            self.ruu.pop_front();
            if self.finished {
                break;
            }
        }
        Ok(())
    }
}

// ------------------------------------------------------------ warm phase
//
// Sampled (SMARTS-style) simulation alternates detailed windows with
// functional warm phases. Entering a warm phase is a three-step protocol
// driven by the machine: pause fetch, keep stepping detailed cycles until
// the pipeline drains, then switch to `warm_step` — in-order functional
// execution that keeps the architectural state, queues, predictor and
// cache/prefetcher models live while idealising the pipeline.

/// Queue adapter for the warm phase: the real bounded [`QueueFile`],
/// with the architectural exception that an SCQ pop never blocks (an
/// empty SCQ just means the CMP is behind — same as detailed dispatch).
struct WarmQueues<'a> {
    queues: &'a mut QueueFile,
}

impl QueueEnv for WarmQueues<'_> {
    fn pop(&mut self, q: Queue) -> Result<PopResult> {
        match self.queues.try_pop(q) {
            Some(v) => Ok(PopResult::Value(v)),
            None if q == Queue::Scq => Ok(PopResult::Value(0)),
            None => Ok(PopResult::Blocked),
        }
    }
    fn push(&mut self, q: Queue, v: u64) -> Result<PushResult> {
        if self.queues.try_push(q, v) {
            Ok(PushResult::Done)
        } else {
            Ok(PushResult::Blocked)
        }
    }
}

impl OooCore {
    /// Pauses or resumes instruction fetch (sampled-mode drain control).
    pub fn set_fetch_paused(&mut self, paused: bool) {
        self.fetch_paused = paused;
    }

    /// True while the core is in the functional warm phase.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// True when nothing is in flight: every dispatched instruction has
    /// committed and no mispredict redirect is pending. (The fetch queue
    /// may still hold undispatched instructions — they are the resume
    /// point.)
    pub fn pipeline_drained(&self) -> bool {
        self.ruu.is_empty() && self.lsq.is_empty() && self.mispredict_pending.is_none()
    }

    /// Switches a drained core into the warm phase. Returns true once the
    /// core is warm (idempotent); false while the pipeline still holds
    /// in-flight instructions. Call with fetch paused.
    pub fn try_enter_warm(&mut self) -> bool {
        if self.warm || self.finished {
            return true;
        }
        if !self.pipeline_drained() {
            return false;
        }
        // The architectural frontier: the oldest undispatched instruction,
        // or the fetch pc when the fetch queue is empty.
        self.warm_pc = self.ifq.front().map_or(self.fetch_pc, |f| f.pc);
        self.ifq.clear();
        self.warm = true;
        true
    }

    /// Leaves the warm phase: fetch resumes at the warm frontier.
    pub fn exit_warm(&mut self) {
        if !self.warm {
            return;
        }
        self.warm = false;
        self.fetch_pc = self.warm_pc;
        self.fetch_halted = false;
        self.fetch_paused = false;
    }

    /// One warm cycle: executes up to `dispatch_width` instructions
    /// functionally, in order. Queue pushes and pops go through the real
    /// bounded queues (a block ends the cycle's burst), loads and stores
    /// update both the architectural memory and the cache/MSHR timing
    /// model, the branch predictor trains, the stride prefetcher observes,
    /// and trigger annotations fork CMP threads — so a detailed window
    /// resumed after the warm phase sees warmed microarchitectural state.
    pub fn warm_step(&mut self, now: u64, ctx: &mut CoreCtx<'_>) -> Result<()> {
        debug_assert!(self.warm, "warm_step on a core not in warm mode");
        if self.finished {
            return Ok(());
        }
        self.now = now;
        self.stats.cycles += 1;
        let mut events: Vec<MemEvent> = Vec::new();
        // Commit several dispatch-widths of work per iteration: warm-phase
        // cycles carry no timing meaning, so a wider burst only amortises
        // the per-iteration machine overhead (queue scans, CMP dispatch,
        // watchdog). Inter-core interleaving stays bounded by the
        // architectural queues — a blocked push/pop ends the burst and
        // hands the iteration to the other core.
        let burst = 4 * self.cfg.dispatch_width;
        for _ in 0..burst {
            if self.finished {
                break;
            }
            let pc = self.warm_pc;
            let mut env = WarmQueues { queues: ctx.queues };
            let step = step_at(
                &self.prog,
                pc,
                &mut self.regs,
                ctx.data,
                &mut env,
                &mut |e| events.push(e),
            )?;
            let next = match step {
                Step::Blocked => break,
                Step::Next(n) => Some(n),
                Step::Halt => None,
            };
            // Post-step bookkeeping mirroring detailed dispatch/commit.
            let instr = *self.prog.get(pc).expect("step_at validated pc");
            let annot = *self.prog.annot(pc);
            if let (Some(n), Instr::Branch { .. } | Instr::CBranch { .. }) = (next, instr) {
                let taken = n != pc + 1;
                let predicted = self.predictor.predict(pc);
                self.predictor.update(pc, taken, predicted);
            }
            if annot.scq_get {
                let _ = ctx.queues.try_pop(Queue::Scq);
            }
            if let Some(cmas) = annot.trigger {
                ctx.triggers.push(TriggerFork {
                    cmas,
                    regs: self.regs.clone(),
                });
                self.stats.triggers_fired += 1;
            }
            self.stats.committed += 1;
            self.stats.dispatched += 1;
            if instr.is_mem() {
                self.stats.committed_mem += 1;
            }
            match next {
                Some(n) => self.warm_pc = n,
                None => self.finished = true,
            }
        }
        // Replay the burst's memory traffic into the cache model
        // functionally (latency-free, no MSHR occupancy) so tags, LRU and
        // the prefetcher stay warm. The timed path would reject most of
        // this traffic — warm mode commits many instructions per cycle, so
        // the MSHR file fills instantly and the caches would silently stop
        // warming, biasing the detailed windows that follow.
        for ev in events {
            let kind = match ev.kind {
                MemKind::Load => AccessKind::Load,
                MemKind::Store => AccessKind::Store,
                MemKind::Prefetch => AccessKind::Prefetch,
            };
            ctx.mem_sys.warm_access(ev.addr, kind);
            if ev.kind == MemKind::Load {
                if let Some(rpt) = self.rpt.as_mut() {
                    if let Some(pf) = rpt.observe(ev.pc, ev.addr) {
                        ctx.mem_sys.warm_access(pf, AccessKind::Prefetch);
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------- checkpointing

impl OooCore {
    /// Serialises the core's dynamic state. Static state (program,
    /// configuration, name) is *not* stored: the checkpoint loader rebuilds
    /// the machine through the normal construction path and overwrites the
    /// dynamic state in place, with the checkpoint header pinning the
    /// config hash. Functional units hold no cross-cycle state
    /// (`begin_cycle` resets them), so they are skipped.
    pub fn save_state(&self, e: &mut Enc) {
        self.regs.save_state(e);
        self.predictor.save_state(e);
        self.ruu.save_state(e);
        self.lsq.save_state(e);
        e.usize(self.ifq.len());
        for f in &self.ifq {
            e.u32(f.pc);
            e.bool(f.predicted_taken);
        }
        e.u32(self.fetch_pc);
        e.bool(self.fetch_halted);
        e.u64(self.frontend_ready_at);
        match self.mispredict_pending {
            None => e.bool(false),
            Some((seq, next)) => {
                e.bool(true);
                e.u64(seq);
                e.u32(next);
            }
        }
        e.bool(self.finished);
        e.u64(self.now);
        self.stats.save_state(e);
        e.u8(queue_opt_code(self.stalled_on));
        match &self.rpt {
            None => e.bool(false),
            Some(rpt) => {
                e.bool(true);
                rpt.save_state(e);
            }
        }
        for slot in &self.rename {
            match slot {
                None => e.bool(false),
                Some(seq) => {
                    e.bool(true);
                    e.u64(*seq);
                }
            }
        }
        e.usize(self.ready.len());
        for &seq in &self.ready {
            e.u64(seq);
        }
        // The completion heap serialises as a sorted vector so the bytes
        // are deterministic regardless of heap layout.
        let mut comps: Vec<(u64, u64)> = self.completions.iter().map(|&Reverse(p)| p).collect();
        comps.sort_unstable();
        e.usize(comps.len());
        for (t, seq) in comps {
            e.u64(t);
            e.u64(seq);
        }
        e.bool(self.fetch_paused);
        e.bool(self.warm);
        e.u32(self.warm_pc);
    }

    /// Restores the dynamic state written by
    /// [`save_state`](Self::save_state) into an identically configured
    /// core.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        self.regs.load_state(d)?;
        self.predictor.load_state(d)?;
        let prog = &self.prog;
        self.ruu.load_state(d, |pc| prog.get(pc).copied())?;
        self.lsq.load_state(d)?;
        let n = d.usize()?;
        self.ifq.clear();
        for _ in 0..n {
            let pc = d.u32()?;
            let predicted_taken = d.bool()?;
            let instr = *self.prog.get(pc).ok_or(WireError {
                pos: 0,
                what: "ifq pc out of program range",
            })?;
            self.ifq.push_back(Fetched {
                pc,
                instr,
                predicted_taken,
            });
        }
        self.fetch_pc = d.u32()?;
        self.fetch_halted = d.bool()?;
        self.frontend_ready_at = d.u64()?;
        self.mispredict_pending = if d.bool()? {
            Some((d.u64()?, d.u32()?))
        } else {
            None
        };
        self.finished = d.bool()?;
        self.now = d.u64()?;
        self.stats.load_state(d)?;
        self.stalled_on = queue_opt_from(d.u8()?)?;
        let has_rpt = d.bool()?;
        match (&mut self.rpt, has_rpt) {
            (Some(rpt), true) => rpt.load_state(d)?,
            (None, false) => {}
            _ => {
                return Err(WireError {
                    pos: 0,
                    what: "prefetcher presence mismatch",
                })
            }
        }
        for slot in self.rename.iter_mut() {
            *slot = if d.bool()? { Some(d.u64()?) } else { None };
        }
        let n = d.usize()?;
        self.ready.clear();
        for _ in 0..n {
            self.ready.insert(d.u64()?);
        }
        let n = d.usize()?;
        self.completions.clear();
        for _ in 0..n {
            let t = d.u64()?;
            let seq = d.u64()?;
            self.completions.push(Reverse((t, seq)));
        }
        self.fetch_paused = d.bool()?;
        self.warm = d.bool()?;
        self.warm_pc = d.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::QueueConfig;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::IntReg;
    use hidisc_mem::MemConfig;

    /// Runs a (sequential) program on a lone core; returns the core and
    /// cycles used.
    fn run(src: &str, init: &[(u8, i64)], mem_init: &[(u64, i64)]) -> (OooCore, Memory, u64) {
        let prog = assemble("t", src).unwrap();
        let mut core = OooCore::new("test", CoreConfig::paper_superscalar(), prog);
        for &(r, v) in init {
            core.set_reg(IntReg::new(r), v);
        }
        let mut mem = Memory::new();
        for &(a, v) in mem_init {
            mem.write_i64(a, v).unwrap();
        }
        let mut mem_sys = MemSystem::new(MemConfig::paper());
        let mut queues = QueueFile::new(QueueConfig::paper());
        let mut triggers = Vec::new();
        let mut tel = Telemetry::disabled();
        let mut now = 0;
        while !core.is_done() {
            let mut ctx = CoreCtx {
                mem_sys: &mut mem_sys,
                queues: &mut queues,
                data: &mut mem,
                triggers: &mut triggers,
                trace: &mut tel,
            };
            core.step(now, &mut ctx).unwrap();
            now += 1;
            assert!(now < 1_000_000, "runaway simulation");
        }
        (core, mem, now)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (core, _, cycles) = run(
            r"
            li r1, 5
            li r2, 7
            add r3, r1, r2
            mul r4, r3, r3
            halt
        ",
            &[],
            &[],
        );
        assert_eq!(core.regs.get_i(IntReg::new(3)), 12);
        assert_eq!(core.regs.get_i(IntReg::new(4)), 144);
        assert!(cycles > 4 && cycles < 40, "cycles = {cycles}");
        assert_eq!(core.stats().committed, 5);
    }

    #[test]
    fn loop_with_branches() {
        let (core, _, _) = run(
            r"
            li r1, 0
            li r2, 100
        loop:
            add r1, r1, r2
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[],
            &[],
        );
        assert_eq!(core.regs.get_i(IntReg::new(1)), 5050);
        // Exactly one final misprediction is typical for bimodal on a loop
        // exit; allow a couple for warmup.
        assert!(core.stats().mispredicts <= 3);
    }

    #[test]
    fn load_store_round_trip() {
        let (core, mem, _) = run(
            r"
            li r1, 0x1000
            ld r2, 0(r1)
            add r2, r2, 1
            sd r2, 8(r1)
            ld r3, 8(r1)
            halt
        ",
            &[],
            &[(0x1000, 41)],
        );
        assert_eq!(core.regs.get_i(IntReg::new(3)), 42);
        assert_eq!(mem.read_i64(0x1008).unwrap(), 42);
        assert_eq!(core.stats().forwarded_loads, 1);
    }

    #[test]
    fn cache_miss_costs_cycles() {
        // Two dependent loads from cold memory: latency must include two
        // memory round trips (~2 * 133).
        let (_, _, cycles) = run(
            r"
            li r1, 0x10000
            ld r2, 0(r1)
            add r3, r2, r1
            ld r4, 0x100(r3)
            halt
        ",
            &[],
            &[(0x10000, 0x1000)],
        );
        assert!(cycles > 2 * 120, "cycles = {cycles}");
    }

    #[test]
    fn independent_loads_overlap() {
        // Independent misses should overlap in the MSHRs: far less than
        // 4 sequential memory latencies.
        let (_, _, cycles) = run(
            r"
            li r1, 0x10000
            ld r2, 0(r1)
            ld r3, 4096(r1)
            ld r4, 8192(r1)
            ld r5, 12288(r1)
            halt
        ",
            &[],
            &[],
        );
        assert!(cycles < 2 * 133, "cycles = {cycles}, expected overlap");
    }

    #[test]
    fn dependent_chain_slower_than_independent() {
        let dep = r"
            li r1, 1
            mul r2, r1, r1
            mul r3, r2, r2
            mul r4, r3, r3
            mul r5, r4, r4
            halt
        ";
        let indep = r"
            li r1, 1
            mul r2, r1, r1
            mul r3, r1, r1
            mul r4, r1, r1
            mul r5, r1, r1
            halt
        ";
        let (_, _, c_dep) = run(dep, &[], &[]);
        let (_, _, c_ind) = run(indep, &[], &[]);
        assert!(c_dep > c_ind, "dep {c_dep} vs indep {c_ind}");
    }

    #[test]
    fn store_to_load_memory_dependence_respected() {
        // Store then partial-width load of same block: value must be
        // architecturally correct even though forwarding can't cover it.
        let (core, _, _) = run(
            r"
            li r1, 0x2000
            li r2, 0x1122334455667788
            sd r2, 0(r1)
            lw r3, 0(r1)
            lw r4, 4(r1)
            halt
        ",
            &[],
            &[],
        );
        assert_eq!(core.regs.get_i(IntReg::new(3)), 0x55667788);
        assert_eq!(core.regs.get_i(IntReg::new(4)), 0x11223344);
    }

    #[test]
    fn prefetch_warms_cache() {
        let with_pref = r"
            li r1, 0x30000
            pref 0(r1)
            li r5, 200
        spin:
            sub r5, r5, 1
            bne r5, r0, spin
            ld r2, 0(r1)
            halt
        ";
        let without = r"
            li r1, 0x30000
            nop
            li r5, 200
        spin:
            sub r5, r5, 1
            bne r5, r0, spin
            ld r2, 0(r1)
            halt
        ";
        let (_, _, c_with) = run(with_pref, &[], &[]);
        let (_, _, c_without) = run(without, &[], &[]);
        assert!(
            c_with + 60 < c_without,
            "prefetch should hide the miss: {c_with} vs {c_without}"
        );
    }

    #[test]
    fn finishes_and_reports_done() {
        let (core, _, _) = run("halt", &[], &[]);
        assert!(core.is_done());
        assert_eq!(core.stats().committed, 1);
    }
}

/// A compact view of one in-flight instruction for pipeline traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Static instruction index.
    pub pc: u32,
    /// 'W' waiting, 'I' issued, 'D' done.
    pub state: char,
    /// Completion cycle (issued/done entries).
    pub complete_at: u64,
}

/// A per-cycle snapshot of the core's pipeline occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Core name.
    pub name: &'static str,
    /// Next fetch pc.
    pub fetch_pc: u32,
    /// Fetch-queue depth.
    pub ifq_depth: usize,
    /// Window occupancy, oldest first.
    pub window: Vec<SlotView>,
    /// Load/store queue depth.
    pub lsq_depth: usize,
    /// The core committed its halt.
    pub finished: bool,
}

impl OooCore {
    /// Captures the current pipeline state (for traces and debugging).
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            name: self.name,
            fetch_pc: self.fetch_pc,
            ifq_depth: self.ifq.len(),
            window: self
                .ruu
                .iter()
                .map(|e| SlotView {
                    pc: e.pc,
                    state: match e.state {
                        EntryState::Waiting => 'W',
                        EntryState::Issued => 'I',
                        EntryState::Done => 'D',
                    },
                    complete_at: e.complete_at,
                })
                .collect(),
            lsq_depth: self.lsq.len(),
            finished: self.finished,
        }
    }
}

impl std::fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: pc={} ifq={} lsq={} ruu[{}]=",
            self.name,
            self.fetch_pc,
            self.ifq_depth,
            self.lsq_depth,
            self.window.len()
        )?;
        for s in &self.window {
            write!(f, " {}@{}", s.state, s.pc)?;
        }
        if self.finished {
            write!(f, " (done)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::queues::{QueueConfig, QueueFile};
    use hidisc_isa::asm::assemble;
    use hidisc_mem::MemConfig;

    #[test]
    fn snapshot_reflects_progress() {
        let prog = assemble("t", "li r1, 1\nmul r2, r1, r1\nmul r3, r2, r2\nhalt").unwrap();
        let mut core = OooCore::new("snap", CoreConfig::paper_superscalar(), prog);
        let mut mem = Memory::new();
        let mut mem_sys = MemSystem::new(MemConfig::paper());
        let mut queues = QueueFile::new(QueueConfig::paper());
        let mut triggers = Vec::new();
        let mut tel = Telemetry::disabled();
        let empty = core.snapshot();
        assert_eq!(empty.window.len(), 0);
        assert_eq!(empty.fetch_pc, 0);
        let mut saw_occupied = false;
        let mut now = 0;
        while !core.is_done() {
            let mut ctx = CoreCtx {
                mem_sys: &mut mem_sys,
                queues: &mut queues,
                data: &mut mem,
                triggers: &mut triggers,
                trace: &mut tel,
            };
            core.step(now, &mut ctx).unwrap();
            let s = core.snapshot();
            if !s.window.is_empty() {
                saw_occupied = true;
                // oldest-first ordering
                for w in s.window.windows(2) {
                    assert!(w[0].pc <= w[1].pc);
                }
            }
            now += 1;
            assert!(now < 10_000);
        }
        assert!(saw_occupied);
        assert!(core.snapshot().finished);
        let line = core.snapshot().to_string();
        assert!(line.contains("snap:") && line.contains("(done)"));
    }
}
