//! The load/store queue.
//!
//! Holds in-flight memory operations in program order. Besides the usual
//! disambiguation and store-to-load forwarding, the LSQ plays the role of
//! the paper's **Store Address Queue**: a `s.q` store sits here with its
//! address while its data is popped from the Store Data Queue in FIFO
//! order, letting the Access Processor run ahead of the Computation
//! Processor's store data.

use hidisc_isa::instr::Width;
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use hidisc_isa::Queue;
use std::collections::VecDeque;

fn width_code(w: Width) -> u8 {
    match w {
        Width::B => 0,
        Width::H => 1,
        Width::W => 2,
        Width::D => 3,
    }
}

fn width_from(code: u8) -> WireResult<Width> {
    Ok(match code {
        0 => Width::B,
        1 => Width::H,
        2 => Width::W,
        3 => Width::D,
        _ => {
            return Err(WireError {
                pos: 0,
                what: "width out of range",
            })
        }
    })
}

/// Encodes an optional queue as one byte (0 = none, else index+1 in
/// [`Queue::ALL`] order). Shared by the LSQ and core serialisers.
pub(crate) fn queue_opt_code(q: Option<Queue>) -> u8 {
    match q {
        None => 0,
        Some(q) => Queue::ALL.iter().position(|&x| x == q).unwrap() as u8 + 1,
    }
}

/// Inverse of [`queue_opt_code`].
pub(crate) fn queue_opt_from(code: u8) -> WireResult<Option<Queue>> {
    match code {
        0 => Ok(None),
        n if (n as usize) <= Queue::ALL.len() => Ok(Some(Queue::ALL[n as usize - 1])),
        _ => Err(WireError {
            pos: 0,
            what: "queue out of range",
        }),
    }
}

/// One in-flight memory operation.
#[derive(Debug, Clone)]
pub struct LsqEntry {
    /// Sequence number of the owning RUU entry.
    pub seq: u64,
    /// True for stores (including `s.q`).
    pub is_store: bool,
    /// Effective address (known at dispatch — functional execution is
    /// in-order).
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// Store data (raw i64) — valid when `data_known`.
    pub value: i64,
    /// Store data availability. Always true for loads and plain stores;
    /// starts false for `s.q` until the SDQ delivers.
    pub data_known: bool,
    /// For `s.q`: the queue the data comes from.
    pub data_queue: Option<Queue>,
    /// The store has written memory / the load has received its data.
    pub performed: bool,
}

impl LsqEntry {
    fn range(&self) -> (u64, u64) {
        (self.addr, self.addr + self.width.bytes())
    }

    /// Byte-range overlap test.
    pub fn overlaps(&self, addr: u64, width: Width) -> bool {
        let (a0, a1) = self.range();
        let b0 = addr;
        let b1 = addr + width.bytes();
        a0 < b1 && b0 < a1
    }

    /// Exact-cover test used for store-to-load forwarding (same address,
    /// same width).
    pub fn covers_exactly(&self, addr: u64, width: Width) -> bool {
        self.addr == addr && self.width == width
    }
}

/// What the LSQ says about a load's interaction with older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store overlaps: access memory freely.
    Clear,
    /// The youngest overlapping older store covers the load exactly and
    /// its data is known: forward this value.
    Forward(i64),
    /// An older overlapping store has unknown data or only partially
    /// covers the load: the load must wait (seq of the blocking store).
    Blocked(u64),
}

/// The load/store queue.
#[derive(Debug, Clone)]
pub struct Lsq {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    /// Entries with `data_known` set (maintained, not scanned).
    n_data_known: usize,
    /// Entries with `performed` set (maintained, not scanned).
    n_performed: usize,
}

impl Lsq {
    /// Creates an empty LSQ.
    pub fn new(capacity: usize) -> Lsq {
        Lsq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            n_data_known: 0,
            n_performed: 0,
        }
    }

    /// True when no memory instruction can dispatch.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (program order). Panics when full (caller checks).
    pub fn push(&mut self, e: LsqEntry) {
        assert!(!self.is_full(), "LSQ overflow");
        self.n_data_known += e.data_known as usize;
        self.n_performed += e.performed as usize;
        self.entries.push_back(e);
    }

    /// Looks up by owning sequence number.
    pub fn get(&self, seq: u64) -> Option<&LsqEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }

    /// Mutable lookup by owning sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut LsqEntry> {
        self.entries.iter_mut().find(|e| e.seq == seq)
    }

    /// Removes the entry owned by `seq` (at commit).
    pub fn remove(&mut self, seq: u64) {
        if let Some(i) = self.entries.iter().position(|e| e.seq == seq) {
            let e = self.entries.remove(i).unwrap();
            self.n_data_known -= e.data_known as usize;
            self.n_performed -= e.performed as usize;
        }
    }

    /// Marks the entry owned by `seq` as performed (store wrote memory /
    /// load got its data). Keeps the flag counts exact — callers must use
    /// this instead of flipping the field through `get_mut`.
    pub fn mark_performed(&mut self, seq: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            self.n_performed += !e.performed as usize;
            e.performed = true;
        }
    }

    /// `(data_known, performed)` flag counts, maintained across mutations —
    /// equal by construction to what a full queue scan would count.
    pub fn flag_counts(&self) -> (usize, usize) {
        (self.n_data_known, self.n_performed)
    }

    /// Checks a load at `(addr, width)` with sequence `seq` against older
    /// stores, youngest-first.
    pub fn check_load(&self, seq: u64, addr: u64, width: Width) -> LoadCheck {
        for e in self.entries.iter().rev() {
            if e.seq >= seq || !e.is_store {
                continue;
            }
            if e.performed || !e.overlaps(addr, width) {
                continue;
            }
            if e.covers_exactly(addr, width) && e.data_known {
                return LoadCheck::Forward(e.value);
            }
            return LoadCheck::Blocked(e.seq);
        }
        LoadCheck::Clear
    }

    /// Delivers queue data to waiting `s.q` stores: for each source queue,
    /// the *oldest* store still waiting pops next. `pop` is called with the
    /// queue and returns the popped value when one is available. Returns
    /// the number of stores satisfied.
    pub fn pump_store_data(
        &mut self,
        max: usize,
        mut pop: impl FnMut(Queue) -> Option<u64>,
    ) -> usize {
        let mut n = 0;
        for e in self.entries.iter_mut() {
            if n >= max {
                break;
            }
            if e.is_store && !e.data_known {
                if let Some(q) = e.data_queue {
                    match pop(q) {
                        Some(v) => {
                            e.value = v as i64;
                            e.data_known = true;
                            self.n_data_known += 1;
                            n += 1;
                        }
                        // FIFO: a younger store for the same queue must not
                        // overtake; stop scanning entirely (queue data
                        // arrives in order).
                        None => break,
                    }
                }
            }
        }
        n
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &LsqEntry> {
        self.entries.iter()
    }

    /// Serialises all in-flight entries (capacity comes from the config,
    /// which the checkpoint header pins).
    pub fn save_state(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for en in &self.entries {
            e.u64(en.seq);
            e.bool(en.is_store);
            e.u64(en.addr);
            e.u8(width_code(en.width));
            e.i64(en.value);
            e.bool(en.data_known);
            e.u8(queue_opt_code(en.data_queue));
            e.bool(en.performed);
        }
    }

    /// Restores from a [`save_state`](Self::save_state) stream; the flag
    /// counts are recomputed.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        let n = d.usize()?;
        self.entries.clear();
        self.n_data_known = 0;
        self.n_performed = 0;
        for _ in 0..n {
            let en = LsqEntry {
                seq: d.u64()?,
                is_store: d.bool()?,
                addr: d.u64()?,
                width: width_from(d.u8()?)?,
                value: d.i64()?,
                data_known: d.bool()?,
                data_queue: queue_opt_from(d.u8()?)?,
                performed: d.bool()?,
            };
            self.n_data_known += en.data_known as usize;
            self.n_performed += en.performed as usize;
            self.entries.push_back(en);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(seq: u64, addr: u64, width: Width, value: i64, known: bool) -> LsqEntry {
        LsqEntry {
            seq,
            is_store: true,
            addr,
            width,
            value,
            data_known: known,
            data_queue: (!known).then_some(Queue::Sdq),
            performed: false,
        }
    }

    #[test]
    fn forwarding_exact_cover() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 42, true));
        assert_eq!(l.check_load(5, 0x100, Width::D), LoadCheck::Forward(42));
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 42, true));
        assert_eq!(l.check_load(5, 0x104, Width::W), LoadCheck::Blocked(1));
    }

    #[test]
    fn unknown_data_blocks_even_exact() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 0, false));
        assert_eq!(l.check_load(5, 0x100, Width::D), LoadCheck::Blocked(1));
    }

    #[test]
    fn younger_stores_ignored() {
        let mut l = Lsq::new(8);
        l.push(store(9, 0x100, Width::D, 42, true));
        assert_eq!(l.check_load(5, 0x100, Width::D), LoadCheck::Clear);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 1, true));
        l.push(store(2, 0x100, Width::D, 2, true));
        assert_eq!(l.check_load(5, 0x100, Width::D), LoadCheck::Forward(2));
    }

    #[test]
    fn performed_stores_do_not_block() {
        let mut l = Lsq::new(8);
        let mut s = store(1, 0x100, Width::D, 1, true);
        s.performed = true;
        l.push(s);
        assert_eq!(l.check_load(5, 0x104, Width::W), LoadCheck::Clear);
    }

    #[test]
    fn pump_delivers_in_fifo_order() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 0, false));
        l.push(store(2, 0x200, Width::D, 0, false));
        let mut vals = vec![20u64, 10u64]; // popped back-to-front
        let n = l.pump_store_data(4, |_| vals.pop());
        assert_eq!(n, 2);
        assert_eq!(l.get(1).unwrap().value, 10);
        assert_eq!(l.get(2).unwrap().value, 20);
        assert!(l.get(1).unwrap().data_known);
    }

    #[test]
    fn pump_stops_at_empty_queue() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 0, false));
        l.push(store(2, 0x200, Width::D, 0, false));
        let mut served = false;
        let n = l.pump_store_data(4, |_| {
            if served {
                None
            } else {
                served = true;
                Some(7)
            }
        });
        assert_eq!(n, 1);
        assert!(l.get(1).unwrap().data_known);
        assert!(!l.get(2).unwrap().data_known);
    }

    #[test]
    fn flag_counts_track_mutations() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 0, false));
        l.push(store(2, 0x200, Width::D, 2, true));
        assert_eq!(l.flag_counts(), (1, 0));
        l.pump_store_data(4, |_| Some(7));
        assert_eq!(l.flag_counts(), (2, 0));
        l.mark_performed(1);
        l.mark_performed(1); // idempotent
        assert_eq!(l.flag_counts(), (2, 1));
        l.remove(1);
        assert_eq!(l.flag_counts(), (1, 0));
        l.remove(2);
        assert_eq!(l.flag_counts(), (0, 0));
    }

    #[test]
    fn remove_by_seq() {
        let mut l = Lsq::new(8);
        l.push(store(1, 0x100, Width::D, 1, true));
        l.push(store(2, 0x200, Width::D, 2, true));
        l.remove(1);
        assert_eq!(l.len(), 1);
        assert!(l.get(1).is_none());
        assert!(l.get(2).is_some());
    }
}
