//! # hidisc-ooo — the out-of-order processor timing model
//!
//! A parameterised, execution-driven out-of-order core in the style of
//! SimpleScalar's `sim-outorder`, used for every processor in the suite:
//!
//! * the 8-issue baseline **superscalar** (all functional units),
//! * the **Computation Processor** (16-entry window, no load/store units),
//! * the **Access Processor** (64-entry window, integer + load/store only).
//!
//! ## Model summary
//!
//! Functional execution happens *in order at dispatch* (the sim-outorder
//! approach): by the time an instruction enters the register update unit
//! its result value is known, and the RUU tracks only *timing* readiness.
//! Loads read memory through the LSQ with exact store-to-load forwarding;
//! stores buffer their data in the LSQ and write memory at in-order commit.
//! Branches resolve functionally at dispatch; on a misprediction the
//! front-end is flushed and refetches once the branch *executes* (timing),
//! so wrong paths cost real cycles without polluting architectural state.
//!
//! The decoupled queue instructions integrate as follows:
//!
//! * queue **pops** (`recv`, `cbr`, `getscq`) happen at in-order dispatch —
//!   an empty queue stalls dispatch (these stall cycles are the paper's
//!   loss-of-decoupling time). `s.q` stores are the exception: they
//!   dispatch immediately and their data is popped in FIFO order by the
//!   load/store queue while younger instructions proceed (the SAQ/SDQ
//!   pairing of the paper);
//! * queue **pushes** (`send`, `l.q` loads, CQ tokens from annotated
//!   branches, `putscq`) happen at in-order commit — a full queue stalls
//!   commit.

#![forbid(unsafe_code)]

pub mod config;
pub mod core;
pub mod fu;
pub mod lsq;
pub mod predictor;
pub mod queues;
pub mod ruu;
pub mod stats;

pub use config::{CoreConfig, Latencies, Scheduler};
pub use core::{CoreCtx, OooCore, TriggerFork};
pub use predictor::Bimodal;
pub use queues::{QueueConfig, QueueFile};
pub use stats::CoreStats;
