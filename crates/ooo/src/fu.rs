//! Functional-unit pools.
//!
//! Units are fully pipelined: a pool of `n` units of a class accepts up to
//! `n` new operations per cycle. (Divides are long-latency but pipelined,
//! matching sim-outorder's default FU configuration closely enough for the
//! experiments.)

use crate::config::{CoreConfig, Latencies};
use hidisc_isa::instr::{FuClass, Instr};
use hidisc_isa::IntOp;

/// Per-cycle functional-unit availability tracker.
#[derive(Debug, Clone)]
pub struct FuPool {
    int_alu: u32,
    int_mul: u32,
    fp_alu: u32,
    fp_mul: u32,
    mem_ports: u32,
    used: [u32; 5],
}

impl FuPool {
    /// Creates a pool from the core configuration.
    pub fn new(cfg: &CoreConfig) -> FuPool {
        FuPool {
            int_alu: cfg.int_alu,
            int_mul: cfg.int_mul,
            fp_alu: cfg.fp_alu,
            fp_mul: cfg.fp_mul,
            mem_ports: cfg.mem_ports,
            used: [0; 5],
        }
    }

    /// Resets per-cycle usage (call at the start of each cycle).
    pub fn begin_cycle(&mut self) {
        self.used = [0; 5];
    }

    fn slot(&self, class: FuClass) -> (usize, u32) {
        match class {
            FuClass::IntAlu | FuClass::Branch => (0, self.int_alu),
            FuClass::IntMul => (1, self.int_mul),
            FuClass::FpAlu => (2, self.fp_alu),
            FuClass::FpMul => (3, self.fp_mul),
            FuClass::Mem => (4, self.mem_ports),
        }
    }

    /// Attempts to reserve a unit of `class` for this cycle.
    pub fn try_acquire(&mut self, class: FuClass) -> bool {
        let (i, cap) = self.slot(class);
        if self.used[i] < cap {
            self.used[i] += 1;
            true
        } else {
            false
        }
    }

    /// True if the core has any unit of this class at all (configuration
    /// check: an instruction of a class with zero units can never execute
    /// on this core).
    pub fn exists(&self, class: FuClass) -> bool {
        self.slot(class).1 > 0
    }
}

/// The execution latency of an instruction (excluding cache time for
/// memory operations, which [`crate::core::OooCore`] adds from the memory
/// system).
pub fn latency_of(i: &Instr, lat: &Latencies) -> u32 {
    match i.fu_class() {
        FuClass::IntAlu => lat.int_alu,
        FuClass::IntMul => match i {
            Instr::IntOp { op: IntOp::Mul, .. } => lat.int_mul,
            _ => lat.int_div,
        },
        FuClass::FpAlu => lat.fp_alu,
        FuClass::FpMul => match i {
            Instr::FpBin { op, .. } if op.is_long_latency() => lat.fp_div,
            Instr::FpUn { .. } => lat.fp_div, // sqrt
            _ => lat.fp_mul,
        },
        FuClass::Mem => lat.agen,
        FuClass::Branch => lat.branch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::instr::Src;
    use hidisc_isa::{FpBinOp, FpReg, IntReg};

    #[test]
    fn per_cycle_caps() {
        let cfg = CoreConfig {
            int_alu: 2,
            ..CoreConfig::paper_superscalar()
        };
        let mut p = FuPool::new(&cfg);
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::IntAlu));
        assert!(p.try_acquire(FuClass::IntAlu));
        assert!(!p.try_acquire(FuClass::IntAlu));
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::IntAlu));
    }

    #[test]
    fn branch_shares_int_alu() {
        let cfg = CoreConfig {
            int_alu: 1,
            ..CoreConfig::paper_superscalar()
        };
        let mut p = FuPool::new(&cfg);
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::Branch));
        assert!(!p.try_acquire(FuClass::IntAlu));
    }

    #[test]
    fn exists_reflects_config() {
        let cfg = CoreConfig::paper_ap();
        let p = FuPool::new(&cfg);
        assert!(!p.exists(FuClass::FpAlu));
        assert!(p.exists(FuClass::Mem));
        let cfg = CoreConfig::paper_cp();
        let p = FuPool::new(&cfg);
        assert!(!p.exists(FuClass::Mem));
        assert!(p.exists(FuClass::FpMul));
    }

    #[test]
    fn latency_distinguishes_mul_div() {
        let lat = Latencies::default();
        let r = IntReg::new(1);
        let mul = Instr::IntOp {
            op: IntOp::Mul,
            dst: r,
            a: r,
            b: Src::Reg(r),
        };
        let div = Instr::IntOp {
            op: IntOp::Div,
            dst: r,
            a: r,
            b: Src::Reg(r),
        };
        assert_eq!(latency_of(&mul, &lat), lat.int_mul);
        assert_eq!(latency_of(&div, &lat), lat.int_div);
        let f = FpReg::new(1);
        let fdiv = Instr::FpBin {
            op: FpBinOp::Div,
            dst: f,
            a: f,
            b: f,
        };
        assert_eq!(latency_of(&fdiv, &lat), lat.fp_div);
    }
}
