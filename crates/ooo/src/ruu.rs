//! The Register Update Unit: the instruction window of the out-of-order
//! core (SimpleScalar's RUU — a combined ROB/reservation-station array).
//!
//! Entries are kept in dispatch order; sequence numbers are contiguous, so
//! an entry can be located by `seq - front_seq` in O(1).

use hidisc_isa::instr::{FuClass, Instr};
use hidisc_isa::wire::{Dec, Enc, WireError, WireResult};
use std::collections::VecDeque;

/// Timing state of an RUU entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Dispatched, waiting for operands or a functional unit.
    Waiting,
    /// Issued to a functional unit; completes at `complete_at`.
    Issued,
    /// Result available.
    Done,
}

/// One instruction in flight.
#[derive(Debug, Clone)]
pub struct RuuEntry {
    /// Sequence number (dispatch order, contiguous).
    pub seq: u64,
    /// Static instruction index.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// Functional-unit class.
    pub fu: FuClass,
    /// Timing state.
    pub state: EntryState,
    /// Cycle the result becomes available (valid once issued).
    pub complete_at: u64,
    /// Producers of the source operands (sequence numbers); `None` = ready
    /// at dispatch.
    pub deps: [Option<u64>; 3],
    /// Value carried to commit (queue pushes: the 64-bit payload to push).
    pub payload: u64,
    /// Conditional branch: direction predicted at fetch.
    pub predicted_taken: bool,
    /// Conditional branch: actual direction (known at dispatch).
    pub actual_taken: bool,
    /// The correct next pc (branches only).
    pub correct_next: u32,
    /// This branch was mispredicted; fetch resumes when it completes.
    pub mispredicted: bool,
    /// Index is a memory instruction with a matching LSQ entry.
    pub is_mem: bool,
    /// Ready-list scheduling: younger entries waiting on this entry's
    /// result (sequence numbers registered at their dispatch).
    pub consumers: Vec<u64>,
    /// Ready-list scheduling: source operands whose producer has not yet
    /// completed. The entry enters the ready queue when this reaches 0.
    pub pending_deps: u8,
}

impl RuuEntry {
    /// Creates a fresh entry in the `Waiting` state.
    pub fn new(seq: u64, pc: u32, instr: Instr) -> RuuEntry {
        RuuEntry {
            seq,
            pc,
            instr,
            fu: instr.fu_class(),
            state: EntryState::Waiting,
            complete_at: 0,
            deps: [None; 3],
            payload: 0,
            predicted_taken: false,
            actual_taken: false,
            correct_next: 0,
            mispredicted: false,
            is_mem: instr.is_mem(),
            consumers: Vec::new(),
            pending_deps: 0,
        }
    }
}

/// The instruction window.
#[derive(Debug, Clone)]
pub struct Ruu {
    entries: VecDeque<RuuEntry>,
    capacity: usize,
    next_seq: u64,
    /// Entries in the `Waiting` state (maintained, not scanned).
    n_waiting: usize,
    /// Entries in the `Done` state (maintained, not scanned).
    n_done: usize,
}

impl Ruu {
    /// Creates an empty window of the given capacity.
    pub fn new(capacity: usize) -> Ruu {
        Ruu {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            n_waiting: 0,
            n_done: 0,
        }
    }

    /// True when no more instructions can dispatch.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of instructions in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Allocates an entry; returns its sequence number. Panics when full
    /// (caller checks `is_full`).
    pub fn push(&mut self, pc: u32, instr: Instr) -> u64 {
        assert!(!self.is_full(), "RUU overflow");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(RuuEntry::new(seq, pc, instr));
        self.n_waiting += 1;
        seq
    }

    /// The oldest entry.
    pub fn front(&self) -> Option<&RuuEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<RuuEntry> {
        let e = self.entries.pop_front();
        match e.as_ref().map(|e| e.state) {
            Some(EntryState::Waiting) => self.n_waiting -= 1,
            Some(EntryState::Done) => self.n_done -= 1,
            _ => {}
        }
        e
    }

    /// Looks up an entry by sequence number.
    pub fn get(&self, seq: u64) -> Option<&RuuEntry> {
        let front = self.entries.front()?.seq;
        if seq < front {
            return None;
        }
        self.entries.get((seq - front) as usize)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RuuEntry> {
        let front = self.entries.front()?.seq;
        if seq < front {
            return None;
        }
        self.entries.get_mut((seq - front) as usize)
    }

    /// True if the producer with sequence `seq` has its result available at
    /// `now` — i.e. it already committed (left the window) or is `Done`.
    pub fn producer_done(&self, seq: u64, now: u64) -> bool {
        match self.get(seq) {
            None => true, // committed
            Some(e) => e.state == EntryState::Done && e.complete_at <= now,
        }
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RuuEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RuuEntry> {
        self.entries.iter_mut()
    }

    /// Marks `seq` as issued, completing at `complete_at`. The only legal
    /// transition out of `Waiting`; keeps the state counts exact.
    pub fn mark_issued(&mut self, seq: u64, complete_at: u64) {
        let e = self.get_mut(seq).expect("mark_issued: seq not in window");
        debug_assert_eq!(e.state, EntryState::Waiting);
        e.state = EntryState::Issued;
        e.complete_at = complete_at;
        self.n_waiting -= 1;
    }

    /// Marks `seq` as done (result available). The only legal transition
    /// out of `Issued`; keeps the state counts exact. Returns the consumer
    /// list registered on the entry (emptied), for wakeup.
    pub fn mark_done(&mut self, seq: u64) -> Vec<u64> {
        self.n_done += 1;
        let e = self.get_mut(seq).expect("mark_done: seq not in window");
        debug_assert_eq!(e.state, EntryState::Issued);
        e.state = EntryState::Done;
        std::mem::take(&mut e.consumers)
    }

    /// `(waiting, done)` counts, maintained across state transitions —
    /// equal by construction to what a full window scan would count.
    pub fn state_counts(&self) -> (usize, usize) {
        (self.n_waiting, self.n_done)
    }

    /// Promotes `Issued` entries whose completion time has passed to
    /// `Done`.
    pub fn harvest_completions(&mut self, now: u64) {
        for e in self.entries.iter_mut() {
            if e.state == EntryState::Issued && e.complete_at <= now {
                e.state = EntryState::Done;
                self.n_done += 1;
            }
        }
    }

    /// Serialises the window. Instructions are *not* stored — only
    /// correct-path instructions dispatch (functional execution is
    /// in-order), so the loader re-derives them from the static program
    /// by pc.
    pub fn save_state(&self, e: &mut Enc) {
        e.u64(self.next_seq);
        e.usize(self.entries.len());
        for en in &self.entries {
            e.u64(en.seq);
            e.u32(en.pc);
            e.u8(match en.state {
                EntryState::Waiting => 0,
                EntryState::Issued => 1,
                EntryState::Done => 2,
            });
            e.u64(en.complete_at);
            for dep in en.deps {
                match dep {
                    None => e.bool(false),
                    Some(s) => {
                        e.bool(true);
                        e.u64(s);
                    }
                }
            }
            e.u64(en.payload);
            e.bool(en.predicted_taken);
            e.bool(en.actual_taken);
            e.u32(en.correct_next);
            e.bool(en.mispredicted);
            e.usize(en.consumers.len());
            for &c in &en.consumers {
                e.u64(c);
            }
            e.u8(en.pending_deps);
        }
    }

    /// Restores from a [`save_state`](Self::save_state) stream.
    /// `instr_at` resolves a pc to the static instruction (the owning
    /// core's program); state counts are recomputed.
    pub fn load_state(
        &mut self,
        d: &mut Dec,
        mut instr_at: impl FnMut(u32) -> Option<Instr>,
    ) -> WireResult<()> {
        self.next_seq = d.u64()?;
        let n = d.usize()?;
        self.entries.clear();
        self.n_waiting = 0;
        self.n_done = 0;
        for _ in 0..n {
            let seq = d.u64()?;
            let pc = d.u32()?;
            let instr = instr_at(pc).ok_or(WireError {
                pos: 0,
                what: "ruu pc out of program range",
            })?;
            let mut en = RuuEntry::new(seq, pc, instr);
            en.state = match d.u8()? {
                0 => EntryState::Waiting,
                1 => EntryState::Issued,
                2 => EntryState::Done,
                _ => {
                    return Err(WireError {
                        pos: 0,
                        what: "ruu state out of range",
                    })
                }
            };
            en.complete_at = d.u64()?;
            for dep in en.deps.iter_mut() {
                *dep = if d.bool()? { Some(d.u64()?) } else { None };
            }
            en.payload = d.u64()?;
            en.predicted_taken = d.bool()?;
            en.actual_taken = d.bool()?;
            en.correct_next = d.u32()?;
            en.mispredicted = d.bool()?;
            let nc = d.usize()?;
            en.consumers = (0..nc).map(|_| d.u64()).collect::<WireResult<_>>()?;
            en.pending_deps = d.u8()?;
            match en.state {
                EntryState::Waiting => self.n_waiting += 1,
                EntryState::Done => self.n_done += 1,
                EntryState::Issued => {}
            }
            self.entries.push_back(en);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::Instr;

    #[test]
    fn seq_numbers_are_contiguous_and_lookup_works() {
        let mut r = Ruu::new(4);
        let a = r.push(0, Instr::Nop);
        let b = r.push(1, Instr::Nop);
        assert_eq!(b, a + 1);
        assert_eq!(r.get(a).unwrap().pc, 0);
        assert_eq!(r.get(b).unwrap().pc, 1);
        r.pop_front();
        assert!(r.get(a).is_none());
        assert_eq!(r.get(b).unwrap().pc, 1);
    }

    #[test]
    fn capacity_respected() {
        let mut r = Ruu::new(2);
        r.push(0, Instr::Nop);
        assert!(!r.is_full());
        r.push(1, Instr::Nop);
        assert!(r.is_full());
    }

    #[test]
    fn producer_done_semantics() {
        let mut r = Ruu::new(4);
        let a = r.push(0, Instr::Nop);
        assert!(!r.producer_done(a, 10)); // Waiting
        r.mark_issued(a, 5);
        assert!(!r.producer_done(a, 4));
        r.harvest_completions(5);
        assert!(r.producer_done(a, 5));
        r.pop_front();
        assert!(r.producer_done(a, 0)); // committed ⇒ done
    }

    #[test]
    fn state_counts_track_transitions() {
        let mut r = Ruu::new(4);
        let a = r.push(0, Instr::Nop);
        let b = r.push(1, Instr::Nop);
        assert_eq!(r.state_counts(), (2, 0));
        r.mark_issued(a, 3);
        assert_eq!(r.state_counts(), (1, 0));
        let woken = r.mark_done(a);
        assert!(woken.is_empty());
        assert_eq!(r.state_counts(), (1, 1));
        r.pop_front(); // pops a (Done)
        assert_eq!(r.state_counts(), (1, 0));
        r.mark_issued(b, 9);
        r.harvest_completions(9);
        assert_eq!(r.state_counts(), (0, 1));
    }

    #[test]
    fn mark_done_returns_registered_consumers() {
        let mut r = Ruu::new(4);
        let a = r.push(0, Instr::Nop);
        let b = r.push(1, Instr::Nop);
        r.get_mut(a).unwrap().consumers.push(b);
        r.get_mut(b).unwrap().pending_deps = 1;
        r.mark_issued(a, 2);
        assert_eq!(r.mark_done(a), vec![b]);
        assert!(r.get(a).unwrap().consumers.is_empty());
    }

    #[test]
    #[should_panic]
    fn push_past_capacity_panics() {
        let mut r = Ruu::new(1);
        r.push(0, Instr::Nop);
        r.push(1, Instr::Nop);
    }
}
