//! Core configuration and the Table-1 presets.

use crate::predictor::PredictorKind;

/// Functional-unit and operation latencies in cycles (SimpleScalar
/// defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Integer ALU (and queue moves).
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide/remainder.
    pub int_div: u32,
    /// FP add/sub/compare/convert.
    pub fp_alu: u32,
    /// FP multiply.
    pub fp_mul: u32,
    /// FP divide / sqrt.
    pub fp_div: u32,
    /// Branch resolution.
    pub branch: u32,
    /// Address generation for loads/stores (before the cache access).
    pub agen: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 2,
            fp_mul: 4,
            fp_div: 12,
            branch: 1,
            agen: 1,
        }
    }
}

/// Instruction-scheduling strategy of the issue stage.
///
/// Both produce bit-identical timing (`readylist_equiv.rs` proves it);
/// `Scan` is retained as the reference implementation for that proof and
/// for debugging the wakeup bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Wakeup-driven ready list: consumer links registered at dispatch,
    /// completions drained from a min-heap, issue picks from a sorted
    /// ready set. O(ready + completions) per cycle.
    #[default]
    ReadyList,
    /// The seed implementation: walk the whole RUU every cycle for issue
    /// candidates and completion harvest. O(window) per cycle.
    Scan,
}

/// Configuration of one out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (decoded into the RUU) per cycle.
    pub dispatch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register-update-unit (instruction window) size.
    pub ruu_size: u32,
    /// Load/store queue size.
    pub lsq_size: u32,
    /// Fetch-queue depth.
    pub ifq_size: u32,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// FP adders.
    pub fp_alu: u32,
    /// FP multiply/divide units.
    pub fp_mul: u32,
    /// Cache ports (memory accesses started per cycle).
    pub mem_ports: u32,
    /// Bimodal predictor entries.
    pub predictor_entries: u32,
    /// Predictor algorithm (Table 1: bimodal).
    pub predictor_kind: PredictorKind,
    /// Attach a Chen-Baer stride prefetcher (RPT) to this core's demand
    /// loads — the related-work hardware-prefetching comparator, not part
    /// of any paper configuration.
    pub hw_prefetcher: Option<hidisc_mem::RptConfig>,
    /// Pipeline refill penalty after a front-end redirect, in cycles
    /// (decode depth between fetch and dispatch).
    pub frontend_penalty: u32,
    /// Issue-stage scheduling strategy.
    pub scheduler: Scheduler,
    /// Operation latencies.
    pub lat: Latencies,
}

impl CoreConfig {
    /// The Table-1 baseline: 8-issue superscalar, 64-entry RUU, 32-entry
    /// LSQ, 4 int ALUs + MUL/DIV, 4 FP ALUs + MUL/DIV, 2 memory ports,
    /// 2048-entry bimodal predictor.
    pub fn paper_superscalar() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 64,
            lsq_size: 32,
            ifq_size: 16,
            int_alu: 4,
            int_mul: 1,
            fp_alu: 4,
            fp_mul: 1,
            mem_ports: 2,
            predictor_entries: 2048,
            predictor_kind: PredictorKind::Bimodal,
            hw_prefetcher: None,
            frontend_penalty: 2,
            scheduler: Scheduler::default(),
            lat: Latencies::default(),
        }
    }

    /// The Computation Processor: 16-entry window, FP + integer units, no
    /// load/store units (mem_ports = 0 — the separator guarantees the
    /// Computation Stream contains no memory instructions). Its front-end
    /// refill penalty is zero: the CP consumes pre-separated instructions
    /// from the Computation Instruction Queue (Figure 2 of the paper), so
    /// a consume-branch redirect only moves the dequeue pointer.
    pub fn paper_cp() -> CoreConfig {
        CoreConfig {
            ruu_size: 16,
            lsq_size: 0,
            mem_ports: 0,
            frontend_penalty: 0,
            ..CoreConfig::paper_superscalar()
        }
    }

    /// The Access Processor: 64-entry window, integer + load/store units
    /// only (fp_alu = fp_mul = 0 — the separator keeps FP computation in
    /// the Computation Stream).
    pub fn paper_ap() -> CoreConfig {
        CoreConfig {
            ruu_size: 64,
            lsq_size: 32,
            fp_alu: 0,
            fp_mul: 0,
            ..CoreConfig::paper_superscalar()
        }
    }

    /// Sanity checks.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.dispatch_width > 0);
        assert!(self.issue_width > 0 && self.commit_width > 0);
        assert!(self.ruu_size > 0, "RUU must be non-empty");
        assert!(self.predictor_entries.is_power_of_two());
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper_superscalar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table1() {
        let s = CoreConfig::paper_superscalar();
        assert_eq!(s.issue_width, 8);
        assert_eq!(s.ruu_size, 64);
        assert_eq!(s.lsq_size, 32);
        assert_eq!(s.int_alu, 4);
        assert_eq!(s.mem_ports, 2);
        assert_eq!(s.predictor_entries, 2048);

        let cp = CoreConfig::paper_cp();
        assert_eq!(cp.ruu_size, 16);
        assert_eq!(cp.mem_ports, 0);
        assert!(cp.fp_alu > 0);

        let ap = CoreConfig::paper_ap();
        assert_eq!(ap.ruu_size, 64);
        assert_eq!(ap.fp_alu, 0);
        assert_eq!(ap.mem_ports, 2);
    }

    #[test]
    fn presets_validate() {
        CoreConfig::paper_superscalar().validate();
        CoreConfig::paper_cp().validate();
        CoreConfig::paper_ap().validate();
    }
}
