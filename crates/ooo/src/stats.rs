//! Per-core execution statistics.

use hidisc_isa::Queue;

#[inline]
fn qslot(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

/// Counters accumulated by one [`crate::core::OooCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles this core was stepped.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// ... of which memory operations.
    pub committed_mem: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Cycles dispatch was stalled popping each queue (LDQ, SDQ, CDQ, CQ,
    /// SCQ). These are the paper's loss-of-decoupling cycles.
    pub dispatch_stall_q: [u64; 5],
    /// Cycles commit was stalled pushing each queue (full) or waiting for
    /// store data.
    pub commit_stall_q: [u64; 5],
    /// Distinct episodes (not cycles) of dispatch blocking on an empty
    /// queue — the paper's loss-of-decoupling *events*.
    pub lod_events: u64,
    /// Cycles dispatch was stalled because the RUU was full.
    pub ruu_full_cycles: u64,
    /// Cycles dispatch was stalled because the LSQ was full.
    pub lsq_full_cycles: u64,
    /// Conditional-branch mispredictions (resolution-time redirects).
    pub mispredicts: u64,
    /// Consume-branch redirects (CQ token disagreed with the prediction).
    pub cbranch_redirects: u64,
    /// Cycles dispatch was stalled because a load's value depended on an
    /// older store whose data was not yet available (memory-carried
    /// cross-stream dependence).
    pub mem_dep_stalls: u64,
    /// Loads forwarded from the store queue.
    pub forwarded_loads: u64,
    /// Load issues rejected by a full MSHR file (retried).
    pub mshr_retries: u64,
    /// Prefetches dropped because no MSHR was available.
    pub dropped_prefetches: u64,
    /// CMAS trigger forks fired at commit.
    pub triggers_fired: u64,
}

impl CoreStats {
    /// Adds a dispatch-stall cycle on `q`.
    pub fn stall_dispatch(&mut self, q: Queue) {
        self.dispatch_stall_q[qslot(q)] += 1;
    }

    /// Adds a commit-stall cycle on `q`.
    pub fn stall_commit(&mut self, q: Queue) {
        self.commit_stall_q[qslot(q)] += 1;
    }

    /// Total cycles dispatch spent blocked on queue pops.
    pub fn total_dispatch_stall(&self) -> u64 {
        self.dispatch_stall_q.iter().sum()
    }

    /// Committed instructions per cycle *of this stream* (not the
    /// workload-level IPC, which is computed by the machine driver).
    pub fn stream_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_accounting() {
        let mut s = CoreStats::default();
        s.stall_dispatch(Queue::Ldq);
        s.stall_dispatch(Queue::Ldq);
        s.stall_dispatch(Queue::Cq);
        s.stall_commit(Queue::Sdq);
        assert_eq!(s.dispatch_stall_q[0], 2);
        assert_eq!(s.dispatch_stall_q[3], 1);
        assert_eq!(s.commit_stall_q[1], 1);
        assert_eq!(s.total_dispatch_stall(), 3);
    }

    #[test]
    fn stream_ipc() {
        let s = CoreStats { cycles: 10, committed: 25, ..Default::default() };
        assert!((s.stream_ipc() - 2.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().stream_ipc(), 0.0);
    }
}
