//! Per-core execution statistics.

use hidisc_isa::Queue;

#[inline]
fn qslot(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

/// Counters accumulated by one [`crate::core::OooCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles this core was stepped.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// ... of which memory operations.
    pub committed_mem: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Cycles dispatch was stalled popping each queue (LDQ, SDQ, CDQ, CQ,
    /// SCQ). These are the paper's loss-of-decoupling cycles.
    pub dispatch_stall_q: [u64; 5],
    /// Cycles commit was stalled pushing each queue (full) or waiting for
    /// store data.
    pub commit_stall_q: [u64; 5],
    /// Distinct episodes (not cycles) of dispatch blocking on an empty
    /// queue — the paper's loss-of-decoupling *events*.
    pub lod_events: u64,
    /// Cycles dispatch was stalled because the RUU was full.
    pub ruu_full_cycles: u64,
    /// Cycles dispatch was stalled because the LSQ was full.
    pub lsq_full_cycles: u64,
    /// Conditional-branch mispredictions (resolution-time redirects).
    pub mispredicts: u64,
    /// Consume-branch redirects (CQ token disagreed with the prediction).
    pub cbranch_redirects: u64,
    /// Cycles dispatch was stalled because a load's value depended on an
    /// older store whose data was not yet available (memory-carried
    /// cross-stream dependence).
    pub mem_dep_stalls: u64,
    /// Loads forwarded from the store queue.
    pub forwarded_loads: u64,
    /// Load issues rejected by a full MSHR file (retried).
    pub mshr_retries: u64,
    /// Prefetches dropped because no MSHR was available.
    pub dropped_prefetches: u64,
    /// CMAS trigger forks fired at commit.
    pub triggers_fired: u64,
}

impl CoreStats {
    /// Adds a dispatch-stall cycle on `q`.
    pub fn stall_dispatch(&mut self, q: Queue) {
        self.dispatch_stall_q[qslot(q)] += 1;
    }

    /// Adds a commit-stall cycle on `q`.
    pub fn stall_commit(&mut self, q: Queue) {
        self.commit_stall_q[qslot(q)] += 1;
    }

    /// Total cycles dispatch spent blocked on queue pops.
    pub fn total_dispatch_stall(&self) -> u64 {
        self.dispatch_stall_q.iter().sum()
    }

    /// Committed instructions per cycle *of this stream* (not the
    /// workload-level IPC, which is computed by the machine driver).
    pub fn stream_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Field-wise difference `self - before` (both snapshots of the same
    /// monotonically growing counters). Used by the machine's idle-cycle
    /// fast-forward to measure what one idle cycle adds.
    ///
    /// The exhaustive destructuring is deliberate: adding a field to
    /// `CoreStats` without deciding how fast-forward treats it must not
    /// compile.
    pub fn delta_since(&self, before: &CoreStats) -> CoreStats {
        let CoreStats {
            cycles,
            committed,
            committed_mem,
            dispatched,
            dispatch_stall_q,
            commit_stall_q,
            lod_events,
            ruu_full_cycles,
            lsq_full_cycles,
            mispredicts,
            cbranch_redirects,
            mem_dep_stalls,
            forwarded_loads,
            mshr_retries,
            dropped_prefetches,
            triggers_fired,
        } = *before;
        let sub5 = |a: [u64; 5], b: [u64; 5]| {
            [
                a[0] - b[0],
                a[1] - b[1],
                a[2] - b[2],
                a[3] - b[3],
                a[4] - b[4],
            ]
        };
        CoreStats {
            cycles: self.cycles - cycles,
            committed: self.committed - committed,
            committed_mem: self.committed_mem - committed_mem,
            dispatched: self.dispatched - dispatched,
            dispatch_stall_q: sub5(self.dispatch_stall_q, dispatch_stall_q),
            commit_stall_q: sub5(self.commit_stall_q, commit_stall_q),
            lod_events: self.lod_events - lod_events,
            ruu_full_cycles: self.ruu_full_cycles - ruu_full_cycles,
            lsq_full_cycles: self.lsq_full_cycles - lsq_full_cycles,
            mispredicts: self.mispredicts - mispredicts,
            cbranch_redirects: self.cbranch_redirects - cbranch_redirects,
            mem_dep_stalls: self.mem_dep_stalls - mem_dep_stalls,
            forwarded_loads: self.forwarded_loads - forwarded_loads,
            mshr_retries: self.mshr_retries - mshr_retries,
            dropped_prefetches: self.dropped_prefetches - dropped_prefetches,
            triggers_fired: self.triggers_fired - triggers_fired,
        }
    }

    /// Adds `delta` scaled by `k` — the effect of `k` identical idle
    /// cycles. `delta` must come from an idle cycle: every counter that can
    /// only move when an instruction makes progress has to be zero.
    pub fn add_idle_scaled(&mut self, delta: &CoreStats, k: u64) {
        let CoreStats {
            cycles,
            committed,
            committed_mem,
            dispatched,
            dispatch_stall_q,
            commit_stall_q,
            lod_events,
            ruu_full_cycles,
            lsq_full_cycles,
            mispredicts,
            cbranch_redirects,
            mem_dep_stalls,
            forwarded_loads,
            mshr_retries,
            dropped_prefetches,
            triggers_fired,
        } = *delta;
        debug_assert_eq!(
            (
                committed,
                committed_mem,
                dispatched,
                lod_events,
                mispredicts,
                cbranch_redirects,
                forwarded_loads,
                dropped_prefetches,
                triggers_fired
            ),
            (0, 0, 0, 0, 0, 0, 0, 0, 0),
            "fast-forward applied a non-idle CoreStats delta"
        );
        self.cycles += cycles * k;
        for i in 0..5 {
            self.dispatch_stall_q[i] += dispatch_stall_q[i] * k;
            self.commit_stall_q[i] += commit_stall_q[i] * k;
        }
        self.ruu_full_cycles += ruu_full_cycles * k;
        self.lsq_full_cycles += lsq_full_cycles * k;
        self.mem_dep_stalls += mem_dep_stalls * k;
        self.mshr_retries += mshr_retries * k;
    }

    /// Serialises all counters for the checkpoint format. Exhaustive
    /// destructuring: adding a field without serialising it must not
    /// compile.
    pub fn save_state(&self, e: &mut hidisc_isa::wire::Enc) {
        let CoreStats {
            cycles,
            committed,
            committed_mem,
            dispatched,
            dispatch_stall_q,
            commit_stall_q,
            lod_events,
            ruu_full_cycles,
            lsq_full_cycles,
            mispredicts,
            cbranch_redirects,
            mem_dep_stalls,
            forwarded_loads,
            mshr_retries,
            dropped_prefetches,
            triggers_fired,
        } = *self;
        for v in [cycles, committed, committed_mem, dispatched] {
            e.u64(v);
        }
        for v in dispatch_stall_q.into_iter().chain(commit_stall_q) {
            e.u64(v);
        }
        for v in [
            lod_events,
            ruu_full_cycles,
            lsq_full_cycles,
            mispredicts,
            cbranch_redirects,
            mem_dep_stalls,
            forwarded_loads,
            mshr_retries,
            dropped_prefetches,
            triggers_fired,
        ] {
            e.u64(v);
        }
    }

    /// Restores all counters.
    pub fn load_state(
        &mut self,
        d: &mut hidisc_isa::wire::Dec,
    ) -> hidisc_isa::wire::WireResult<()> {
        self.cycles = d.u64()?;
        self.committed = d.u64()?;
        self.committed_mem = d.u64()?;
        self.dispatched = d.u64()?;
        for v in self
            .dispatch_stall_q
            .iter_mut()
            .chain(self.commit_stall_q.iter_mut())
        {
            *v = d.u64()?;
        }
        self.lod_events = d.u64()?;
        self.ruu_full_cycles = d.u64()?;
        self.lsq_full_cycles = d.u64()?;
        self.mispredicts = d.u64()?;
        self.cbranch_redirects = d.u64()?;
        self.mem_dep_stalls = d.u64()?;
        self.forwarded_loads = d.u64()?;
        self.mshr_retries = d.u64()?;
        self.dropped_prefetches = d.u64()?;
        self.triggers_fired = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_accounting() {
        let mut s = CoreStats::default();
        s.stall_dispatch(Queue::Ldq);
        s.stall_dispatch(Queue::Ldq);
        s.stall_dispatch(Queue::Cq);
        s.stall_commit(Queue::Sdq);
        assert_eq!(s.dispatch_stall_q[0], 2);
        assert_eq!(s.dispatch_stall_q[3], 1);
        assert_eq!(s.commit_stall_q[1], 1);
        assert_eq!(s.total_dispatch_stall(), 3);
    }

    #[test]
    fn stream_ipc() {
        let s = CoreStats {
            cycles: 10,
            committed: 25,
            ..Default::default()
        };
        assert!((s.stream_ipc() - 2.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().stream_ipc(), 0.0);
    }
}
