//! The architectural FIFO queues of the decoupled machine.
//!
//! One [`QueueFile`] is shared by all processors of a machine
//! configuration. Each queue is a bounded FIFO of raw 64-bit values with
//! occupancy statistics; the Slip Control Queue is a counting semaphore
//! realised as a queue of unit tokens.
//!
//! The Store Address Queue of the paper is not modelled as a separate
//! structure: store addresses wait in the Access Processor's load/store
//! queue, which plays exactly the SAQ role (address buffered, store
//! performs when the SDQ provides data).

use hidisc_isa::wire::{Dec, Enc, WireResult};
use hidisc_isa::Queue;
use std::collections::VecDeque;

/// Capacity of each queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Load Data Queue capacity.
    pub ldq: usize,
    /// Store Data Queue capacity.
    pub sdq: usize,
    /// Computation Data Queue capacity.
    pub cdq: usize,
    /// Control Queue capacity.
    pub cq: usize,
    /// Slip Control Queue capacity — this is the CMAS prefetch run-ahead
    /// distance in loop iterations (the analogue of the paper's
    /// 512-instruction trigger window).
    pub scq: usize,
}

impl QueueConfig {
    /// Default capacities used by the experiments (data queues 32 entries
    /// as in Table 1's "32 entries load store queues"; CQ 64; SCQ 64
    /// iterations).
    pub fn paper() -> QueueConfig {
        QueueConfig {
            ldq: 32,
            sdq: 32,
            cdq: 32,
            cq: 64,
            scq: 12,
        }
    }

    fn cap(&self, q: Queue) -> usize {
        match q {
            Queue::Ldq => self.ldq,
            Queue::Sdq => self.sdq,
            Queue::Cdq => self.cdq,
            Queue::Cq => self.cq,
            Queue::Scq => self.scq,
        }
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig::paper()
    }
}

/// Per-queue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Push attempts rejected because the queue was full.
    pub full_rejects: u64,
    /// Pop attempts rejected because the queue was empty.
    pub empty_rejects: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

/// The set of architectural queues.
#[derive(Debug, Clone)]
pub struct QueueFile {
    cfg: QueueConfig,
    queues: [VecDeque<u64>; 5],
    stats: [QueueStats; 5],
}

#[inline]
fn qi(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

impl QueueFile {
    /// Creates empty queues with the given capacities.
    pub fn new(cfg: QueueConfig) -> QueueFile {
        QueueFile {
            cfg,
            queues: Default::default(),
            stats: Default::default(),
        }
    }

    /// Attempts to push; returns false (and counts a reject) when full.
    pub fn try_push(&mut self, q: Queue, v: u64) -> bool {
        let i = qi(q);
        if self.queues[i].len() >= self.cfg.cap(q) {
            self.stats[i].full_rejects += 1;
            return false;
        }
        self.queues[i].push_back(v);
        self.stats[i].pushes += 1;
        let occ = self.queues[i].len();
        if occ > self.stats[i].max_occupancy {
            self.stats[i].max_occupancy = occ;
        }
        true
    }

    /// Attempts to pop; returns `None` (and counts a reject) when empty.
    pub fn try_pop(&mut self, q: Queue) -> Option<u64> {
        let i = qi(q);
        match self.queues[i].pop_front() {
            Some(v) => {
                self.stats[i].pops += 1;
                Some(v)
            }
            None => {
                self.stats[i].empty_rejects += 1;
                None
            }
        }
    }

    /// Current occupancy of `q`.
    pub fn len(&self, q: Queue) -> usize {
        self.queues[qi(q)].len()
    }

    /// True when `q` is empty.
    pub fn is_empty(&self, q: Queue) -> bool {
        self.queues[qi(q)].is_empty()
    }

    /// True when `q` is full.
    pub fn is_full(&self, q: Queue) -> bool {
        self.queues[qi(q)].len() >= self.cfg.cap(q)
    }

    /// Statistics for `q`.
    pub fn stats(&self, q: Queue) -> &QueueStats {
        &self.stats[qi(q)]
    }

    /// The configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// True when every queue is empty (used by deadlock/termination
    /// checks).
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Statistics of all five queues, in [`hidisc_isa::Queue::ALL`] order.
    pub fn all_stats(&self) -> [QueueStats; 5] {
        self.stats
    }

    /// Structural-progress fingerprint: changes whenever any queue's
    /// contents change. Reject counters and the occupancy high-water mark
    /// are deliberately excluded — they also move on cycles where nothing
    /// happens architecturally (an empty pop / full push retried every
    /// cycle), which is exactly what the machine's fast-forward skips.
    pub fn progress_token(&self) -> u64 {
        let mut h = 0u64;
        for s in &self.stats {
            h = token_mix(h, s.pushes);
            h = token_mix(h, s.pops);
        }
        h
    }

    /// Fingerprint of the queue *contents* only (no statistics): two
    /// machines whose in-flight queue data differs get different tokens.
    /// Used by the bisect state digest, which compares architectural state
    /// and deliberately ignores timing counters.
    pub fn content_token(&self, mut h: u64) -> u64 {
        for q in &self.queues {
            h = token_mix(h, q.len() as u64);
            for &v in q {
                h = token_mix(h, v);
            }
        }
        h
    }

    /// Replays the reject statistics of `k` identical idle cycles, where
    /// `delta` is the per-cycle reject delta (current stats minus a
    /// snapshot taken one idle cycle earlier). Contents-affecting counters
    /// must not have moved.
    pub fn add_idle_scaled(&mut self, delta: &[QueueStats; 5], k: u64) {
        for (s, d) in self.stats.iter_mut().zip(delta) {
            let QueueStats {
                pushes,
                pops,
                full_rejects,
                empty_rejects,
                max_occupancy,
            } = *d;
            debug_assert_eq!(
                (pushes, pops, max_occupancy),
                (0, 0, 0),
                "fast-forward applied a non-idle QueueStats delta"
            );
            s.full_rejects += full_rejects * k;
            s.empty_rejects += empty_rejects * k;
        }
    }

    /// Serialises contents and statistics (capacities come from the
    /// config, which the checkpoint header pins).
    pub fn save_state(&self, e: &mut Enc) {
        for q in &self.queues {
            e.usize(q.len());
            for &v in q {
                e.u64(v);
            }
        }
        for s in &self.stats {
            s.save_state(e);
        }
    }

    /// Restores contents and statistics from a
    /// [`save_state`](Self::save_state) stream.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        for q in self.queues.iter_mut() {
            let n = d.usize()?;
            q.clear();
            for _ in 0..n {
                q.push_back(d.u64()?);
            }
        }
        for s in self.stats.iter_mut() {
            s.load_state(d)?;
        }
        Ok(())
    }
}

impl QueueStats {
    /// Field-wise difference `self - before` of two snapshots of the same
    /// growing counters (`max_occupancy` included: 0 means unchanged).
    pub fn delta_since(&self, before: &QueueStats) -> QueueStats {
        let QueueStats {
            pushes,
            pops,
            full_rejects,
            empty_rejects,
            max_occupancy,
        } = *before;
        QueueStats {
            pushes: self.pushes - pushes,
            pops: self.pops - pops,
            full_rejects: self.full_rejects - full_rejects,
            empty_rejects: self.empty_rejects - empty_rejects,
            max_occupancy: self.max_occupancy - max_occupancy,
        }
    }

    /// Serialises the counters.
    pub fn save_state(&self, e: &mut Enc) {
        let QueueStats {
            pushes,
            pops,
            full_rejects,
            empty_rejects,
            max_occupancy,
        } = *self;
        e.u64(pushes);
        e.u64(pops);
        e.u64(full_rejects);
        e.u64(empty_rejects);
        e.usize(max_occupancy);
    }

    /// Restores the counters.
    pub fn load_state(&mut self, d: &mut Dec) -> WireResult<()> {
        self.pushes = d.u64()?;
        self.pops = d.u64()?;
        self.full_rejects = d.u64()?;
        self.empty_rejects = d.u64()?;
        self.max_occupancy = d.usize()?;
        Ok(())
    }
}

/// One step of the order-sensitive mixing hash used by the
/// progress-token fingerprints (FxHash-style multiply/rotate).
pub fn token_mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qf(cap: usize) -> QueueFile {
        QueueFile::new(QueueConfig {
            ldq: cap,
            sdq: cap,
            cdq: cap,
            cq: cap,
            scq: cap,
        })
    }

    #[test]
    fn fifo_order() {
        let mut f = qf(4);
        assert!(f.try_push(Queue::Ldq, 1));
        assert!(f.try_push(Queue::Ldq, 2));
        assert_eq!(f.try_pop(Queue::Ldq), Some(1));
        assert_eq!(f.try_pop(Queue::Ldq), Some(2));
        assert_eq!(f.try_pop(Queue::Ldq), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut f = qf(2);
        assert!(f.try_push(Queue::Sdq, 1));
        assert!(f.try_push(Queue::Sdq, 2));
        assert!(!f.try_push(Queue::Sdq, 3));
        assert!(f.is_full(Queue::Sdq));
        assert_eq!(f.stats(Queue::Sdq).full_rejects, 1);
        f.try_pop(Queue::Sdq);
        assert!(f.try_push(Queue::Sdq, 3));
    }

    #[test]
    fn queues_are_independent() {
        let mut f = qf(2);
        f.try_push(Queue::Ldq, 10);
        f.try_push(Queue::Cq, 20);
        assert_eq!(f.len(Queue::Ldq), 1);
        assert_eq!(f.len(Queue::Cq), 1);
        assert_eq!(f.len(Queue::Sdq), 0);
        assert_eq!(f.try_pop(Queue::Cq), Some(20));
        assert!(!f.all_empty());
        f.try_pop(Queue::Ldq);
        assert!(f.all_empty());
    }

    #[test]
    fn stats_track_rejects_and_highwater() {
        let mut f = qf(3);
        f.try_pop(Queue::Cdq);
        assert_eq!(f.stats(Queue::Cdq).empty_rejects, 1);
        f.try_push(Queue::Cdq, 1);
        f.try_push(Queue::Cdq, 2);
        f.try_pop(Queue::Cdq);
        f.try_push(Queue::Cdq, 3);
        assert_eq!(f.stats(Queue::Cdq).max_occupancy, 2);
        assert_eq!(f.stats(Queue::Cdq).pushes, 3);
        assert_eq!(f.stats(Queue::Cdq).pops, 1);
    }
}
