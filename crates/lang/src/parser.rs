//! The DISC recursive-descent parser and semantic checker.

use crate::ast::{BinOp, Decl, Expr, Kernel, Stmt, Ty};
use crate::lexer::{lex, Spanned, Tok};
use crate::{LangError, Result};
use std::collections::HashMap;

struct P {
    toks: Vec<Spanned>,
    at: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.at.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(LangError::Parse {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|s| s.tok.clone());
        self.at += 1;
        t
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.at += 1;
                Ok(())
            }
            other => {
                let msg = format!("expected {what}, found {other:?}");
                self.err(msg)
            }
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(n),
            other => {
                self.at -= 1;
                let msg = format!("expected identifier, found {other:?}");
                self.err(msg)
            }
        }
    }

    // ---- declarations ----

    fn decls(&mut self) -> Result<Vec<Decl>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Var) | Some(Tok::FVar) => {
                    let ty = if matches!(self.bump(), Some(Tok::Var)) {
                        Ty::Int
                    } else {
                        Ty::Float
                    };
                    let name = self.ident()?;
                    self.eat(&Tok::Semi, "`;`")?;
                    out.push(Decl::Scalar { name, ty });
                }
                Some(Tok::Arr) | Some(Tok::FArr) => {
                    let ty = if matches!(self.bump(), Some(Tok::Arr)) {
                        Ty::Int
                    } else {
                        Ty::Float
                    };
                    let name = self.ident()?;
                    self.eat(&Tok::LBracket, "`[`")?;
                    let len = match self.bump() {
                        Some(Tok::Int(n)) if n > 0 => n as u64,
                        other => {
                            self.at -= 1;
                            let msg = format!("expected positive array length, found {other:?}");
                            return self.err(msg);
                        }
                    };
                    self.eat(&Tok::RBracket, "`]`")?;
                    self.eat(&Tok::Semi, "`;`")?;
                    out.push(Decl::Array { name, ty, len });
                }
                _ => return Ok(out),
            }
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.eat(&Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            out.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace, "`}`")?;
        Ok(out)
    }

    /// An assignment without its trailing `;` (for-loop init/step).
    fn simple(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        if self.peek() == Some(&Tok::LBracket) {
            self.at += 1;
            let idx = self.expr()?;
            self.eat(&Tok::RBracket, "`]`")?;
            self.eat(&Tok::Assign, "`=`")?;
            let e = self.expr()?;
            Ok(Stmt::Store(name, idx, e))
        } else {
            self.eat(&Tok::Assign, "`=`")?;
            let e = self.expr()?;
            Ok(Stmt::Assign(name, e))
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            Some(Tok::If) => {
                self.at += 1;
                self.eat(&Tok::LParen, "`(`")?;
                let c = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                let then = self.block()?;
                let els = if self.peek() == Some(&Tok::Else) {
                    self.at += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then, els))
            }
            Some(Tok::While) => {
                self.at += 1;
                self.eat(&Tok::LParen, "`(`")?;
                let c = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(Stmt::While(c, self.block()?))
            }
            Some(Tok::For) => {
                self.at += 1;
                self.eat(&Tok::LParen, "`(`")?;
                let init = self.simple()?;
                self.eat(&Tok::Semi, "`;`")?;
                let cond = self.expr()?;
                self.eat(&Tok::Semi, "`;`")?;
                let step = self.simple()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(Stmt::For(
                    Box::new(init),
                    cond,
                    Box::new(step),
                    self.block()?,
                ))
            }
            Some(Tok::Break) => {
                self.at += 1;
                self.eat(&Tok::Semi, "`;`")?;
                Ok(Stmt::Break)
            }
            Some(Tok::Continue) => {
                self.at += 1;
                self.eat(&Tok::Semi, "`;`")?;
                Ok(Stmt::Continue)
            }
            Some(Tok::Out) => {
                self.at += 1;
                self.eat(&Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                self.eat(&Tok::Semi, "`;`")?;
                Ok(Stmt::Out(e))
            }
            _ => {
                let s = self.simple()?;
                self.eat(&Tok::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.bitor()
    }

    fn bitor(&mut self) -> Result<Expr> {
        let mut e = self.bitxor()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.at += 1;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(self.bitxor()?));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr> {
        let mut e = self.bitand()?;
        while self.peek() == Some(&Tok::Caret) {
            self.at += 1;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(self.bitand()?));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr> {
        let mut e = self.cmp()?;
        while self.peek() == Some(&Tok::Amp) {
            self.at += 1;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(self.cmp()?));
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<Expr> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                Some(Tok::EqEq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => return Ok(e),
            };
            self.at += 1;
            e = Expr::Bin(op, Box::new(e), Box::new(self.shift()?));
        }
    }

    fn shift(&mut self) -> Result<Expr> {
        let mut e = self.addsub()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Shl) => BinOp::Shl,
                Some(Tok::Shr) => BinOp::Shr,
                _ => return Ok(e),
            };
            self.at += 1;
            e = Expr::Bin(op, Box::new(e), Box::new(self.addsub()?));
        }
    }

    fn addsub(&mut self) -> Result<Expr> {
        let mut e = self.muldiv()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(e),
            };
            self.at += 1;
            e = Expr::Bin(op, Box::new(e), Box::new(self.muldiv()?));
        }
    }

    fn muldiv(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(e),
            };
            self.at += 1;
            e = Expr::Bin(op, Box::new(e), Box::new(self.unary()?));
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Tok::Minus) {
            self.at += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Float(v)) => Ok(Expr::Float(v)),
            Some(Tok::KwInt) => {
                self.eat(&Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(Expr::ToInt(Box::new(e)))
            }
            Some(Tok::KwFloat) => {
                self.eat(&Tok::LParen, "`(`")?;
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(Expr::ToFloat(Box::new(e)))
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(n)) => {
                if self.peek() == Some(&Tok::LBracket) {
                    self.at += 1;
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket, "`]`")?;
                    Ok(Expr::Index(n, Box::new(idx)))
                } else {
                    Ok(Expr::Var(n))
                }
            }
            other => {
                self.at -= 1;
                let msg = format!("expected expression, found {other:?}");
                self.err(msg)
            }
        }
    }
}

/// Symbol table used by the checker, the evaluator and codegen.
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    /// Scalar name → type.
    pub scalars: HashMap<String, Ty>,
    /// Array name → (type, length).
    pub arrays: HashMap<String, (Ty, u64)>,
}

impl Symbols {
    /// Builds the table from declarations, rejecting duplicates.
    pub fn build(k: &Kernel) -> Result<Symbols> {
        let mut s = Symbols::default();
        for d in &k.decls {
            match d {
                Decl::Scalar { name, ty } => {
                    if s.scalars.insert(name.clone(), *ty).is_some() || s.arrays.contains_key(name)
                    {
                        return Err(LangError::Sema(format!(
                            "duplicate declaration of `{name}`"
                        )));
                    }
                }
                Decl::Array { name, ty, len } => {
                    if s.arrays.insert(name.clone(), (*ty, *len)).is_some()
                        || s.scalars.contains_key(name)
                    {
                        return Err(LangError::Sema(format!(
                            "duplicate declaration of `{name}`"
                        )));
                    }
                }
            }
        }
        Ok(s)
    }
}

/// Computes the type of an expression, checking it on the way.
pub fn ty_of(e: &Expr, sym: &Symbols) -> Result<Ty> {
    match e {
        Expr::Int(_) => Ok(Ty::Int),
        Expr::Float(_) => Ok(Ty::Float),
        Expr::Var(n) => sym
            .scalars
            .get(n)
            .copied()
            .ok_or_else(|| LangError::Sema(format!("undeclared variable `{n}`"))),
        Expr::Index(n, idx) => {
            let (ty, _) = sym
                .arrays
                .get(n)
                .copied()
                .ok_or_else(|| LangError::Sema(format!("undeclared array `{n}`")))?;
            if ty_of(idx, sym)? != Ty::Int {
                return Err(LangError::Sema(format!("index into `{n}` must be int")));
            }
            Ok(ty)
        }
        Expr::Bin(op, a, b) => {
            let ta = ty_of(a, sym)?;
            let tb = ty_of(b, sym)?;
            if ta != tb {
                return Err(LangError::Sema(format!(
                    "type mismatch in {op:?}: {ta:?} vs {tb:?}"
                )));
            }
            if op.int_only() && ta != Ty::Int {
                return Err(LangError::Sema(format!("{op:?} is integer-only")));
            }
            Ok(if op.is_cmp() { Ty::Int } else { ta })
        }
        Expr::Neg(a) => ty_of(a, sym),
        Expr::ToInt(a) => {
            ty_of(a, sym)?;
            Ok(Ty::Int)
        }
        Expr::ToFloat(a) => {
            ty_of(a, sym)?;
            Ok(Ty::Float)
        }
    }
}

fn check_stmts(stmts: &[Stmt], sym: &Symbols) -> Result<()> {
    check_stmts_at(stmts, sym, 0)
}

fn check_stmts_at(stmts: &[Stmt], sym: &Symbols, loop_depth: u32) -> Result<()> {
    for s in stmts {
        match s {
            Stmt::Assign(n, e) => {
                let tv =
                    sym.scalars.get(n).copied().ok_or_else(|| {
                        LangError::Sema(format!("assignment to undeclared `{n}`"))
                    })?;
                if ty_of(e, sym)? != tv {
                    return Err(LangError::Sema(format!("type mismatch assigning `{n}`")));
                }
            }
            Stmt::Store(n, idx, e) => {
                let (ta, _) =
                    sym.arrays.get(n).copied().ok_or_else(|| {
                        LangError::Sema(format!("store to undeclared array `{n}`"))
                    })?;
                if ty_of(idx, sym)? != Ty::Int {
                    return Err(LangError::Sema(format!("index into `{n}` must be int")));
                }
                if ty_of(e, sym)? != ta {
                    return Err(LangError::Sema(format!("type mismatch storing to `{n}`")));
                }
            }
            Stmt::If(c, a, b) => {
                if ty_of(c, sym)? != Ty::Int {
                    return Err(LangError::Sema("if condition must be int".into()));
                }
                check_stmts_at(a, sym, loop_depth)?;
                check_stmts_at(b, sym, loop_depth)?;
            }
            Stmt::While(c, body) => {
                if ty_of(c, sym)? != Ty::Int {
                    return Err(LangError::Sema("while condition must be int".into()));
                }
                check_stmts_at(body, sym, loop_depth + 1)?;
            }
            Stmt::For(init, c, step, body) => {
                check_stmts_at(std::slice::from_ref(init), sym, loop_depth)?;
                if ty_of(c, sym)? != Ty::Int {
                    return Err(LangError::Sema("for condition must be int".into()));
                }
                check_stmts_at(std::slice::from_ref(step), sym, loop_depth)?;
                check_stmts_at(body, sym, loop_depth + 1)?;
            }
            Stmt::Out(e) => {
                ty_of(e, sym)?;
            }
            Stmt::Break | Stmt::Continue => {
                if loop_depth == 0 {
                    return Err(LangError::Sema(
                        "`break`/`continue` outside of a loop".into(),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Parses and semantically checks a DISC kernel.
pub fn parse(src: &str) -> Result<Kernel> {
    let toks = lex(src)?;
    let mut p = P { toks, at: 0 };
    let decls = p.decls()?;
    let mut body = Vec::new();
    while p.peek().is_some() {
        body.push(p.stmt()?);
    }
    let k = Kernel { decls, body };
    let sym = Symbols::build(&k)?;
    check_stmts(&k.body, &sym)?;
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_representative_kernel() {
        let k = parse(
            r"
            var i; var j; fvar acc;
            arr idx[16]; farr v[16];
            for (i = 0; i < 16; i = i + 1) {
                j = idx[i];
                acc = acc + v[j] * 2.0;
                if (j & 1) { idx[i] = j + 1; } else { idx[i] = 0; }
            }
            out(acc);
        ",
        )
        .unwrap();
        assert_eq!(k.decls.len(), 5);
        assert_eq!(k.body.len(), 2);
        assert!(matches!(&k.body[0], Stmt::For(..)));
        assert!(matches!(&k.body[1], Stmt::Out(_)));
    }

    #[test]
    fn precedence() {
        let k = parse("var x;\nx = 1 + 2 * 3;").unwrap();
        match &k.body[0] {
            Stmt::Assign(_, Expr::Bin(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let k = parse("var x;\nx = 1 < 2 & 3 < 4;").unwrap();
        match &k.body[0] {
            Stmt::Assign(_, Expr::Bin(BinOp::And, a, b)) => {
                assert!(matches!(**a, Expr::Bin(BinOp::Lt, _, _)));
                assert!(matches!(**b, Expr::Bin(BinOp::Lt, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn type_errors() {
        assert!(parse("var x; fvar y;\nx = y;").is_err());
        assert!(parse("fvar y;\ny = 1 & 2;").is_err()); // assign int to float
        assert!(parse("fvar a; fvar b; var c;\nc = int(a % b);").is_err()); // % on floats
        assert!(parse("var x;\nx = nope;").is_err());
        assert!(parse("arr a[4]; fvar f;\na[f] = 1;").is_err()); // float index
        assert!(parse("fvar f;\nif (f) { }").is_err()); // float condition
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse("var x; var x;").is_err());
        assert!(parse("var a; arr a[4];").is_err());
    }

    #[test]
    fn conversions_typecheck() {
        let k = parse("var i; fvar f;\nf = float(i) * 0.5;\ni = int(f) + 1;").unwrap();
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn parse_errors_have_lines() {
        match parse("var x;\nx = ;") {
            Err(LangError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
