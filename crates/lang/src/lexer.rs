//! The DISC lexer.

use crate::{LangError, Result};

/// Tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Int(i64),
    Float(f64),
    Ident(String),
    // keywords
    Var,
    FVar,
    Arr,
    FArr,
    If,
    Else,
    While,
    For,
    Out,
    Break,
    Continue,
    KwInt,
    KwFloat,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Assign,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenises DISC source.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                out.push(Spanned {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(Spanned {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    tok: Tok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    tok: Tok::RBracket,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    tok: Tok::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(Spanned {
                    tok: Tok::Slash,
                    line,
                });
                i += 1;
            }
            '%' => {
                out.push(Spanned {
                    tok: Tok::Percent,
                    line,
                });
                i += 1;
            }
            '&' => {
                out.push(Spanned {
                    tok: Tok::Amp,
                    line,
                });
                i += 1;
            }
            '|' => {
                out.push(Spanned {
                    tok: Tok::Pipe,
                    line,
                });
                i += 1;
            }
            '^' => {
                out.push(Spanned {
                    tok: Tok::Caret,
                    line,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'<' {
                    out.push(Spanned {
                        tok: Tok::Shl,
                        line,
                    });
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Le, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Spanned {
                        tok: Tok::Shr,
                        line,
                    });
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Ne, line });
                    i += 2;
                } else {
                    return Err(LangError::Lex {
                        at: i,
                        msg: "lone `!`".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.' {
                        if is_float {
                            return Err(LangError::Lex {
                                at: i,
                                msg: "second `.` in number".into(),
                            });
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LangError::Lex {
                        at: start,
                        msg: format!("bad float `{text}`"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Float(v),
                        line,
                    });
                } else if let Some(hex) = text.strip_prefix("0x") {
                    let v = i64::from_str_radix(hex, 16).map_err(|_| LangError::Lex {
                        at: start,
                        msg: format!("bad hex `{text}`"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                } else if text.starts_with("0x") {
                    unreachable!()
                } else {
                    // hex is handled via identifier-ish scan below for 0x..;
                    // plain decimal here:
                    let v: i64 = text.parse().map_err(|_| LangError::Lex {
                        at: start,
                        msg: format!("bad int `{text}`"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                }
                // hex literals `0x...` — the digit scan stops at 'x';
                // patch up here.
                if i < b.len() && (b[i] == b'x' || b[i] == b'X') && text == "0" {
                    i += 1;
                    let hstart = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v =
                        i64::from_str_radix(&src[hstart..i], 16).map_err(|_| LangError::Lex {
                            at: hstart,
                            msg: "bad hex literal".into(),
                        })?;
                    // replace the `0` we just pushed
                    out.pop();
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "var" => Tok::Var,
                    "fvar" => Tok::FVar,
                    "arr" => Tok::Arr,
                    "farr" => Tok::FArr,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "out" => Tok::Out,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "int" => Tok::KwInt,
                    "float" => Tok::KwFloat,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            other => {
                return Err(LangError::Lex {
                    at: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("var x; fvar y;"),
            vec![
                Tok::Var,
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::FVar,
                Tok::Ident("y".into()),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 0x10"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Int(16)]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< <= << > >= >> == != = & | ^"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Shl,
                Tok::Gt,
                Tok::Ge,
                Tok::Shr,
                Tok::EqEq,
                Tok::Ne,
                Tok::Assign,
                Tok::Amp,
                Tok::Pipe,
                Tok::Caret
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let s = lex("var x; // comment\nvar y;").unwrap();
        assert_eq!(s.last().unwrap().line, 2);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("var $x;").is_err());
        assert!(lex("x !").is_err());
        assert!(lex("1.2.3").is_err());
    }
}
