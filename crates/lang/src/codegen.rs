//! DISA code generation for DISC kernels.
//!
//! Register conventions:
//!
//! * `r1..r7`  — integer expression temporaries (a small stack);
//! * `r9`      — address scratch;
//! * `r10..r25` — integer scalar variables;
//! * `r26`     — the `out(...)` cursor;
//! * `f1..f7`  — float expression temporaries;
//! * `f8..f31` — float scalar variables.
//!
//! Arrays and the float constant pool live at fixed addresses assigned by
//! [`Layout`]; `li` materialises their (32-bit-range) base addresses.
//! Expression evaluation is a straightforward temp-stack scheme: nested
//! expressions deeper than the temp file are a compile-time error — deep
//! kernels should introduce scalars, as on a real register machine.

use crate::ast::{BinOp, Decl, Expr, Kernel, Stmt, Ty};
use crate::parser::Symbols;
use crate::{LangError, Result};
use hidisc_isa::builder::ProgramBuilder;
use hidisc_isa::instr::BranchCond;
use hidisc_isa::mem::Memory;
use hidisc_isa::op::{FpBinOp, FpCmpOp, FpUnOp, IntOp};
use hidisc_isa::{FpReg, IntReg, Program};
use std::collections::HashMap;

/// Address-space layout for compiled kernels.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// First array base (arrays packed upward, 4 KiB aligned).
    pub arrays_base: u64,
    /// Output cells base.
    pub out_base: u64,
    /// Float constant pool base.
    pub pool_base: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            arrays_base: 0x0100_0000,
            out_base: 0x0300_0000,
            pool_base: 0x0310_0000,
        }
    }
}

/// A compiled kernel: the DISA binary plus the memory map needed to seed
/// inputs and read outputs.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The sequential binary (feed it to `hidisc-slicer`).
    pub prog: Program,
    /// Symbol table.
    pub symbols: Symbols,
    /// Array name → base address.
    pub array_base: HashMap<String, u64>,
    /// Output cells base (each `out` writes 8 bytes and advances).
    pub out_base: u64,
    /// Float constant pool (address, bits).
    pub pool: Vec<(u64, u64)>,
}

impl CompiledKernel {
    /// A memory image with the constant pool installed and arrays zeroed.
    pub fn initial_memory(&self) -> Memory {
        let mut mem = Memory::new();
        for &(addr, bits) in &self.pool {
            mem.write_u64(addr, bits).unwrap();
        }
        mem
    }

    /// Writes an integer array's initial contents.
    pub fn set_array_i64(&self, mem: &mut Memory, name: &str, vals: &[i64]) {
        let base = self.array_base[name];
        mem.write_i64_slice(base, vals).unwrap();
    }

    /// Writes a float array's initial contents.
    pub fn set_array_f64(&self, mem: &mut Memory, name: &str, vals: &[f64]) {
        let base = self.array_base[name];
        mem.write_f64_slice(base, vals).unwrap();
    }

    /// Reads back an integer array.
    pub fn get_array_i64(&self, mem: &Memory, name: &str, len: usize) -> Vec<i64> {
        mem.read_i64_slice(self.array_base[name], len).unwrap()
    }

    /// Reads back a float array.
    pub fn get_array_f64(&self, mem: &Memory, name: &str, len: usize) -> Vec<f64> {
        (0..len)
            .map(|k| mem.read_f64(self.array_base[name] + 8 * k as u64).unwrap())
            .collect()
    }

    /// Reads the `k`-th `out(...)` cell as raw bits.
    pub fn out_bits(&self, mem: &Memory, k: usize) -> u64 {
        mem.read_u64(self.out_base + 8 * k as u64).unwrap()
    }
}

const INT_TEMPS: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];
const FP_TEMPS: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];
const ADDR_SCRATCH: u8 = 9;
const OUT_CURSOR: u8 = 26;
const FIRST_INT_VAR: u8 = 10;
const LAST_INT_VAR: u8 = 25;
const FIRST_FP_VAR: u8 = 8;
const LAST_FP_VAR: u8 = 31;

/// A value produced by expression codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    I(IntReg),
    F(FpReg),
}

struct Cg<'a> {
    b: &'a mut ProgramBuilder,
    sym: &'a Symbols,
    int_vars: HashMap<String, IntReg>,
    fp_vars: HashMap<String, FpReg>,
    array_base: HashMap<String, u64>,
    pool: HashMap<u64, u64>, // bits -> addr
    pool_next: u64,
    int_depth: usize,
    fp_depth: usize,
    labels: u32,
    /// Innermost-first stack of `(continue_target, break_target)` labels.
    loop_stack: Vec<(String, String)>,
}

impl Cg<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        self.labels += 1;
        format!("L{}_{tag}", self.labels)
    }

    fn push_i(&mut self) -> Result<IntReg> {
        if self.int_depth >= INT_TEMPS.len() {
            return Err(LangError::Codegen(
                "integer expression too deep — introduce a scalar variable".into(),
            ));
        }
        let r = IntReg::new(INT_TEMPS[self.int_depth]);
        self.int_depth += 1;
        Ok(r)
    }

    fn push_f(&mut self) -> Result<FpReg> {
        if self.fp_depth >= FP_TEMPS.len() {
            return Err(LangError::Codegen(
                "float expression too deep — introduce a scalar variable".into(),
            ));
        }
        let r = FpReg::new(FP_TEMPS[self.fp_depth]);
        self.fp_depth += 1;
        Ok(r)
    }

    fn pop(&mut self, v: Val) {
        match v {
            Val::I(r) => {
                if INT_TEMPS.contains(&(r.index() as u8)) {
                    self.int_depth -= 1;
                }
            }
            Val::F(r) => {
                if FP_TEMPS.contains(&(r.index() as u8)) {
                    self.fp_depth -= 1;
                }
            }
        }
    }

    fn pool_addr(&mut self, bits: u64) -> u64 {
        if let Some(&a) = self.pool.get(&bits) {
            return a;
        }
        let a = self.pool_next;
        self.pool_next += 8;
        self.pool.insert(bits, a);
        a
    }

    /// Loads the effective address `base(name) + idx*8` into the address
    /// scratch register. The index value register is released.
    fn gen_addr(&mut self, name: &str, idx: &Expr) -> Result<IntReg> {
        let iv = self.gen_expr(idx)?;
        let Val::I(ir) = iv else {
            unreachable!("typechecked index")
        };
        let addr = IntReg::new(ADDR_SCRATCH);
        self.b.slli(addr, ir, 3);
        self.pop(iv);
        let base = self.array_base[name] as i64;
        // addr += base via a temp li (base fits i32 by layout construction)
        let t = self.push_i()?;
        self.b.li(t, base);
        self.b.add(addr, addr, t);
        self.pop(Val::I(t));
        Ok(addr)
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<Val> {
        match e {
            Expr::Int(v) => {
                let t = self.push_i()?;
                self.b.li(t, *v);
                Ok(Val::I(t))
            }
            Expr::Float(v) => {
                let addr = self.pool_addr(v.to_bits());
                let ti = self.push_i()?;
                self.b.li(ti, addr as i64);
                let tf = self.push_f()?;
                self.b.lfd(tf, ti, 0);
                // release the address temp but keep the float
                self.int_depth -= 1;
                Ok(Val::F(tf))
            }
            Expr::Var(n) => {
                if let Some(&r) = self.int_vars.get(n) {
                    Ok(Val::I(r))
                } else {
                    Ok(Val::F(self.fp_vars[n]))
                }
            }
            Expr::Index(n, idx) => {
                let (ty, _) = self.sym.arrays[n];
                let addr = self.gen_addr(n, idx)?;
                match ty {
                    Ty::Int => {
                        let t = self.push_i()?;
                        self.b.ld(t, addr, 0);
                        Ok(Val::I(t))
                    }
                    Ty::Float => {
                        let t = self.push_f()?;
                        self.b.lfd(t, addr, 0);
                        Ok(Val::F(t))
                    }
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.gen_expr(a)?;
                let vb = self.gen_expr(b)?;
                let out = match (va, vb) {
                    (Val::I(x), Val::I(y)) => {
                        self.pop(vb);
                        self.pop(va);
                        let d = self.push_i()?;
                        self.gen_int_bin(*op, d, x, y);
                        Val::I(d)
                    }
                    (Val::F(x), Val::F(y)) => {
                        self.pop(vb);
                        self.pop(va);
                        if op.is_cmp() {
                            let d = self.push_i()?;
                            self.gen_float_cmp(*op, d, x, y);
                            Val::I(d)
                        } else {
                            let d = self.push_f()?;
                            let fop = match op {
                                BinOp::Add => FpBinOp::Add,
                                BinOp::Sub => FpBinOp::Sub,
                                BinOp::Mul => FpBinOp::Mul,
                                BinOp::Div => FpBinOp::Div,
                                other => unreachable!("typechecked: {other:?}"),
                            };
                            self.b.fp_bin(fop, d, x, y);
                            Val::F(d)
                        }
                    }
                    _ => unreachable!("typechecked"),
                };
                Ok(out)
            }
            Expr::Neg(a) => {
                let va = self.gen_expr(a)?;
                match va {
                    Val::I(x) => {
                        self.pop(va);
                        let d = self.push_i()?;
                        self.b.sub(d, IntReg::ZERO, x);
                        Ok(Val::I(d))
                    }
                    Val::F(x) => {
                        self.pop(va);
                        let d = self.push_f()?;
                        self.b.fp_un(FpUnOp::Neg, d, x);
                        Ok(Val::F(d))
                    }
                }
            }
            Expr::ToInt(a) => {
                let va = self.gen_expr(a)?;
                match va {
                    Val::I(_) => Ok(va),
                    Val::F(x) => {
                        self.pop(va);
                        let d = self.push_i()?;
                        self.b.cvt_fi(d, x);
                        Ok(Val::I(d))
                    }
                }
            }
            Expr::ToFloat(a) => {
                let va = self.gen_expr(a)?;
                match va {
                    Val::F(_) => Ok(va),
                    Val::I(x) => {
                        self.pop(va);
                        let d = self.push_f()?;
                        self.b.cvt_if(d, x);
                        Ok(Val::F(d))
                    }
                }
            }
        }
    }

    fn gen_int_bin(&mut self, op: BinOp, d: IntReg, x: IntReg, y: IntReg) {
        let b = &mut *self.b;
        match op {
            BinOp::Add => b.int_op(IntOp::Add, d, x, y),
            BinOp::Sub => b.int_op(IntOp::Sub, d, x, y),
            BinOp::Mul => b.int_op(IntOp::Mul, d, x, y),
            BinOp::Div => b.int_op(IntOp::Div, d, x, y),
            BinOp::Rem => b.int_op(IntOp::Rem, d, x, y),
            BinOp::And => b.int_op(IntOp::And, d, x, y),
            BinOp::Or => b.int_op(IntOp::Or, d, x, y),
            BinOp::Xor => b.int_op(IntOp::Xor, d, x, y),
            BinOp::Shl => b.int_op(IntOp::Sll, d, x, y),
            BinOp::Shr => b.int_op(IntOp::Sra, d, x, y),
            BinOp::Lt => b.int_op(IntOp::Slt, d, x, y),
            BinOp::Gt => b.int_op(IntOp::Slt, d, y, x),
            BinOp::Le => b.int_op(IntOp::Slt, d, y, x).int_opi(IntOp::Xor, d, d, 1),
            BinOp::Ge => b.int_op(IntOp::Slt, d, x, y).int_opi(IntOp::Xor, d, d, 1),
            BinOp::Eq => b.int_op(IntOp::Xor, d, x, y).int_opi(IntOp::Sltu, d, d, 1),
            BinOp::Ne => {
                b.int_op(IntOp::Xor, d, x, y);
                b.int_op(IntOp::Sltu, d, IntReg::ZERO, d)
            }
        };
    }

    fn gen_float_cmp(&mut self, op: BinOp, d: IntReg, x: FpReg, y: FpReg) {
        let b = &mut *self.b;
        match op {
            BinOp::Lt => b.fp_cmp(FpCmpOp::Lt, d, x, y),
            BinOp::Gt => b.fp_cmp(FpCmpOp::Lt, d, y, x),
            BinOp::Le => b.fp_cmp(FpCmpOp::Le, d, x, y),
            BinOp::Ge => b.fp_cmp(FpCmpOp::Le, d, y, x),
            BinOp::Eq => b.fp_cmp(FpCmpOp::Eq, d, x, y),
            BinOp::Ne => b.fp_cmp(FpCmpOp::Eq, d, x, y).int_opi(IntOp::Xor, d, d, 1),
            other => unreachable!("not a comparison: {other:?}"),
        };
    }

    fn gen_stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            debug_assert_eq!(self.int_depth, 0);
            debug_assert_eq!(self.fp_depth, 0);
            match s {
                Stmt::Assign(n, e) => {
                    let v = self.gen_expr(e)?;
                    match v {
                        Val::I(src) => {
                            let dst = self.int_vars[n];
                            self.b.add(dst, src, IntReg::ZERO);
                        }
                        Val::F(src) => {
                            let dst = self.fp_vars[n];
                            self.b.fp_un(FpUnOp::Mov, dst, src);
                        }
                    }
                    self.pop(v);
                }
                Stmt::Store(n, idx, e) => {
                    // Evaluate the value first (it may use the address
                    // scratch internally for its own array reads).
                    let v = self.gen_expr(e)?;
                    let addr = self.gen_addr(n, idx)?;
                    match v {
                        Val::I(src) => self.b.sd(src, addr, 0),
                        Val::F(src) => self.b.sfd(src, addr, 0),
                    };
                    self.pop(v);
                }
                Stmt::If(c, then, els) => {
                    let else_l = self.fresh("else");
                    let join_l = self.fresh("join");
                    let v = self.gen_expr(c)?;
                    let Val::I(cr) = v else {
                        unreachable!("typechecked")
                    };
                    self.b
                        .branch(BranchCond::Eq, cr, IntReg::ZERO, else_l.clone());
                    self.pop(v);
                    self.gen_stmts(then)?;
                    self.b.jump(join_l.clone());
                    self.b.label(else_l);
                    self.gen_stmts(els)?;
                    self.b.label(join_l);
                }
                Stmt::While(c, body) => {
                    let head = self.fresh("while");
                    let exit = self.fresh("done");
                    self.b.label(head.clone());
                    let v = self.gen_expr(c)?;
                    let Val::I(cr) = v else {
                        unreachable!("typechecked")
                    };
                    self.b
                        .branch(BranchCond::Eq, cr, IntReg::ZERO, exit.clone());
                    self.pop(v);
                    self.loop_stack.push((head.clone(), exit.clone()));
                    self.gen_stmts(body)?;
                    self.loop_stack.pop();
                    self.b.jump(head);
                    self.b.label(exit);
                }
                Stmt::For(init, c, step, body) => {
                    self.gen_stmts(std::slice::from_ref(init))?;
                    let head = self.fresh("for");
                    let cont = self.fresh("step");
                    let exit = self.fresh("done");
                    self.b.label(head.clone());
                    let v = self.gen_expr(c)?;
                    let Val::I(cr) = v else {
                        unreachable!("typechecked")
                    };
                    self.b
                        .branch(BranchCond::Eq, cr, IntReg::ZERO, exit.clone());
                    self.pop(v);
                    // `continue` jumps to the step clause, as in C.
                    self.loop_stack.push((cont.clone(), exit.clone()));
                    self.gen_stmts(body)?;
                    self.loop_stack.pop();
                    self.b.label(cont);
                    self.gen_stmts(std::slice::from_ref(step))?;
                    self.b.jump(head);
                    self.b.label(exit);
                }
                Stmt::Break => {
                    let (_, exit) = self
                        .loop_stack
                        .last()
                        .cloned()
                        .ok_or_else(|| LangError::Codegen("break outside loop".into()))?;
                    self.b.jump(exit);
                }
                Stmt::Continue => {
                    let (cont, _) = self
                        .loop_stack
                        .last()
                        .cloned()
                        .ok_or_else(|| LangError::Codegen("continue outside loop".into()))?;
                    self.b.jump(cont);
                }
                Stmt::Out(e) => {
                    let v = self.gen_expr(e)?;
                    let cur = IntReg::new(OUT_CURSOR);
                    match v {
                        Val::I(src) => self.b.sd(src, cur, 0),
                        Val::F(src) => self.b.sfd(src, cur, 0),
                    };
                    self.b.addi(cur, cur, 8);
                    self.pop(v);
                }
            }
        }
        Ok(())
    }
}

/// Compiles a checked kernel to a DISA binary.
pub fn compile_kernel(name: &str, k: &Kernel, layout: &Layout) -> Result<CompiledKernel> {
    let sym = Symbols::build(k)?;

    // Allocate scalar registers.
    let mut int_vars = HashMap::new();
    let mut fp_vars = HashMap::new();
    let mut next_i = FIRST_INT_VAR;
    let mut next_f = FIRST_FP_VAR;
    // Deterministic allocation order: declaration order.
    for d in &k.decls {
        if let Decl::Scalar { name, ty } = d {
            match ty {
                Ty::Int => {
                    if next_i > LAST_INT_VAR {
                        return Err(LangError::Codegen("too many integer variables".into()));
                    }
                    int_vars.insert(name.clone(), IntReg::new(next_i));
                    next_i += 1;
                }
                Ty::Float => {
                    if next_f > LAST_FP_VAR {
                        return Err(LangError::Codegen("too many float variables".into()));
                    }
                    fp_vars.insert(name.clone(), FpReg::new(next_f));
                    next_f += 1;
                }
            }
        }
    }

    // Lay out arrays (4 KiB aligned, packed).
    let mut array_base = HashMap::new();
    let mut next = layout.arrays_base;
    for d in &k.decls {
        if let Decl::Array { name, len, .. } = d {
            array_base.insert(name.clone(), next);
            next += (len * 8).div_ceil(4096) * 4096;
            if next > i32::MAX as u64 {
                return Err(LangError::Codegen(
                    "arrays exceed the 31-bit address range".into(),
                ));
            }
        }
    }

    let mut b = ProgramBuilder::new(name);
    // Prologue: zero the scalar registers (defined initial state) and set
    // the out cursor.
    for r in int_vars.values() {
        b.li(*r, 0);
    }
    for r in fp_vars.values() {
        b.cvt_if(*r, IntReg::ZERO);
    }
    b.li(IntReg::new(OUT_CURSOR), layout.out_base as i64);

    let mut cg = Cg {
        b: &mut b,
        sym: &sym,
        int_vars,
        fp_vars,
        array_base: array_base.clone(),
        pool: HashMap::new(),
        pool_next: layout.pool_base,
        int_depth: 0,
        fp_depth: 0,
        labels: 0,
        loop_stack: Vec::new(),
    };
    cg.gen_stmts(&k.body)?;
    let pool: Vec<(u64, u64)> = cg.pool.iter().map(|(&bits, &addr)| (addr, bits)).collect();
    b.halt();

    let prog = b
        .finish()
        .map_err(|e| LangError::Codegen(format!("internal label error: {e}")))?;
    Ok(CompiledKernel {
        prog,
        symbols: sym,
        array_base,
        out_base: layout.out_base,
        pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use hidisc_isa::interp::Interp;

    fn run_disa(src: &str) -> (CompiledKernel, Memory) {
        let k = parse(src).unwrap();
        let c = compile_kernel("t", &k, &Layout::default()).unwrap();
        c.prog.validate().unwrap();
        let mut i = Interp::new(&c.prog, c.initial_memory());
        i.run(5_000_000).unwrap();
        let mem = i.mem.clone();
        (c, mem)
    }

    #[test]
    fn sum_loop_matches() {
        let (c, mem) =
            run_disa("var i; var s;\nfor (i = 1; i <= 10; i = i + 1) { s = s + i; }\nout(s);");
        assert_eq!(c.out_bits(&mem, 0) as i64, 55);
    }

    #[test]
    fn float_constants_via_pool() {
        let (c, mem) = run_disa("fvar x;\nx = 2.5 * 4.0 + 0.5;\nout(x);");
        assert_eq!(f64::from_bits(c.out_bits(&mem, 0)), 10.5);
        assert!(c.pool.len() >= 3);
    }

    #[test]
    fn arrays_round_trip() {
        let k = parse("var i; arr a[8];\nfor (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }").unwrap();
        let c = compile_kernel("t", &k, &Layout::default()).unwrap();
        let mut i = Interp::new(&c.prog, c.initial_memory());
        i.run(100_000).unwrap();
        assert_eq!(
            c.get_array_i64(&i.mem, "a", 8),
            vec![0, 3, 6, 9, 12, 15, 18, 21]
        );
    }

    #[test]
    fn deep_expression_rejected() {
        // 8 nested parens of (1 + ...) exceed the 7-temp stack.
        let src = "var x;\nx = 1+(1+(1+(1+(1+(1+(1+(1+1)))))));";
        let k = parse(src).unwrap();
        assert!(matches!(
            compile_kernel("t", &k, &Layout::default()),
            Err(LangError::Codegen(_))
        ));
    }

    #[test]
    fn too_many_variables_rejected() {
        let decls: String = (0..20).map(|i| format!("var v{i}; ")).collect();
        let k = parse(&decls).unwrap();
        assert!(matches!(
            compile_kernel("t", &k, &Layout::default()),
            Err(LangError::Codegen(_))
        ));
    }

    #[test]
    fn out_cursor_advances() {
        let (c, mem) = run_disa("var i;\nfor (i = 0; i < 4; i = i + 1) { out(i * 7); }");
        for k in 0..4 {
            assert_eq!(c.out_bits(&mem, k) as i64, k as i64 * 7);
        }
    }
}

#[cfg(test)]
mod flow_codegen_tests {
    use super::*;
    use crate::parser::parse;
    use hidisc_isa::interp::Interp;

    fn run_outs(src: &str) -> Vec<i64> {
        let k = parse(src).unwrap();
        let c = compile_kernel("t", &k, &Layout::default()).unwrap();
        c.prog.validate().unwrap();
        let mut i = Interp::new(&c.prog, c.initial_memory());
        i.run(1_000_000).unwrap();
        // count outs by running the oracle
        let o = crate::eval::evaluate(&k, &std::collections::HashMap::new(), 1_000_000).unwrap();
        (0..o.outs.len())
            .map(|n| c.out_bits(&i.mem, n) as i64)
            .collect()
    }

    #[test]
    fn break_and_continue_compile_correctly() {
        let outs = run_outs(
            r"
            var i; var j; var n;
            for (i = 0; i < 8; i = i + 1) {
                if (i % 3 == 0) { continue; }
                for (j = 0; j < 8; j = j + 1) {
                    if (j > i) { break; }
                    n = n + 1;
                }
            }
            out(n); out(i);
        ",
        );
        // Oracle agreement is the real check; recompute natively here too:
        let mut n = 0;
        for i in 0..8 {
            if i % 3 == 0 {
                continue;
            }
            for j in 0..8 {
                if j > i {
                    break;
                }
                n += 1;
            }
        }
        assert_eq!(outs, vec![n, 8]);
    }

    #[test]
    fn while_break_compiles() {
        let outs = run_outs("var x;\nwhile (1) { x = x + 2; if (x >= 10) { break; } }\nout(x);");
        assert_eq!(outs, vec![10]);
    }
}
