//! # hidisc-lang — the DISC kernel language
//!
//! In the paper's toolchain, benchmarks are written in C, compiled by a
//! gcc retargeted to PISA, and the resulting *binary* is what the HiDISC
//! compiler slices. This crate plays that front-end role: **DISC**, a
//! small, typed, imperative kernel language that compiles to sequential
//! DISA binaries — which the `hidisc-slicer` then separates exactly as it
//! does hand-written assembly.
//!
//! ```text
//! arr  idx[512];            // i64 array (given a base address at compile time)
//! farr v[512];              // f64 array
//! var  i; var j; fvar acc;  // scalars live in registers
//!
//! for (i = 0; i < 512; i = i + 1) {
//!     j = idx[i];
//!     acc = acc + v[j] * 2.0;
//!     if (j & 1) { idx[i] = j + 1; }
//! }
//! out(acc);                 // writes the result cell(s)
//! ```
//!
//! The language is deliberately small (no functions, no pointers beyond
//! arrays) but complete enough to express every kernel in the DIS suite.
//! Compilation is checked two independent ways:
//!
//! * a native **AST evaluator** ([`eval`]) serves as the semantic oracle,
//! * differential tests run the generated DISA on the reference
//!   interpreter and on the decoupled machines and compare final state.
//!
//! ## Grammar (EBNF)
//!
//! ```text
//! program  := decl* stmt*
//! decl     := ("var" | "fvar") ident ";"
//!           | ("arr" | "farr") ident "[" integer "]" ";"
//! stmt     := ident "=" expr ";"
//!           | ident "[" expr "]" "=" expr ";"
//!           | "if" "(" expr ")" block ("else" block)?
//!           | "while" "(" expr ")" block
//!           | "for" "(" simple ";" expr ";" simple ")" block
//!           | "break" ";" | "continue" ";"
//!           | "out" "(" expr ")" ";"
//! block    := "{" stmt* "}"
//! simple   := ident "=" expr                      (no trailing ";")
//! expr     := or-chain of comparisons over + - * / % & | ^ << >>
//! primary  := integer | float | ident | ident "[" expr "]"
//!           | "(" expr ")" | "-" primary
//!           | "int" "(" expr ")" | "float" "(" expr ")"
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, Decl, Expr, Kernel, Stmt, Ty};
pub use codegen::{compile_kernel, CompiledKernel, Layout};
pub use eval::{evaluate, EvalResult};
pub use parser::parse;

/// Errors from the DISC front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical error at a byte offset.
    Lex { at: usize, msg: String },
    /// Parse error near a token.
    Parse { line: usize, msg: String },
    /// Semantic error (types, undefined names, sizes).
    Sema(String),
    /// Code generation resource exhaustion (register pressure etc.).
    Codegen(String),
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            LangError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LangError::Sema(m) => write!(f, "semantic error: {m}"),
            LangError::Codegen(m) => write!(f, "codegen error: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

/// Front-end result alias.
pub type Result<T> = std::result::Result<T, LangError>;

/// One-call convenience: parse and compile a DISC source string.
pub fn compile_str(name: &str, src: &str) -> Result<CompiledKernel> {
    let kernel = parse(src)?;
    compile_kernel(name, &kernel, &Layout::default())
}
