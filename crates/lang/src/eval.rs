//! The DISC reference evaluator — the semantic oracle the code generator
//! is differentially tested against.
//!
//! Arithmetic semantics are *defined* to be those of the DISA ISA: the
//! evaluator reuses [`hidisc_isa::IntOp::eval`] (wrapping, division by
//! zero yields 0), [`hidisc_isa::FpBinOp::eval`], and the saturating
//! [`hidisc_isa::interp::f64_to_i64`] conversion, so the generated code
//! and the oracle cannot drift apart.

use crate::ast::{BinOp, Decl, Expr, Kernel, Stmt, Ty};
use crate::parser::Symbols;
use crate::{LangError, Result};
use hidisc_isa::interp::f64_to_i64;
use hidisc_isa::op::FpCmpOp;
use hidisc_isa::{FpBinOp, IntOp};
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I(i64),
    F(f64),
}

impl Value {
    fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(_) => unreachable!("typechecked"),
        }
    }
    fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(_) => unreachable!("typechecked"),
        }
    }
}

/// Array storage.
#[derive(Debug, Clone)]
pub enum ArrayData {
    I(Vec<i64>),
    F(Vec<f64>),
}

/// Result of an evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Final scalar values.
    pub scalars: HashMap<String, Value>,
    /// Final array contents.
    pub arrays: HashMap<String, ArrayData>,
    /// Values emitted by `out(...)`, in order.
    pub outs: Vec<Value>,
    /// Statements executed.
    pub steps: u64,
}

/// Control-flow signal threaded through statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

struct Env {
    sym: Symbols,
    scalars: HashMap<String, Value>,
    arrays: HashMap<String, ArrayData>,
    outs: Vec<Value>,
    steps: u64,
    budget: u64,
}

impl Env {
    fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.budget {
            return Err(LangError::Sema(format!(
                "evaluation exceeded {} steps",
                self.budget
            )));
        }
        Ok(())
    }

    fn index(&self, name: &str, idx: i64) -> Result<usize> {
        let (_, len) = self.sym.arrays[name];
        if idx < 0 || idx as u64 >= len {
            return Err(LangError::Sema(format!(
                "index {idx} out of bounds for `{name}[{len}]`"
            )));
        }
        Ok(idx as usize)
    }

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        Ok(match e {
            Expr::Int(v) => Value::I(*v),
            Expr::Float(v) => Value::F(*v),
            Expr::Var(n) => self.scalars[n],
            Expr::Index(n, idx) => {
                let i = self.eval(idx)?.as_i();
                let i = self.index(n, i)?;
                match &self.arrays[n] {
                    ArrayData::I(v) => Value::I(v[i]),
                    ArrayData::F(v) => Value::F(v[i]),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                match (va, vb) {
                    (Value::I(x), Value::I(y)) => Value::I(int_bin(*op, x, y)),
                    (Value::F(x), Value::F(y)) => {
                        if op.is_cmp() {
                            Value::I(float_cmp(*op, x, y) as i64)
                        } else {
                            let fop = match op {
                                BinOp::Add => FpBinOp::Add,
                                BinOp::Sub => FpBinOp::Sub,
                                BinOp::Mul => FpBinOp::Mul,
                                BinOp::Div => FpBinOp::Div,
                                other => unreachable!("typechecked: {other:?} on floats"),
                            };
                            Value::F(fop.eval(x, y))
                        }
                    }
                    _ => unreachable!("typechecked"),
                }
            }
            Expr::Neg(a) => match self.eval(a)? {
                Value::I(v) => Value::I(IntOp::Sub.eval(0, v)),
                Value::F(v) => Value::F(-v),
            },
            Expr::ToInt(a) => match self.eval(a)? {
                Value::I(v) => Value::I(v),
                Value::F(v) => Value::I(f64_to_i64(v)),
            },
            Expr::ToFloat(a) => match self.eval(a)? {
                Value::I(v) => Value::F(v as f64),
                Value::F(v) => Value::F(v),
            },
        })
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<Flow> {
        for s in stmts {
            self.tick()?;
            match s {
                Stmt::Assign(n, e) => {
                    let v = self.eval(e)?;
                    self.scalars.insert(n.clone(), v);
                }
                Stmt::Store(n, idx, e) => {
                    let i = self.eval(idx)?.as_i();
                    let i = self.index(n, i)?;
                    let v = self.eval(e)?;
                    match self.arrays.get_mut(n).unwrap() {
                        ArrayData::I(a) => a[i] = v.as_i(),
                        ArrayData::F(a) => a[i] = v.as_f(),
                    }
                }
                Stmt::If(c, a, b) => {
                    let flow = if self.eval(c)?.as_i() != 0 {
                        self.run(a)?
                    } else {
                        self.run(b)?
                    };
                    if flow != Flow::Normal {
                        return Ok(flow); // propagate to the enclosing loop
                    }
                }
                Stmt::While(c, body) => {
                    while self.eval(c)?.as_i() != 0 {
                        self.tick()?;
                        match self.run(body)? {
                            Flow::Break => break,
                            Flow::Continue | Flow::Normal => {}
                        }
                    }
                }
                Stmt::For(init, c, step, body) => {
                    self.run(std::slice::from_ref(init))?;
                    while self.eval(c)?.as_i() != 0 {
                        self.tick()?;
                        let flow = self.run(body)?;
                        if flow == Flow::Break {
                            break;
                        }
                        // `continue` still runs the step clause.
                        self.run(std::slice::from_ref(step))?;
                    }
                }
                Stmt::Out(e) => {
                    let v = self.eval(e)?;
                    self.outs.push(v);
                }
                Stmt::Break => return Ok(Flow::Break),
                Stmt::Continue => return Ok(Flow::Continue),
            }
        }
        Ok(Flow::Normal)
    }
}

/// Integer binary semantics shared with codegen, expressed in IntOp terms.
pub fn int_bin(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => IntOp::Add.eval(x, y),
        BinOp::Sub => IntOp::Sub.eval(x, y),
        BinOp::Mul => IntOp::Mul.eval(x, y),
        BinOp::Div => IntOp::Div.eval(x, y),
        BinOp::Rem => IntOp::Rem.eval(x, y),
        BinOp::And => IntOp::And.eval(x, y),
        BinOp::Or => IntOp::Or.eval(x, y),
        BinOp::Xor => IntOp::Xor.eval(x, y),
        BinOp::Shl => IntOp::Sll.eval(x, y),
        BinOp::Shr => IntOp::Sra.eval(x, y),
        BinOp::Lt => IntOp::Slt.eval(x, y),
        BinOp::Gt => IntOp::Slt.eval(y, x),
        BinOp::Le => IntOp::Slt.eval(y, x) ^ 1,
        BinOp::Ge => IntOp::Slt.eval(x, y) ^ 1,
        BinOp::Eq => IntOp::Sltu.eval(IntOp::Xor.eval(x, y), 1),
        BinOp::Ne => IntOp::Sltu.eval(0, IntOp::Xor.eval(x, y)),
    }
}

/// Float comparison semantics shared with codegen.
pub fn float_cmp(op: BinOp, x: f64, y: f64) -> bool {
    match op {
        BinOp::Lt => FpCmpOp::Lt.eval(x, y),
        BinOp::Gt => FpCmpOp::Lt.eval(y, x),
        BinOp::Le => FpCmpOp::Le.eval(x, y),
        BinOp::Ge => FpCmpOp::Le.eval(y, x),
        BinOp::Eq => FpCmpOp::Eq.eval(x, y),
        BinOp::Ne => !FpCmpOp::Eq.eval(x, y),
        _ => unreachable!("not a comparison"),
    }
}

/// Evaluates a kernel with the given initial array contents (missing
/// arrays start zeroed; scalars start at 0 / 0.0).
pub fn evaluate(
    k: &Kernel,
    init_arrays: &HashMap<String, ArrayData>,
    budget: u64,
) -> Result<EvalResult> {
    let sym = Symbols::build(k)?;
    let mut scalars = HashMap::new();
    for (n, ty) in &sym.scalars {
        scalars.insert(
            n.clone(),
            match ty {
                Ty::Int => Value::I(0),
                Ty::Float => Value::F(0.0),
            },
        );
    }
    let mut arrays = HashMap::new();
    for d in &k.decls {
        if let Decl::Array { name, ty, len } = d {
            let data = init_arrays.get(name).cloned().unwrap_or_else(|| match ty {
                Ty::Int => ArrayData::I(vec![0; *len as usize]),
                Ty::Float => ArrayData::F(vec![0.0; *len as usize]),
            });
            match (&data, ty) {
                (ArrayData::I(v), Ty::Int) => assert_eq!(v.len() as u64, *len),
                (ArrayData::F(v), Ty::Float) => assert_eq!(v.len() as u64, *len),
                _ => {
                    return Err(LangError::Sema(format!(
                        "initial data type mismatch for {name}"
                    )))
                }
            }
            arrays.insert(name.clone(), data);
        }
    }
    let mut env = Env {
        sym,
        scalars,
        arrays,
        outs: Vec::new(),
        steps: 0,
        budget,
    };
    env.run(&k.body)?;
    Ok(EvalResult {
        scalars: env.scalars,
        arrays: env.arrays,
        outs: env.outs,
        steps: env.steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> EvalResult {
        evaluate(&parse(src).unwrap(), &HashMap::new(), 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_loop() {
        let r = run("var i; var s;\nfor (i = 1; i <= 10; i = i + 1) { s = s + i; }\nout(s);");
        assert_eq!(r.outs, vec![Value::I(55)]);
    }

    #[test]
    fn arrays_and_conditionals() {
        let r = run(r"
            var i; arr a[8];
            for (i = 0; i < 8; i = i + 1) {
                if (i % 2 == 0) { a[i] = i * i; } else { a[i] = 0 - i; }
            }
            out(a[4]); out(a[5]);
        ");
        assert_eq!(r.outs, vec![Value::I(16), Value::I(-5)]);
    }

    #[test]
    fn float_semantics() {
        let r = run(r"
            fvar x; var n;
            x = 1.5 * 4.0;
            n = int(x / 2.0);
            out(x); out(n); out(float(n) + 0.25);
        ");
        assert_eq!(r.outs, vec![Value::F(6.0), Value::I(3), Value::F(3.25)]);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let r = run("var a; var b;\na = 7; b = 0;\nout(a / b); out(a % b);");
        assert_eq!(r.outs, vec![Value::I(0), Value::I(0)]);
    }

    #[test]
    fn comparison_chain_semantics() {
        let r = run("var a;\na = 5;\nout(a == 5); out(a != 5); out(a >= 6); out(3 < a & a < 9);");
        assert_eq!(
            r.outs,
            vec![Value::I(1), Value::I(0), Value::I(0), Value::I(1)]
        );
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let k = parse("arr a[4]; var i;\ni = 9;\na[i] = 1;").unwrap();
        assert!(evaluate(&k, &HashMap::new(), 1000).is_err());
        let k = parse("arr a[4]; var i;\ni = 0 - 1;\nout(a[i]);").unwrap();
        assert!(evaluate(&k, &HashMap::new(), 1000).is_err());
    }

    #[test]
    fn budget_stops_infinite_loops() {
        let k = parse("var x;\nwhile (1) { x = x + 1; }").unwrap();
        assert!(evaluate(&k, &HashMap::new(), 10_000).is_err());
    }

    #[test]
    fn while_loop_and_shifts() {
        let r = run("var x; var n;\nx = 1;\nwhile (x < 100) { x = x << 1; n = n + 1; }\nout(x); out(n); out(x >> 3);");
        assert_eq!(r.outs, vec![Value::I(128), Value::I(7), Value::I(16)]);
    }
}

#[cfg(test)]
mod flow_tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> EvalResult {
        evaluate(&parse(src).unwrap(), &HashMap::new(), 1_000_000).unwrap()
    }

    #[test]
    fn break_exits_the_innermost_loop() {
        let r = run(r"
            var i; var j; var n;
            for (i = 0; i < 10; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) {
                    if (j == 3) { break; }
                    n = n + 1;
                }
            }
            out(n); out(i); out(j);
        ");
        assert_eq!(r.outs, vec![Value::I(30), Value::I(10), Value::I(3)]);
    }

    #[test]
    fn continue_runs_the_step_clause() {
        let r = run(r"
            var i; var n;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                n = n + i;
            }
            out(n);
        ");
        assert_eq!(r.outs, vec![Value::I(1 + 3 + 5 + 7 + 9)]);
    }

    #[test]
    fn break_in_while_and_propagation_through_if() {
        let r = run(r"
            var x;
            while (1) {
                x = x + 1;
                if (x >= 7) { if (1) { break; } }
            }
            out(x);
        ");
        assert_eq!(r.outs, vec![Value::I(7)]);
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        assert!(parse("var x;\nbreak;").is_err());
        assert!(parse("var x;\nif (x) { continue; }").is_err());
    }
}
