//! The DISC abstract syntax tree.

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
}

/// Binary operators. Comparisons yield `Int` 0/1 regardless of operand
/// type; arithmetic requires both sides to have the same type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for operators only defined on integers.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Scalar variable read.
    Var(String),
    /// Array element read `a[idx]` (idx must be Int).
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `int(e)` — truncating float→int conversion (identity on ints).
    ToInt(Box<Expr>),
    /// `float(e)` — int→float conversion (identity on floats).
    ToFloat(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = e;`
    Assign(String, Expr),
    /// `a[i] = e;`
    Store(String, Expr, Expr),
    /// `if (c) { .. } else { .. }` (condition must be Int; nonzero = true).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }`
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `out(e);` — append a value to the kernel's output cells.
    Out(Expr),
    /// `break;` — exit the innermost loop.
    Break,
    /// `continue;` — jump to the innermost loop's next iteration (the
    /// step clause still runs for `for` loops).
    Continue,
}

/// Declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `var x;` / `fvar x;`
    Scalar { name: String, ty: Ty },
    /// `arr a[n];` / `farr a[n];`
    Array { name: String, ty: Ty, len: u64 },
}

/// A parsed kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Kernel {
    /// Declarations, in source order.
    pub decls: Vec<Decl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Looks up a declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| match d {
            Decl::Scalar { name: n, .. } | Decl::Array { name: n, .. } => n == name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Mul.int_only());
    }

    #[test]
    fn kernel_decl_lookup() {
        let k = Kernel {
            decls: vec![
                Decl::Scalar {
                    name: "x".into(),
                    ty: Ty::Int,
                },
                Decl::Array {
                    name: "a".into(),
                    ty: Ty::Float,
                    len: 4,
                },
            ],
            body: vec![],
        };
        assert!(matches!(
            k.decl("x"),
            Some(Decl::Scalar { ty: Ty::Int, .. })
        ));
        assert!(matches!(k.decl("a"), Some(Decl::Array { len: 4, .. })));
        assert!(k.decl("nope").is_none());
    }
}
