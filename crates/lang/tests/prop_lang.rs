//! Differential testing of the DISC compiler: random well-typed kernels
//! must produce identical results on
//!
//! 1. the native AST evaluator (the semantic oracle),
//! 2. the generated DISA binary on the reference interpreter,
//! 3. the HiDISC-compiled decoupled machine.

use hidisc_isa::interp::Interp;
use hidisc_lang::ast::{BinOp, Decl, Expr, Kernel, Stmt, Ty};
use hidisc_lang::eval::{evaluate, ArrayData, Value};
use hidisc_lang::{compile_kernel, Layout};
use proptest::prelude::*;
use std::collections::HashMap;

const ARR_LEN: u64 = 16; // power of two so `& 15` indexes are in bounds

fn decls() -> Vec<Decl> {
    vec![
        Decl::Scalar {
            name: "a".into(),
            ty: Ty::Int,
        },
        Decl::Scalar {
            name: "b".into(),
            ty: Ty::Int,
        },
        Decl::Scalar {
            name: "c".into(),
            ty: Ty::Int,
        },
        Decl::Scalar {
            name: "i".into(),
            ty: Ty::Int,
        },
        Decl::Scalar {
            name: "j".into(),
            ty: Ty::Int,
        },
        Decl::Scalar {
            name: "x".into(),
            ty: Ty::Float,
        },
        Decl::Scalar {
            name: "y".into(),
            ty: Ty::Float,
        },
        Decl::Array {
            name: "A".into(),
            ty: Ty::Int,
            len: ARR_LEN,
        },
        Decl::Array {
            name: "F".into(),
            ty: Ty::Float,
            len: ARR_LEN,
        },
    ]
}

fn int_var() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Var("a".into())),
        Just(Expr::Var("b".into())),
        Just(Expr::Var("c".into())),
        Just(Expr::Var("i".into())),
        Just(Expr::Var("j".into())),
    ]
}

/// An in-bounds index expression: `<int-expr> & (len-1)` — masking keeps
/// both the oracle and the generated code within the array.
fn index_expr(inner: impl Strategy<Value = Expr> + 'static) -> impl Strategy<Value = Expr> {
    inner.prop_map(|e| {
        Expr::Bin(
            BinOp::And,
            Box::new(e),
            Box::new(Expr::Int(ARR_LEN as i64 - 1)),
        )
    })
}

fn int_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![(-64i64..64).prop_map(Expr::Int), int_var(),];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
        ];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(o, a, b)| Expr::Bin(
                o,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| Expr::Neg(Box::new(a))),
            index_expr(inner.clone()).prop_map(|i| Expr::Index("A".into(), Box::new(i))),
        ]
    })
    .boxed()
}

fn float_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-8.0f64..8.0).prop_map(|v| Expr::Float((v * 4.0).round() / 4.0)),
        Just(Expr::Var("x".into())),
        Just(Expr::Var("y".into())),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        let op = prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(o, a, b)| Expr::Bin(
                o,
                Box::new(a),
                Box::new(b)
            )),
            index_expr(int_expr()).prop_map(|i| Expr::Index("F".into(), Box::new(i))),
            inner
                .clone()
                .prop_map(|a| Expr::ToFloat(Box::new(Expr::ToInt(Box::new(a))))),
        ]
    })
    .boxed()
}

/// Statements for loop bodies (`in_loop` = true, flow control legal) or
/// straight-line prologue code (`in_loop` = false). Never writes loop
/// counters.
fn body_stmt(in_loop: bool) -> impl Strategy<Value = Stmt> {
    let assign_target = prop_oneof![Just("a"), Just("b"), Just("c")];
    prop_oneof![
        (assign_target, int_expr()).prop_map(|(n, e)| Stmt::Assign(n.into(), e)),
        (index_expr(int_expr()), int_expr()).prop_map(|(i, e)| Stmt::Store("A".into(), i, e)),
        (index_expr(int_expr()), float_expr()).prop_map(|(i, e)| Stmt::Store("F".into(), i, e)),
        (prop_oneof![Just("x"), Just("y")], float_expr())
            .prop_map(|(n, e): (&str, _)| Stmt::Assign(n.into(), e)),
        (
            int_expr(),
            prop::collection::vec(leaf_stmt(in_loop), 1..3),
            prop::collection::vec(leaf_stmt(in_loop), 0..2)
        )
            .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
    ]
}

/// Non-recursive statements for if arms; flow control only when legal.
fn leaf_stmt(in_loop: bool) -> BoxedStrategy<Stmt> {
    let base = prop_oneof![
        (prop_oneof![Just("a"), Just("b")], int_expr())
            .prop_map(|(n, e): (&str, _)| Stmt::Assign(n.into(), e)),
        (index_expr(int_expr()), int_expr()).prop_map(|(i, e)| Stmt::Store("A".into(), i, e)),
    ];
    if in_loop {
        prop_oneof![
            6 => base,
            1 => Just(Stmt::Continue),
            1 => Just(Stmt::Break),
        ]
        .boxed()
    } else {
        base.boxed()
    }
}

/// A bounded counted loop over `i` or `j`.
fn counted_loop(counter: &'static str) -> impl Strategy<Value = Stmt> {
    (1i64..6, prop::collection::vec(body_stmt(true), 1..4)).prop_map(move |(n, body)| {
        Stmt::For(
            Box::new(Stmt::Assign(counter.into(), Expr::Int(0))),
            Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::Var(counter.into())),
                Box::new(Expr::Int(n)),
            ),
            Box::new(Stmt::Assign(
                counter.into(),
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var(counter.into())),
                    Box::new(Expr::Int(1)),
                ),
            )),
            body,
        )
    })
}

fn kernel() -> impl Strategy<Value = Kernel> {
    (
        prop::collection::vec(body_stmt(false), 0..4),
        counted_loop("i"),
        prop::collection::vec(
            (1i64..4, prop::collection::vec(body_stmt(true), 1..3)).prop_map(|(n, mut inner)| {
                inner.push(Stmt::Store(
                    "A".into(),
                    Expr::Bin(
                        BinOp::And,
                        Box::new(Expr::Var("j".into())),
                        Box::new(Expr::Int(15)),
                    ),
                    Expr::Var("a".into()),
                ));
                Stmt::For(
                    Box::new(Stmt::Assign("j".into(), Expr::Int(0))),
                    Expr::Bin(
                        BinOp::Lt,
                        Box::new(Expr::Var("j".into())),
                        Box::new(Expr::Int(n)),
                    ),
                    Box::new(Stmt::Assign(
                        "j".into(),
                        Expr::Bin(
                            BinOp::Add,
                            Box::new(Expr::Var("j".into())),
                            Box::new(Expr::Int(1)),
                        ),
                    )),
                    inner,
                )
            }),
            0..2,
        ),
    )
        .prop_map(|(pre, lp, loops)| {
            let mut body = pre;
            body.push(lp);
            body.extend(loops);
            // Observability: emit every scalar.
            for v in ["a", "b", "c", "i", "j"] {
                body.push(Stmt::Out(Expr::Var(v.into())));
            }
            for v in ["x", "y"] {
                body.push(Stmt::Out(Expr::Var(v.into())));
            }
            Kernel {
                decls: decls(),
                body,
            }
        })
}

fn init_arrays(seed: i64) -> HashMap<String, ArrayData> {
    let ints: Vec<i64> = (0..ARR_LEN as i64)
        .map(|k| (k * 37 + seed) % 101 - 50)
        .collect();
    let floats: Vec<f64> = (0..ARR_LEN as i64)
        .map(|k| (k + seed % 7) as f64 * 0.5)
        .collect();
    let mut m = HashMap::new();
    m.insert("A".to_string(), ArrayData::I(ints));
    m.insert("F".to_string(), ArrayData::F(floats));
    m
}

/// Runs the oracle and the DISA binary; panics on any mismatch.
fn check_kernel(k: &Kernel, seed: i64) {
    let init = init_arrays(seed);
    let oracle = match evaluate(k, &init, 2_000_000) {
        Ok(r) => r,
        Err(e) => panic!("oracle rejected a generated kernel: {e}"),
    };

    let c = compile_kernel("prop", k, &Layout::default()).expect("compiles");
    c.prog.validate().unwrap();
    let mut mem = c.initial_memory();
    if let ArrayData::I(v) = &init["A"] {
        c.set_array_i64(&mut mem, "A", v);
    }
    if let ArrayData::F(v) = &init["F"] {
        c.set_array_f64(&mut mem, "F", v);
    }
    let mut interp = Interp::new(&c.prog, mem);
    interp.run(20_000_000).expect("DISA run completes");

    // outs
    for (i, o) in oracle.outs.iter().enumerate() {
        let bits = c.out_bits(&interp.mem, i);
        match o {
            Value::I(v) => assert_eq!(bits as i64, *v, "out[{i}]"),
            Value::F(v) => {
                assert_eq!(
                    f64::from_bits(bits).to_bits(),
                    v.to_bits(),
                    "out[{i}] (float)"
                )
            }
        }
    }
    // arrays
    let ArrayData::I(want_a) = &oracle.arrays["A"] else {
        unreachable!()
    };
    assert_eq!(
        &c.get_array_i64(&interp.mem, "A", ARR_LEN as usize),
        want_a,
        "array A"
    );
    let ArrayData::F(want_f) = &oracle.arrays["F"] else {
        unreachable!()
    };
    let got_f = c.get_array_f64(&interp.mem, "F", ARR_LEN as usize);
    for (g, w) in got_f.iter().zip(want_f) {
        assert_eq!(g.to_bits(), w.to_bits(), "array F");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_kernels_match_the_oracle(k in kernel(), seed in 0i64..1000) {
        check_kernel(&k, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full pipeline: DISC → DISA → HiDISC compiler → decoupled
    /// machine, equivalent to the oracle.
    #[test]
    fn kernels_survive_the_decoupled_machine(k in kernel(), seed in 0i64..100) {
        use hidisc::{run_model, MachineConfig, Model};
        use hidisc_slicer::{compile as slice, CompilerConfig, ExecEnv};

        let init = init_arrays(seed);
        let oracle = evaluate(&k, &init, 2_000_000).expect("oracle ok");
        let c = compile_kernel("prop", &k, &Layout::default()).expect("compiles");
        let mut mem = c.initial_memory();
        if let ArrayData::I(v) = &init["A"] { c.set_array_i64(&mut mem, "A", v); }
        if let ArrayData::F(v) = &init["F"] { c.set_array_f64(&mut mem, "F", v); }

        let env = ExecEnv { regs: vec![], mem, max_steps: 20_000_000 };
        let w = slice(&c.prog, &env, &CompilerConfig::default()).expect("slices");
        let st = run_model(Model::HiDisc, &w, &env, MachineConfig::paper()).expect("runs");

        // Spot-check through a fresh machine run is unnecessary — compare
        // the decoupled machine's memory against a sequential interp.
        let mut seq = Interp::new(&c.prog, env.mem.clone());
        seq.run(20_000_000).unwrap();
        prop_assert_eq!(st.mem_checksum, seq.mem.checksum());
        // And the sequential interp against the oracle outs.
        for (i, o) in oracle.outs.iter().enumerate() {
            let bits = c.out_bits(&seq.mem, i);
            match o {
                Value::I(v) => prop_assert_eq!(bits as i64, *v),
                Value::F(v) => prop_assert_eq!(f64::from_bits(bits).to_bits(), v.to_bits()),
            }
        }
    }
}
