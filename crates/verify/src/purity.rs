//! CMAS purity checking (`CM001`–`CM004`).
//!
//! A Cache Miss Access Slice runs speculatively on the Cache Management
//! Processor for the sole purpose of warming the cache. It must therefore
//! be architecturally invisible: no stores, no traffic on the CP/AP queues
//! (its only architected side channel is the `putscq` slip-control
//! semaphore), no floating point (the CMP has no FP units), and every
//! memory operation tagged as CMAS by the compiler so the simulated
//! hardware issues it as a non-faulting prefetch access. The trigger and
//! slip-control annotations on the Access Stream must in turn reference
//! threads that exist.

use crate::{Code, Diagnostic, Loc};
use hidisc_isa::{Instr, Program, Queue};
use hidisc_slicer::CmasThread;

/// Runs the pass over the Access Stream (trigger/slip references) and every
/// CMAS thread body.
pub fn check(access: &Program, cmas: &[CmasThread], out: &mut Vec<Diagnostic>) {
    check_references(access, cmas, out);
    for t in cmas {
        check_thread(t, out);
    }
}

/// `CM004`: every trigger annotation must name an existing thread, and slip
/// control only makes sense when there are threads to pace.
fn check_references(access: &Program, cmas: &[CmasThread], out: &mut Vec<Diagnostic>) {
    for pc in 0..access.len() {
        let a = access.annot(pc);
        if let Some(t) = a.trigger {
            if !cmas.iter().any(|th| th.id == t) {
                out.push(Diagnostic {
                    code: Code::Cm004,
                    loc: Loc::Access(pc),
                    queue: None,
                    msg: format!(
                        "trigger annotation references CMAS thread {t}, which does not exist"
                    ),
                });
            }
        }
        if cmas.is_empty() && (a.scq_get || matches!(access.instr(pc), Instr::GetScq)) {
            out.push(Diagnostic {
                code: Code::Cm004,
                loc: Loc::Access(pc),
                queue: Some(Queue::Scq),
                msg: "slip control in the access stream but no CMAS threads exist to pace".into(),
            });
        }
    }
}

fn check_thread(t: &CmasThread, out: &mut Vec<Diagnostic>) {
    for pc in 0..t.prog.len() {
        let i = t.prog.instr(pc);
        let a = t.prog.annot(pc);
        let loc = Loc::Cmas(t.id, pc);

        // CM001: architectural stores. Takes precedence over the queue
        // check for `s.q` (a store first, a queue pop second).
        if i.is_store() {
            out.push(Diagnostic {
                code: Code::Cm001,
                loc,
                queue: None,
                msg: format!(
                    "CMAS performs an architectural store `{}` — prefetch slices must be side-effect free",
                    hidisc_isa::encode::render_instr(i, &t.prog)
                ),
            });
            continue;
        }

        // CM002: CP/AP queue traffic. The only queue operation a CMAS may
        // perform is the `putscq` slip-control increment.
        let bad_q = a.queue_pops(i).into_iter().flatten().next().or_else(|| {
            a.queue_pushes(i)
                .into_iter()
                .flatten()
                .find(|&q| q != Queue::Scq)
        });
        if let Some(q) = bad_q {
            let why = if q == Queue::Scq {
                "the SCQ decrement belongs to the access processor".to_string()
            } else {
                format!("{} traffic belongs to the CP/AP streams", q.name())
            };
            out.push(Diagnostic {
                code: Code::Cm002,
                loc,
                queue: Some(q),
                msg: format!("CMAS operates on a queue it does not own: {why}"),
            });
            continue;
        }

        // CM003: no floating point, and every memory op tagged.
        if i.is_fp() {
            out.push(Diagnostic {
                code: Code::Cm003,
                loc,
                queue: None,
                msg: format!(
                    "floating-point instruction `{}` in CMAS — the CMP has no FP units",
                    hidisc_isa::encode::render_instr(i, &t.prog)
                ),
            });
        } else if i.is_mem() && !a.cmas {
            out.push(Diagnostic {
                code: Code::Cm003,
                loc,
                queue: None,
                msg: format!(
                    "memory operation `{}` in CMAS is not prefetch-tagged \
                     (missing the cmas annotation; it would issue as a demand access)",
                    hidisc_isa::encode::render_instr(i, &t.prog)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    fn thread(src: &str, tag_all: bool) -> CmasThread {
        let mut prog = assemble("cmas", src).unwrap();
        if tag_all {
            for pc in 0..prog.len() {
                if !matches!(prog.instr(pc), Instr::Halt) {
                    prog.annot_mut(pc).cmas = true;
                }
            }
        }
        CmasThread {
            id: 0,
            prog,
            loop_header: 0,
        }
    }

    fn diags(access_src: &str, threads: &[CmasThread]) -> Vec<Diagnostic> {
        let access = assemble("as", access_src).unwrap();
        let mut out = Vec::new();
        check(&access, threads, &mut out);
        out
    }

    #[test]
    fn clean_prefetch_slice_passes() {
        let t = thread("ld r1, 0(r1)\npref 8(r1)\nputscq\nhalt", true);
        assert!(diags("halt", &[t]).is_empty());
    }

    #[test]
    fn store_reports_cm001() {
        let t = thread("sd r1, 0(r2)\nhalt", true);
        let out = diags("halt", &[t]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Cm001);
        assert_eq!(out[0].loc, Loc::Cmas(0, 0));
    }

    #[test]
    fn queue_traffic_reports_cm002() {
        let t = thread("send LDQ, r1\ngetscq\nhalt", true);
        let out = diags("halt", &[t]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == Code::Cm002));
        assert_eq!(out[0].queue, Some(Queue::Ldq));
        assert_eq!(out[1].queue, Some(Queue::Scq));
    }

    #[test]
    fn fp_and_untagged_mem_report_cm003() {
        let t = thread("add.d f1, f2, f3\nhalt", true);
        let out = diags("halt", &[t]);
        assert_eq!(out[0].code, Code::Cm003);

        let untagged = thread("ld r1, 0(r1)\nhalt", false);
        let out = diags("halt", &[untagged]);
        assert_eq!(out[0].code, Code::Cm003);
        assert!(out[0].msg.contains("not prefetch-tagged"));
    }

    #[test]
    fn dangling_trigger_and_orphan_slip_report_cm004() {
        let mut access = assemble("as", "nop\nbeq r0, r0, 2\nhalt").unwrap();
        access.annot_mut(0).trigger = Some(7);
        access.annot_mut(1).scq_get = true;
        let mut out = Vec::new();
        check(&access, &[], &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == Code::Cm004));
        assert_eq!(out[0].loc, Loc::Access(0));
        assert_eq!(out[1].loc, Loc::Access(1));
    }
}
