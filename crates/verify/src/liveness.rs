//! Slice-liveness checking (`LV001`) and poison liveness (`LV002`).
//!
//! A register that is live across the CP/AP cut must either be
//! communicated through a queue (LDQ/CDQ receive) or rematerialised by
//! duplicated computation in the consuming stream. When the slicer gets
//! this wrong, the consuming stream reads a register it never wrote — the
//! value silently defaults to whatever the register file was initialised
//! with, and the run diverges from the original program.
//!
//! The pass runs a *must-initialised* forward dataflow over each program's
//! CFG: the lattice is the powerset of the 64 architectural registers
//! (a `u64` bitmask, integer registers in bits 0–31, FP in 32–63) ordered
//! by ⊇, the meet at joins is set intersection, and an instruction's
//! transfer adds its defined register. Reads outside the must-init set are
//! *maybe-uninitialised*. Because workloads legitimately read
//! environment-provided registers (base addresses, parameters, cleared
//! accumulators), a stream read is only an error when the **original**
//! program could never make the same uninitialised read: the baseline is
//! the original's own maybe-uninit set, and `LV001` fires on the
//! difference.
//!
//! [`poison_check`] extends the same bitmask machinery to speculation: the
//! per-register lattice grows from must-init's two points to three —
//! {maybe-uninit, clean, **maybe-poisoned**}. A register defined inside a
//! declared run-ahead window may hold a poison value (a speculative load's
//! result) when the window is squashed; the squash path must therefore
//! *kill* the register (redefine it) before any read. Reads-before-writes
//! from a program point are exactly backward may-liveness, so the check
//! is: `defs(window) ∩ live-in(squash entry) = ∅`, and `LV002` pins the
//! first offending read.

use crate::specregion;
use crate::{Code, Diagnostic, Loc};
use hidisc_isa::{Program, RegRef, SpecDir};
use hidisc_slicer::cfg::Cfg;

fn bit(r: RegRef) -> u64 {
    match r {
        RegRef::Int(r) => 1u64 << r.index(),
        RegRef::Fp(r) => 1u64 << (32 + r.index()),
    }
}

/// All maybe-uninitialised reads of a program: for every register with at
/// least one read outside the must-init set, the smallest instruction
/// index of such a read. Sorted by instruction index.
pub fn maybe_uninit_reads(prog: &Program) -> Vec<(RegRef, u32)> {
    if prog.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::build(prog);
    let reachable = cfg.reachable();
    let nb = cfg.len();

    let transfer = |blk: usize, mut mask: u64| -> u64 {
        for pc in cfg.blocks[blk].range() {
            if let Some(d) = prog.instr(pc).def() {
                mask |= bit(d);
            }
        }
        mask
    };

    // Entry starts with nothing initialised; everything else starts at top
    // (all-initialised) and is lowered by the intersection meet.
    let top = !0u64;
    let mut inset = vec![top; nb];
    inset[0] = 0;
    let mut outset: Vec<u64> = (0..nb).map(|b| transfer(b, inset[b])).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !reachable[b] {
                continue;
            }
            let mut meet = if b == 0 { 0 } else { top };
            for &p in &cfg.blocks[b].preds {
                if reachable[p] {
                    meet &= outset[p];
                }
            }
            if b == 0 {
                meet = 0;
            }
            if meet != inset[b] {
                inset[b] = meet;
                changed = true;
            }
            let new_out = transfer(b, inset[b]);
            if new_out != outset[b] {
                outset[b] = new_out;
                changed = true;
            }
        }
    }

    let mut first: Vec<(RegRef, u32)> = Vec::new();
    for b in 0..nb {
        if !reachable[b] {
            continue;
        }
        let mut mask = inset[b];
        for pc in cfg.blocks[b].range() {
            let i = prog.instr(pc);
            for u in i.uses().into_iter().flatten() {
                if mask & bit(u) == 0 {
                    match first.iter_mut().find(|(r, _)| *r == u) {
                        Some((_, at)) => *at = (*at).min(pc),
                        None => first.push((u, pc)),
                    }
                }
            }
            if let Some(d) = i.def() {
                mask |= bit(d);
            }
        }
    }
    first.sort_by_key(|&(_, pc)| pc);
    first
}

/// Emits `LV001` for every register a stream may read uninitialised even
/// though the original program never could.
pub fn check(orig: &Program, cs: &Program, access: &Program, out: &mut Vec<Diagnostic>) {
    let base: u64 = maybe_uninit_reads(orig)
        .iter()
        .fold(0, |m, &(r, _)| m | bit(r));
    for (prog, stream, mk) in [
        (cs, "computation", Loc::Cs as fn(u32) -> Loc),
        (access, "access", Loc::Access as fn(u32) -> Loc),
    ] {
        for (r, pc) in maybe_uninit_reads(prog) {
            if base & bit(r) == 0 {
                out.push(Diagnostic {
                    code: Code::Lv001,
                    loc: mk(pc),
                    queue: None,
                    msg: format!(
                        "{r} may be read uninitialised in the {stream} stream but is always \
                         initialised in the original program — the value was lost across the \
                         CP/AP cut and must be communicated through a queue or recomputed"
                    ),
                });
            }
        }
    }
}

/// Backward may-liveness over the CFG: `live_in[b]` is the set of
/// registers read before written on some path from the top of block `b`.
fn block_live_in(prog: &Program, cfg: &Cfg) -> Vec<u64> {
    let nb = cfg.len();
    // Per-block use (read-before-write) and def masks.
    let mut use_mask = vec![0u64; nb];
    let mut def_mask = vec![0u64; nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for pc in blk.range() {
            let i = prog.instr(pc);
            for u in i.uses().into_iter().flatten() {
                if def_mask[b] & bit(u) == 0 {
                    use_mask[b] |= bit(u);
                }
            }
            if let Some(d) = i.def() {
                def_mask[b] |= bit(d);
            }
        }
    }
    let mut live_in = vec![0u64; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let live_out = cfg.blocks[b]
                .succs
                .iter()
                .fold(0u64, |m, &s| m | live_in[s]);
            let new_in = use_mask[b] | (live_out & !def_mask[b]);
            if new_in != live_in[b] {
                live_in[b] = new_in;
                changed = true;
            }
        }
    }
    live_in
}

/// Registers live immediately before executing `pc`: walk the tail of its
/// block backwards from the block's live-out.
fn live_at(prog: &Program, cfg: &Cfg, live_in: &[u64], pc: u32) -> u64 {
    let b = cfg.block_containing(pc);
    let blk = &cfg.blocks[b];
    let mut live = blk.succs.iter().fold(0u64, |m, &s| m | live_in[s]);
    for p in (pc..blk.end).rev() {
        let i = prog.instr(p);
        if let Some(d) = i.def() {
            live &= !bit(d);
        }
        for u in i.uses().into_iter().flatten() {
            live |= bit(u);
        }
    }
    live
}

/// The first read of register `r` reachable from `from` with no
/// intervening redefinition — the instruction a poison value would leak
/// through. Exists whenever `r` is live at `from`.
fn first_exposed_read(prog: &Program, cfg: &Cfg, from: u32, r: RegRef) -> Option<u32> {
    let mut best: Option<u32> = None;
    let mut seen = vec![false; cfg.len()];
    let mut work = vec![from];
    while let Some(start) = work.pop() {
        let b = cfg.block_containing(start);
        let blk = &cfg.blocks[b];
        let mut killed = false;
        for pc in start..blk.end {
            let i = prog.instr(pc);
            if i.uses().into_iter().flatten().any(|u| u == r) {
                best = Some(best.map_or(pc, |x| x.min(pc)));
                killed = true; // any deeper read is not the *first*
                break;
            }
            if i.def() == Some(r) {
                killed = true;
                break;
            }
        }
        if !killed {
            for &s in &blk.succs {
                if !std::mem::replace(&mut seen[s], true) {
                    work.push(cfg.blocks[s].start);
                }
            }
        }
    }
    best
}

/// Emits `LV002` for every register a *declared* run-ahead window defines
/// that is live into the squash path.
pub fn poison_check(access: &Program, out: &mut Vec<Diagnostic>) {
    let windows = specregion::marked(access);
    if windows.is_empty() || access.is_empty() {
        return;
    }
    let cfg = Cfg::build(access);
    let live_in = block_live_in(access, &cfg);
    for w in &windows {
        // The squash path resumes down the edge the prediction did NOT
        // take.
        let squash_entry = match w.dir {
            SpecDir::Taken => w.branch_pc + 1,
            SpecDir::NotTaken => access
                .instr(w.branch_pc)
                .target()
                .unwrap_or(w.branch_pc + 1),
        };
        if squash_entry >= access.len() {
            continue;
        }
        let mut defs: Vec<RegRef> = (w.start..w.end)
            .filter_map(|pc| access.instr(pc).def())
            .collect();
        defs.sort_unstable();
        defs.dedup();
        if defs.is_empty() {
            continue;
        }
        let live = live_at(access, &cfg, &live_in, squash_entry);
        for &r in &defs {
            if live & bit(r) == 0 {
                continue;
            }
            let read_pc = first_exposed_read(access, &cfg, squash_entry, r).unwrap_or(squash_entry);
            out.push(Diagnostic {
                code: Code::Lv002,
                loc: Loc::Access(read_pc),
                queue: None,
                msg: format!(
                    "{r} is defined in the {} run-ahead window of the branch at as@{} and \
                     read on the squash path before being redefined — a maybe-poisoned \
                     value would leak into committed state",
                    w.dir.name(),
                    w.branch_pc,
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::IntReg;

    #[test]
    fn straight_line_reads_before_defs() {
        let p = assemble("t", "add r2, r1, r1\nli r1, 5\nadd r3, r1, r1\nhalt").unwrap();
        let reads = maybe_uninit_reads(&p);
        assert_eq!(reads, vec![(RegRef::Int(IntReg::new(1)), 0)]);
    }

    #[test]
    fn join_requires_init_on_all_paths() {
        // r2 is set on only one arm of a diamond, then read at the join.
        let p = assemble(
            "t",
            r"
            beq r1, r0, skip
            li r2, 1
        skip:
            add r3, r2, r2
            halt
        ",
        )
        .unwrap();
        let reads = maybe_uninit_reads(&p);
        assert!(reads.contains(&(RegRef::Int(IntReg::new(1)), 0)));
        assert!(reads
            .iter()
            .any(|&(r, pc)| r == RegRef::Int(IntReg::new(2)) && pc == 2));
    }

    #[test]
    fn loop_defs_reach_back_edge_reads() {
        // r2 is defined before the loop and updated inside: never uninit.
        let p = assemble(
            "t",
            r"
            li r2, 0
        l:
            add r2, r2, 1
            bne r2, r1, l
            halt
        ",
        )
        .unwrap();
        let reads = maybe_uninit_reads(&p);
        assert!(!reads.iter().any(|&(r, _)| r == RegRef::Int(IntReg::new(2))));
        assert!(reads.iter().any(|&(r, _)| r == RegRef::Int(IntReg::new(1))));
    }

    #[test]
    fn recv_initialises_its_destination() {
        let p = assemble("t", "recv r4, LDQ\nadd r5, r4, r4\nhalt").unwrap();
        assert!(maybe_uninit_reads(&p).is_empty());
    }

    #[test]
    fn stream_only_uninit_read_is_lv001() {
        // Original: r2 defined, then used as a store address.
        let orig = assemble("t", "li r2, 64\nsd r2, 0(r2)\nhalt").unwrap();
        // Broken AS: uses r2 without the li (and without a queue receive).
        let access = assemble("as", "sd r2, 0(r2)\nhalt").unwrap();
        let cs = assemble("cs", "halt").unwrap();
        let mut out = Vec::new();
        check(&orig, &cs, &access, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Lv001);
        assert_eq!(out[0].loc, Loc::Access(0));
    }

    #[test]
    fn poison_leak_into_squash_path_is_lv002() {
        use hidisc_isa::SpecDir;
        // Predicting not-taken runs ahead over `ld r5`; on a squash the
        // taken path at `out:` reads r5 before redefining it.
        let mut p = assemble(
            "as",
            r"
            bne r1, r0, out
            ld r5, 0(r3)
            halt
        out:
            add r6, r5, 1
            halt
        ",
        )
        .unwrap();
        p.annot_mut(0).speculate = Some(SpecDir::NotTaken);
        let mut out = Vec::new();
        poison_check(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Lv002);
        assert_eq!(out[0].loc, Loc::Access(3), "pinned at the exposed read");
        assert!(out[0].msg.contains("r5"), "{}", out[0].msg);
    }

    #[test]
    fn squash_path_that_kills_the_register_is_clean() {
        use hidisc_isa::SpecDir;
        let mut p = assemble(
            "as",
            r"
            bne r1, r0, out
            ld r5, 0(r3)
            halt
        out:
            li r5, 0
            add r6, r5, 1
            halt
        ",
        )
        .unwrap();
        p.annot_mut(0).speculate = Some(SpecDir::NotTaken);
        let mut out = Vec::new();
        poison_check(&p, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unmarked_branches_skip_poison_analysis() {
        let p = assemble(
            "as",
            "bne r1, r0, 3\nld r5, 0(r3)\nhalt\nadd r6, r5, 1\nhalt",
        )
        .unwrap();
        let mut out = Vec::new();
        poison_check(&p, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn env_provided_registers_are_exempt() {
        // The original itself reads r1 uninitialised (an env parameter), so
        // the streams doing the same is fine.
        let orig = assemble("t", "add r2, r1, r1\nhalt").unwrap();
        let access = assemble("as", "add r2, r1, r1\nhalt").unwrap();
        let cs = assemble("cs", "halt").unwrap();
        let mut out = Vec::new();
        check(&orig, &cs, &access, &mut out);
        assert!(out.is_empty());
    }
}
