//! Run-ahead region analysis (`SP001`–`SP003`) and the advisory region
//! classification behind `repro check --speculation`.
//!
//! A *run-ahead window* is what the Access Processor would execute down one
//! edge of a conditional branch while the branch condition is still
//! unresolved: the instructions from that edge's entry point up to — but
//! not including — the next control instruction (the next resolution
//! point; it never commits inside the window). On a misprediction the
//! whole window is squashed, so every commit inside it must be undoable:
//!
//! * pushes may only target flushable queues (LDQ/CQ — the AP-produced
//!   FIFOs whose speculative tail the producer can retract), else `SP001`;
//! * no pops at all — queue values are consumed exactly once, a squashed
//!   pop cannot be replayed (`SP002`; this covers the `scq_get`
//!   slip-control decrement);
//! * no CMAS trigger forks — a prefetch thread cannot be recalled
//!   (`SP003`).
//!
//! The `SP00x` errors fire only for branches the compiler explicitly
//! annotates with [`hidisc_isa::Annot::speculate`]: the annotation is the
//! *declaration*, the verifier checks the declared window. The current
//! slicer never emits the annotation, so today's triples are trivially
//! clean — the pass is the safety net the speculative-slicer refactor
//! lands on. [`analyse`] additionally classifies *both* edges of *every*
//! AS conditional branch in what-if mode, feeding the speculation report.

use crate::alias::AliasCtx;
use crate::{AliasVerdict, Code, Diagnostic, Loc, RegionInfo};
use hidisc_isa::{Program, Queue, SpecDir, SquashHazard};

/// One prospective run-ahead window: `[start, end)` down the `dir` edge of
/// the conditional branch at `branch_pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    pub branch_pc: u32,
    pub dir: SpecDir,
    pub start: u32,
    pub end: u32,
}

/// The run-ahead window down one edge of the conditional branch at
/// `branch_pc`. Empty (`start == end`) when the edge lands directly on
/// another control instruction.
pub fn window_for(prog: &Program, branch_pc: u32, dir: SpecDir) -> Window {
    let start = match dir {
        SpecDir::Taken => prog
            .instr(branch_pc)
            .target()
            .unwrap_or(branch_pc + 1)
            .min(prog.len()),
        SpecDir::NotTaken => branch_pc + 1,
    };
    let mut end = start;
    while end < prog.len() && !prog.instr(end).is_control() {
        end += 1;
    }
    Window {
        branch_pc,
        dir,
        start,
        end,
    }
}

/// Both edges of every conditional branch, in program order.
pub fn windows(prog: &Program) -> Vec<Window> {
    let mut out = Vec::new();
    for pc in 0..prog.len() {
        if prog.instr(pc).is_cond_branch() {
            out.push(window_for(prog, pc, SpecDir::Taken));
            out.push(window_for(prog, pc, SpecDir::NotTaken));
        }
    }
    out
}

/// The windows the compiler *declared* speculative, one per annotated
/// branch, down its predicted edge.
pub fn marked(prog: &Program) -> Vec<Window> {
    let mut out = Vec::new();
    for pc in 0..prog.len() {
        if let Some(dir) = prog.annot(pc).speculate {
            if prog.instr(pc).is_cond_branch() {
                out.push(window_for(prog, pc, dir));
            }
        }
    }
    out
}

/// The first squash hazard in a window, as `(pc, hazard)`.
fn first_hazard(prog: &Program, w: &Window) -> Option<(u32, SquashHazard)> {
    (w.start..w.end).find_map(|pc| {
        prog.annot(pc)
            .squash_hazard(prog.instr(pc))
            .map(|h| (pc, h))
    })
}

fn hazard_text(h: SquashHazard) -> (Code, Option<Queue>, String) {
    match h {
        SquashHazard::NonFlushablePush(q) => (
            Code::Sp001,
            Some(q),
            format!(
                "pushes {}, whose speculative tail cannot be flushed on a squash",
                q.name()
            ),
        ),
        SquashHazard::DestructivePop(q) => (
            Code::Sp002,
            Some(q),
            format!(
                "pops {} — a destructive pop cannot be replayed after a squash",
                q.name()
            ),
        ),
        SquashHazard::TriggerFork(t) => (
            Code::Sp003,
            None,
            format!("forks CMAS thread {t}, which cannot be recalled once triggered"),
        ),
    }
}

/// Emits `SP001`–`SP003` for every squash hazard inside a *declared*
/// run-ahead window.
pub fn check(prog: &Program, out: &mut Vec<Diagnostic>) {
    for w in marked(prog) {
        for pc in w.start..w.end {
            if let Some(h) = prog.annot(pc).squash_hazard(prog.instr(pc)) {
                let (code, queue, what) = hazard_text(h);
                out.push(Diagnostic {
                    code,
                    loc: Loc::Access(pc),
                    queue,
                    msg: format!(
                        "declared {} run-ahead window of the branch at as@{} {what}",
                        w.dir.name(),
                        w.branch_pc,
                    ),
                });
            }
        }
    }
}

/// Classifies both edges of every AS conditional branch as a prospective
/// run-ahead region: squash safety plus hoistable-load counts (a load is
/// hoistable when the window is safe and every pending store is provably
/// disjoint — see [`AliasCtx::pending_stores`]).
pub fn analyse(prog: &Program) -> Vec<RegionInfo> {
    let ctx = AliasCtx::new(prog);
    windows(prog)
        .into_iter()
        .map(|w| {
            let hazard = first_hazard(prog, &w);
            let safe = hazard.is_none();
            let mut loads = 0usize;
            let mut hoistable = 0usize;
            for pc in w.start..w.end {
                if !prog.instr(pc).is_load() {
                    continue;
                }
                loads += 1;
                if let (true, Some(ctx)) = (safe, ctx.as_ref()) {
                    let clear = ctx
                        .pending_stores(prog, &w, pc)
                        .iter()
                        .all(|&s| ctx.classify_pair(s, pc) == Some(AliasVerdict::Disjoint));
                    if clear {
                        hoistable += 1;
                    }
                }
            }
            RegionInfo {
                branch_pc: w.branch_pc,
                dir: w.dir,
                start: w.start,
                end: w.end,
                marked: prog.annot(w.branch_pc).speculate == Some(w.dir),
                safe,
                hazard: hazard.map(|(pc, h)| {
                    let (_, _, what) = hazard_text(h);
                    format!("as@{pc} {what}")
                }),
                loads,
                hoistable,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    /// The pointer-chase shape the slicer emits: a loop of LDQ loads with
    /// a CQ-pushing latch, then a deferred store and halt.
    fn pointer_like() -> Program {
        let mut p = assemble(
            "as",
            r"
        hop:
            ld.q LDQ, 8(r3)
            ld r3, 0(r3)
            sub r9, r9, 1
            bne r9, r0, hop
            sd.q SDQ, 0(r10)
            halt
        ",
        )
        .unwrap();
        p.annot_mut(3).push_cq = true;
        p
    }

    #[test]
    fn windows_stop_at_the_next_control() {
        let p = pointer_like();
        let w = window_for(&p, 3, SpecDir::Taken);
        assert_eq!((w.start, w.end), (0, 3), "taken edge re-enters the loop");
        let w = window_for(&p, 3, SpecDir::NotTaken);
        assert_eq!((w.start, w.end), (4, 5), "fall-through covers the store");
    }

    #[test]
    fn unmarked_branches_emit_nothing() {
        let p = pointer_like();
        let mut out = Vec::new();
        check(&p, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn marked_loop_latch_is_squash_safe() {
        let mut p = pointer_like();
        p.annot_mut(3).speculate = Some(SpecDir::Taken);
        let mut out = Vec::new();
        check(&p, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn declared_window_over_a_destructive_pop_is_sp002() {
        let mut p = pointer_like();
        // Predicting the exit edge would speculate the SDQ-popping store.
        p.annot_mut(3).speculate = Some(SpecDir::NotTaken);
        let mut out = Vec::new();
        check(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Sp002);
        assert_eq!(out[0].loc, Loc::Access(4));
        assert_eq!(out[0].queue, Some(Queue::Sdq));
    }

    #[test]
    fn analyse_counts_hoistable_loads() {
        let p = pointer_like();
        let regions = analyse(&p);
        assert_eq!(regions.len(), 2);
        let taken = &regions[0];
        assert!(taken.safe && !taken.marked);
        assert_eq!(taken.loads, 2);
        // The sd.q cannot reach the loop entry on the CFG, and the window
        // has no stores of its own: both loads hoist.
        assert_eq!(taken.hoistable, 2);
        let exit = &regions[1];
        assert!(!exit.safe, "the sd.q window pops the SDQ");
        assert!(exit.hazard.as_deref().unwrap().contains("pops SDQ"));
    }
}
