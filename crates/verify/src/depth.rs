//! Depth bounding and capacity-deadlock detection (`DB001`, `DB002`).
//!
//! The first half computes, per FIFO, a worst-case *symbolic occupancy
//! bound* by abstract interpretation over the paired control skeleton:
//! the abstract state is one occupancy interval `[lo, hi]` per queue at
//! each segment-pair entry point, transferred by the pair's push/pop
//! counts, joined at control-flow merges, and widened to ∞ on entries
//! whose upper bound keeps growing (a loop whose net queue delta is
//! positive). The worst case *during* a pair is `entry.hi + pushes`
//! (the consumer may drain nothing until the producer blocks), and a
//! bound above the configured depth is the paper's Figure-10 deadlock
//! precondition, reported as the `DB001` warning with the bound surfaced
//! in [`crate::VerifyReport`] so `repro --scq-depth` sweeps can cite it.
//! Entry intervals make the analysis loop-aware: a branch into the middle
//! of a segment that skips pops accumulates occupancy across iterations,
//! which the old greedy per-segment maximum could never see. For balanced
//! triples every entry interval is exactly `[0, 0]` and the symbolic
//! bound coincides with the per-segment push maximum.
//!
//! The second half decides deadlock *exactly* for each balanced segment
//! pair: the two streams are run as a greedy two-thread simulation over
//! bounded FIFOs. Blocking push/pop FIFOs are confluent — if any
//! interleaving completes, maximal-progress does too — so a stuck greedy
//! run is a real deadlock under the configured depths (`DB002`). The
//! simulation doubles as the *differential oracle* for the symbolic
//! bounds: its observed per-queue peaks ([`crate::VerifyReport::greedy_peaks`])
//! can never exceed them, and `bench::prepare` debug-asserts exactly that.

use crate::skeleton::{seg_of, QOp, Segment};
use crate::{queue_index, Code, DepthConfig, Diagnostic, Loc, QueueBound, VerifyReport, UNBOUNDED};
use hidisc_isa::{Instr, Program, Queue};
use hidisc_slicer::CmasThread;

/// Runs the pass, filling `report.bounds` and appending diagnostics.
/// `balanced[k]` gates the deadlock simulation of pair `k`: an imbalanced
/// pair would block trivially and bury its `QB001` under a spurious
/// `DB002`.
#[allow(clippy::too_many_arguments)]
pub fn check(
    cs: &Program,
    access: &Program,
    seg_cs: &[Segment],
    seg_as: &[Segment],
    balanced: &[bool],
    cmas: &[CmasThread],
    depths: DepthConfig,
    report: &mut VerifyReport,
) {
    bounds(cs, access, seg_cs, seg_as, cmas, depths, report);
    for (k, ok) in balanced.iter().enumerate() {
        if *ok {
            simulate_pair(
                k,
                &seg_cs[k],
                &seg_as[k],
                depths,
                &mut report.greedy_peaks,
                &mut report.diagnostics,
            );
        }
    }
}

/// An occupancy interval. `hi == UNBOUNDED` is the widened ∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: usize,
    hi: usize,
}

impl Iv {
    const ZERO: Iv = Iv { lo: 0, hi: 0 };

    fn join(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Shifts the interval by a net push−pop delta, clamping at empty.
    fn shift(self, delta: i64) -> Iv {
        let mv = |x: usize| -> usize {
            if x == UNBOUNDED {
                UNBOUNDED
            } else {
                (x as i64 + delta).max(0) as usize
            }
        };
        Iv {
            lo: mv(self.lo),
            hi: mv(self.hi),
        }
    }
}

/// The paired queues the symbolic analysis covers (the SCQ's producer is
/// the asynchronous CMP; it is bounded separately).
const PAIRED: [Queue; 4] = [Queue::Ldq, Queue::Sdq, Queue::Cdq, Queue::Cq];

/// The control instruction terminating a segment, reduced to the shape
/// that matters for skeleton traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Cond(u32),
    Jump(u32),
    Halt,
}

fn ctrl_kind(prog: &Program, seg: &Segment) -> Option<CtrlKind> {
    let pc = seg.ctrl?;
    Some(match *prog.instr(pc) {
        Instr::Branch { target, .. } | Instr::CBranch { target } => CtrlKind::Cond(target),
        Instr::Jump { target } => CtrlKind::Jump(target),
        Instr::Halt => CtrlKind::Halt,
        _ => return None,
    })
}

/// One entry configuration of a segment pair: the pair index plus the
/// entry pc on each side (branches may enter a segment mid-way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    k: usize,
    ce: u32,
    ae: u32,
}

/// Pushes (as locations) and pop count for one queue across both halves of
/// a pair, restricted to ops at or after the entry pcs.
fn pair_traffic(sc: &Segment, sa: &Segment, ce: u32, ae: u32, q: Queue) -> (Vec<Loc>, usize) {
    let mut pushes = Vec::new();
    let mut pops = 0usize;
    for (seg, entry, mk) in [
        (sc, ce, Loc::Cs as fn(u32) -> Loc),
        (sa, ae, Loc::Access as fn(u32) -> Loc),
    ] {
        for &(pc, op) in &seg.ops {
            if pc < entry || op.queue() != q {
                continue;
            }
            match op {
                QOp::Push(_) => pushes.push(mk(pc)),
                QOp::Pop(_) => pops += 1,
            }
        }
    }
    (pushes, pops)
}

/// Interval abstract interpretation over the paired control skeleton.
/// `None` when the skeletons cannot be paired (different segment counts or
/// mismatched control kinds) — the caller falls back to the conservative
/// per-segment maximum, and the isomorphism errors are already on the
/// report as `QB002`/`QB003`.
fn symbolic(
    cs: &Program,
    access: &Program,
    seg_cs: &[Segment],
    seg_as: &[Segment],
) -> Option<Vec<(Node, [Iv; 4])>> {
    if seg_cs.len() != seg_as.len() || seg_cs.is_empty() {
        return None;
    }
    let pairs = seg_cs.len();
    let as_seg_of = seg_of(seg_as, access.len());
    let cs_seg_of = seg_of(seg_cs, cs.len());

    // Successor edges of each pair: (pair, cs entry, as entry).
    let mut succs: Vec<Vec<(usize, u32, u32)>> = vec![Vec::new(); pairs];
    for k in 0..pairs {
        let ck = ctrl_kind(cs, &seg_cs[k]);
        let ak = ctrl_kind(access, &seg_as[k]);
        let edge = |ct: u32, at: u32| -> Option<(usize, u32, u32)> {
            let m = *as_seg_of.get(at as usize)?;
            if m == usize::MAX || cs_seg_of.get(ct as usize) != Some(&m) {
                return None;
            }
            Some((m, ct, at))
        };
        match (ck, ak) {
            (Some(CtrlKind::Halt), Some(CtrlKind::Halt)) => {}
            (None, None) => {}
            (Some(CtrlKind::Jump(ct)), Some(CtrlKind::Jump(at))) => {
                succs[k].push(edge(ct, at)?);
            }
            (Some(CtrlKind::Cond(ct)), Some(CtrlKind::Cond(at))) => {
                succs[k].push(edge(ct, at)?);
                if k + 1 < pairs {
                    succs[k].push((k + 1, seg_cs[k + 1].start, seg_as[k + 1].start));
                }
            }
            _ => return None,
        }
    }

    // Work-list fixpoint with per-node widening.
    let mut states: Vec<(Node, [Iv; 4], u32)> = vec![(
        Node {
            k: 0,
            ce: seg_cs[0].start,
            ae: seg_as[0].start,
        },
        [Iv::ZERO; 4],
        0,
    )];
    let mut work = vec![0usize];
    while let Some(n) = work.pop() {
        let (node, state, _) = states[n];
        // Exit state of a traversal from this entry.
        let mut exit = state;
        for (qi, q) in PAIRED.iter().enumerate() {
            let (pushes, pops) =
                pair_traffic(&seg_cs[node.k], &seg_as[node.k], node.ce, node.ae, *q);
            exit[qi] = exit[qi].shift(pushes.len() as i64 - pops as i64);
        }
        for &(m, ct, at) in &succs[node.k] {
            let target = Node {
                k: m,
                ce: ct,
                ae: at,
            };
            match states.iter().position(|(t, _, _)| *t == target) {
                Some(i) => {
                    let joined: [Iv; 4] = std::array::from_fn(|qi| states[i].1[qi].join(exit[qi]));
                    if joined != states[i].1 {
                        states[i].2 += 1;
                        let widened = states[i].2 > 8;
                        states[i].1 = std::array::from_fn(|qi| {
                            let mut v = joined[qi];
                            if widened && v.hi > states[i].1[qi].hi {
                                v.hi = UNBOUNDED;
                            }
                            v
                        });
                        work.push(i);
                    }
                }
                None => {
                    states.push((target, exit, 0));
                    work.push(states.len() - 1);
                }
            }
        }
    }
    Some(states.into_iter().map(|(n, s, _)| (n, s)).collect())
}

/// Computes the occupancy bound for every queue and emits `DB001` where a
/// bound exceeds (or escapes) the configured depth.
fn bounds(
    cs: &Program,
    access: &Program,
    seg_cs: &[Segment],
    seg_as: &[Segment],
    cmas: &[CmasThread],
    depths: DepthConfig,
    report: &mut VerifyReport,
) {
    let states = symbolic(cs, access, seg_cs, seg_as);
    for q in Queue::ALL {
        let cap = depths.cap(q);
        let (bound, overflow) = match (&states, q) {
            (_, Queue::Scq) => scq_bound(cmas, cap),
            (Some(states), _) => {
                // Worst case at any reachable entry: everything already in
                // flight plus every push of the pair before the consumer
                // drains anything.
                let mut bound = 0usize;
                let mut overflow = None;
                for (node, state) in states {
                    let (pushes, _) =
                        pair_traffic(&seg_cs[node.k], &seg_as[node.k], node.ce, node.ae, q);
                    let entry = state[queue_index(q)];
                    let during = entry.hi.saturating_add(pushes.len());
                    if during > bound {
                        bound = during;
                        overflow = (during > cap && !pushes.is_empty()).then(|| {
                            let idx = cap.saturating_sub(entry.lo).min(pushes.len() - 1);
                            pushes[idx]
                        });
                    }
                }
                (bound, overflow)
            }
            // Unpairable skeletons: conservative per-segment maximum on the
            // architected producer side (the pre-symbolic behaviour).
            (None, _) => {
                let producer: Vec<(Loc, &Segment)> = match q {
                    Queue::Ldq | Queue::Cq => seg_as.iter().map(|s| (Loc::Access(0), s)).collect(),
                    _ => seg_cs.iter().map(|s| (Loc::Cs(0), s)).collect(),
                };
                let mut bound = 0usize;
                let mut overflow = None;
                for (side, seg) in producer {
                    let pushes: Vec<u32> = seg
                        .ops
                        .iter()
                        .filter(|(_, op)| *op == QOp::Push(q))
                        .map(|&(pc, _)| pc)
                        .collect();
                    if pushes.len() > bound {
                        bound = pushes.len();
                        overflow = (pushes.len() > cap).then(|| {
                            let pc = pushes[cap.min(pushes.len() - 1)];
                            match side {
                                Loc::Cs(_) => Loc::Cs(pc),
                                _ => Loc::Access(pc),
                            }
                        });
                    }
                }
                (bound, overflow)
            }
        };
        report.bounds.push(QueueBound {
            queue: q,
            bound,
            cap,
        });
        if let Some(loc) = overflow {
            let msg = if bound == UNBOUNDED {
                format!(
                    "static occupancy of the {} is unbounded: a loop accumulates entries \
                     faster than the consumer drains them (interval widening reached ∞); \
                     the queue fills to its depth {cap} and the producer wedges here",
                    q.name()
                )
            } else {
                format!(
                    "static occupancy bound {bound} exceeds the configured {} depth {cap} \
                     (deadlock precondition; this push cannot commit while the consumer \
                     is still upstream)",
                    q.name()
                )
            };
            report.diagnostics.push(Diagnostic {
                code: Code::Db001,
                loc,
                queue: Some(q),
                msg,
            });
        }
    }
}

/// The SCQ bound: the most `putscq` increments any single CMAS segment can
/// commit. The SCQ is *designed* to saturate — `putscq` blocking is the
/// slip-control back-pressure, not a deadlock — so per-segment pressure is
/// the only meaningful static figure.
fn scq_bound(cmas: &[CmasThread], cap: usize) -> (usize, Option<Loc>) {
    let mut bound = 0usize;
    let mut overflow = None;
    for t in cmas {
        for seg in crate::skeleton::segments(&t.prog) {
            let pushes: Vec<u32> = seg
                .ops
                .iter()
                .filter(|(_, op)| *op == QOp::Push(Queue::Scq))
                .map(|&(pc, _)| pc)
                .collect();
            if pushes.len() > bound {
                bound = pushes.len();
                overflow = (pushes.len() > cap)
                    .then(|| Loc::Cmas(t.id, pushes[cap.min(pushes.len() - 1)]));
            }
        }
    }
    (bound, overflow)
}

/// Greedy two-thread simulation of one balanced segment pair under the
/// configured depths, recording the peak occupancy each queue reaches.
/// SCQ operations are excluded: its producer is the asynchronous CMP and
/// the AS-side `scq_get` never blocks.
fn simulate_pair(
    k: usize,
    sc: &Segment,
    sa: &Segment,
    depths: DepthConfig,
    peaks: &mut [usize; 5],
    out: &mut Vec<Diagnostic>,
) {
    let cs_ops: Vec<(u32, QOp)> = sc
        .ops
        .iter()
        .filter(|(_, op)| op.queue() != Queue::Scq)
        .copied()
        .collect();
    let as_ops: Vec<(u32, QOp)> = sa
        .ops
        .iter()
        .filter(|(_, op)| op.queue() != Queue::Scq)
        .copied()
        .collect();

    let mut occ = [0usize; Queue::ALL.len()];
    let mut ic = 0usize;
    let mut ia = 0usize;
    let mut step = |i: &mut usize, ops: &[(u32, QOp)], occ: &mut [usize; 5]| -> bool {
        let mut progressed = false;
        while *i < ops.len() {
            let (_, op) = ops[*i];
            let qi = queue_index(op.queue());
            match op {
                QOp::Push(q) => {
                    if occ[qi] >= depths.cap(q) {
                        break;
                    }
                    occ[qi] += 1;
                    peaks[qi] = peaks[qi].max(occ[qi]);
                }
                QOp::Pop(_) => {
                    if occ[qi] == 0 {
                        break;
                    }
                    occ[qi] -= 1;
                }
            }
            *i += 1;
            progressed = true;
        }
        progressed
    };

    loop {
        let a = step(&mut ia, &as_ops, &mut occ);
        let c = step(&mut ic, &cs_ops, &mut occ);
        if ia == as_ops.len() && ic == cs_ops.len() {
            return;
        }
        if !a && !c {
            break;
        }
    }

    // Deadlock: describe both stuck sides, anchor at the blocked AS op when
    // the AS is among them.
    let describe = |ops: &[(u32, QOp)], i: usize| -> Option<String> {
        ops.get(i).map(|(_, op)| {
            let q = op.queue();
            if op.is_push() {
                format!(
                    "blocked pushing {} (full, depth {})",
                    q.name(),
                    depths.cap(q)
                )
            } else {
                format!("blocked popping {} (empty)", q.name())
            }
        })
    };
    let a_desc = describe(&as_ops, ia);
    let c_desc = describe(&cs_ops, ic);
    let (loc, queue) = match a_desc.as_ref() {
        Some(_) => (Loc::Access(as_ops[ia].0), Some(as_ops[ia].1.queue())),
        None => (Loc::Cs(cs_ops[ic].0), Some(cs_ops[ic].1.queue())),
    };
    let mut parts = Vec::new();
    if let Some(d) = a_desc {
        parts.push(format!("access stream {d}"));
    }
    if let Some(d) = c_desc {
        parts.push(format!("computation stream {d}"));
    }
    out.push(Diagnostic {
        code: Code::Db002,
        loc,
        queue,
        msg: format!(
            "segment {k} deadlocks under the configured depths: {}",
            parts.join("; ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::segments;
    use hidisc_isa::asm::assemble;

    fn shallow(ldq: usize, sdq: usize) -> DepthConfig {
        DepthConfig {
            ldq,
            sdq,
            ..DepthConfig::paper()
        }
    }

    fn run(cs_src: &str, as_src: &str, depths: DepthConfig) -> VerifyReport {
        let cs = assemble("cs", cs_src).unwrap();
        let access = assemble("as", as_src).unwrap();
        run_progs(cs, access, depths)
    }

    fn run_progs(cs: Program, access: Program, depths: DepthConfig) -> VerifyReport {
        let sc = segments(&cs);
        let sa = segments(&access);
        let balanced = vec![true; sc.len().min(sa.len())];
        let mut report = VerifyReport::default();
        check(&cs, &access, &sc, &sa, &balanced, &[], depths, &mut report);
        report
    }

    #[test]
    fn bounds_track_max_pushes_per_segment() {
        let r = run(
            "recv r4, LDQ\nrecv r5, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt",
            DepthConfig::paper(),
        );
        let ldq = r.bounds.iter().find(|b| b.queue == Queue::Ldq).unwrap();
        assert_eq!(ldq.bound, 2);
        assert_eq!(ldq.cap, 32);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn over_depth_warns_db001() {
        let r = run(
            "recv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nhalt",
            shallow(2, 32),
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Db001)
            .expect("DB001");
        // The third push (pc 2) is the first that cannot commit.
        assert_eq!(d.loc, Loc::Access(2));
        assert_eq!(d.queue, Some(Queue::Ldq));
        // Bound still completes without deadlock: the consumer pops
        // interleave, so DB002 must NOT fire.
        assert!(!r.diagnostics.iter().any(|d| d.code == Code::Db002));
    }

    #[test]
    fn crossed_bursts_deadlock_db002() {
        // AS pushes 3 LDQ values then pops 3 SDQ; CS pushes 3 SDQ then
        // pops 3 LDQ. Balanced, but with depth 2 both sides block.
        let r = run(
            "send SDQ, r1\nsend SDQ, r1\nsend SDQ, r1\nrecv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nrecv r3, SDQ\nrecv r3, SDQ\nrecv r3, SDQ\nhalt",
            shallow(2, 2),
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Db002)
            .expect("DB002");
        // AS blocks at its third LDQ push.
        assert_eq!(d.loc, Loc::Access(2));
        assert_eq!(d.queue, Some(Queue::Ldq));
        assert!(d.msg.contains("access stream blocked pushing LDQ"));
        assert!(d.msg.contains("computation stream blocked pushing SDQ"));
    }

    #[test]
    fn same_shape_completes_at_paper_depths() {
        let r = run(
            "send SDQ, r1\nsend SDQ, r1\nsend SDQ, r1\nrecv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nrecv r3, SDQ\nrecv r3, SDQ\nrecv r3, SDQ\nhalt",
            DepthConfig::paper(),
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn balanced_loop_entry_stays_zero() {
        // A lock-step producer/consumer loop: occupancy returns to 0 at
        // every boundary, so the symbolic bound equals the per-iteration
        // push count.
        let cs = assemble("cs", "l:\nrecv r4, LDQ\ncbr l\nhalt").unwrap();
        let mut access = assemble("as", "l:\nld.q LDQ, 0(r2)\nbne r9, r0, l\nhalt").unwrap();
        access.annot_mut(1).push_cq = true;
        let r = run_progs(cs, access, DepthConfig::paper());
        let ldq = r.bounds.iter().find(|b| b.queue == Queue::Ldq).unwrap();
        assert_eq!(ldq.bound, 1);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn pop_skipping_back_edge_widens_to_unbounded() {
        // The CS consume-branch re-enters its segment *after* the recv:
        // every iteration pushes one LDQ value and pops nothing. The
        // interval analysis must widen the entry to ∞ and warn, where the
        // old per-segment maximum saw a harmless bound of 1.
        let cs = assemble("cs", "recv r4, LDQ\nl:\ncbr l\nhalt").unwrap();
        let mut access = assemble("as", "l:\nld.q LDQ, 0(r2)\nbne r9, r0, l\nhalt").unwrap();
        access.annot_mut(1).push_cq = true;
        let r = run_progs(cs, access, DepthConfig::paper());
        let ldq = r.bounds.iter().find(|b| b.queue == Queue::Ldq).unwrap();
        assert!(ldq.is_unbounded(), "bound = {}", ldq.bound);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Db001)
            .expect("DB001");
        assert!(d.msg.contains("unbounded"), "{}", d.msg);
        assert_eq!(d.queue, Some(Queue::Ldq));
    }

    #[test]
    fn greedy_peaks_recorded_and_dominated() {
        let r = run(
            "send SDQ, r1\nsend SDQ, r1\nrecv r4, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nrecv r3, SDQ\nrecv r3, SDQ\nhalt",
            DepthConfig::paper(),
        );
        assert_eq!(r.greedy_peaks[queue_index(Queue::Ldq)], 1);
        assert_eq!(r.greedy_peaks[queue_index(Queue::Sdq)], 2);
        for b in &r.bounds {
            assert!(
                b.bound >= r.greedy_peaks[queue_index(b.queue)],
                "symbolic {} bound {} below greedy peak",
                b.queue.name(),
                b.bound,
            );
        }
    }
}
