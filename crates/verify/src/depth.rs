//! Depth bounding and capacity-deadlock detection (`DB001`, `DB002`).
//!
//! The first half computes, per FIFO, the worst-case *static occupancy*: the
//! most values any single producer segment can enqueue before its consumer
//! drains anything (queues start empty at segment entry for balanced pairs,
//! so this bounds steady-state occupancy). A bound above the configured
//! depth is the paper's Figure-10 deadlock precondition and is reported as
//! the `DB001` warning, with the bound surfaced in [`crate::VerifyReport`]
//! so `repro --scq-depth` sweeps can cite it.
//!
//! The second half decides deadlock *exactly* for each balanced segment
//! pair: the two streams are run as a greedy two-thread simulation over
//! bounded FIFOs. Blocking push/pop FIFOs are confluent — if any
//! interleaving completes, maximal-progress does too — so a stuck greedy
//! run is a real deadlock under the configured depths (`DB002`).

use crate::skeleton::{QOp, Segment};
use crate::{queue_index, Code, DepthConfig, Diagnostic, Loc, QueueBound, VerifyReport};
use hidisc_isa::Queue;
use hidisc_slicer::CmasThread;

/// Runs the pass, filling `report.bounds` and appending diagnostics.
/// `balanced[k]` gates the deadlock simulation of pair `k`: an imbalanced
/// pair would block trivially and bury its `QB001` under a spurious
/// `DB002`.
pub fn check(
    seg_cs: &[Segment],
    seg_as: &[Segment],
    balanced: &[bool],
    cmas: &[CmasThread],
    depths: DepthConfig,
    report: &mut VerifyReport,
) {
    bounds(seg_cs, seg_as, cmas, depths, report);
    for (k, ok) in balanced.iter().enumerate() {
        if *ok {
            simulate_pair(k, &seg_cs[k], &seg_as[k], depths, &mut report.diagnostics);
        }
    }
}

/// Computes the static occupancy bound for every queue and emits `DB001`
/// where a bound exceeds the configured depth.
fn bounds(
    seg_cs: &[Segment],
    seg_as: &[Segment],
    cmas: &[CmasThread],
    depths: DepthConfig,
    report: &mut VerifyReport,
) {
    for q in Queue::ALL {
        // Producer segments for this queue: AS for LDQ/CQ, CS for SDQ/CDQ,
        // the CMAS thread programs for the SCQ.
        let cmas_segs: Vec<(u32, Segment)> = if q == Queue::Scq {
            cmas.iter()
                .flat_map(|t| {
                    crate::skeleton::segments(&t.prog)
                        .into_iter()
                        .map(move |s| (t.id, s))
                })
                .collect()
        } else {
            Vec::new()
        };
        let producer_segs: Vec<(Option<u32>, &Segment)> = match q {
            Queue::Ldq | Queue::Cq => seg_as.iter().map(|s| (None, s)).collect(),
            Queue::Sdq | Queue::Cdq => seg_cs.iter().map(|s| (None, s)).collect(),
            Queue::Scq => cmas_segs.iter().map(|(id, s)| (Some(*id), s)).collect(),
        };

        let cap = depths.cap(q);
        let mut bound = 0usize;
        let mut overflow: Option<Loc> = None;
        for (thread, seg) in producer_segs {
            let pushes: Vec<u32> = seg
                .ops
                .iter()
                .filter(|(_, op)| *op == QOp::Push(q))
                .map(|&(pc, _)| pc)
                .collect();
            if pushes.len() > bound {
                bound = pushes.len();
                overflow = (pushes.len() > cap).then(|| {
                    let pc = pushes[cap.min(pushes.len() - 1)];
                    match (q, thread) {
                        (Queue::Scq, Some(id)) => Loc::Cmas(id, pc),
                        (Queue::Sdq | Queue::Cdq, _) => Loc::Cs(pc),
                        _ => Loc::Access(pc),
                    }
                });
            }
        }
        report.bounds.push(QueueBound {
            queue: q,
            bound,
            cap,
        });
        if let Some(loc) = overflow {
            report.diagnostics.push(Diagnostic {
                code: Code::Db001,
                loc,
                queue: Some(q),
                msg: format!(
                    "static occupancy bound {bound} exceeds the configured {} depth {cap} \
                     (deadlock precondition; this push cannot commit while the consumer \
                     is still upstream)",
                    q.name()
                ),
            });
        }
    }
}

/// Greedy two-thread simulation of one balanced segment pair under the
/// configured depths. SCQ operations are excluded: its producer is the
/// asynchronous CMP and the AS-side `scq_get` never blocks.
fn simulate_pair(
    k: usize,
    sc: &Segment,
    sa: &Segment,
    depths: DepthConfig,
    out: &mut Vec<Diagnostic>,
) {
    let cs_ops: Vec<(u32, QOp)> = sc
        .ops
        .iter()
        .filter(|(_, op)| op.queue() != Queue::Scq)
        .copied()
        .collect();
    let as_ops: Vec<(u32, QOp)> = sa
        .ops
        .iter()
        .filter(|(_, op)| op.queue() != Queue::Scq)
        .copied()
        .collect();

    let mut occ = [0usize; Queue::ALL.len()];
    let mut ic = 0usize;
    let mut ia = 0usize;
    let step = |i: &mut usize, ops: &[(u32, QOp)], occ: &mut [usize; 5]| -> bool {
        let mut progressed = false;
        while *i < ops.len() {
            let (_, op) = ops[*i];
            let qi = queue_index(op.queue());
            match op {
                QOp::Push(q) => {
                    if occ[qi] >= depths.cap(q) {
                        break;
                    }
                    occ[qi] += 1;
                }
                QOp::Pop(_) => {
                    if occ[qi] == 0 {
                        break;
                    }
                    occ[qi] -= 1;
                }
            }
            *i += 1;
            progressed = true;
        }
        progressed
    };

    loop {
        let a = step(&mut ia, &as_ops, &mut occ);
        let c = step(&mut ic, &cs_ops, &mut occ);
        if ia == as_ops.len() && ic == cs_ops.len() {
            return;
        }
        if !a && !c {
            break;
        }
    }

    // Deadlock: describe both stuck sides, anchor at the blocked AS op when
    // the AS is among them.
    let describe = |ops: &[(u32, QOp)], i: usize| -> Option<String> {
        ops.get(i).map(|(_, op)| {
            let q = op.queue();
            if op.is_push() {
                format!(
                    "blocked pushing {} (full, depth {})",
                    q.name(),
                    depths.cap(q)
                )
            } else {
                format!("blocked popping {} (empty)", q.name())
            }
        })
    };
    let a_desc = describe(&as_ops, ia);
    let c_desc = describe(&cs_ops, ic);
    let (loc, queue) = match a_desc.as_ref() {
        Some(_) => (Loc::Access(as_ops[ia].0), Some(as_ops[ia].1.queue())),
        None => (Loc::Cs(cs_ops[ic].0), Some(cs_ops[ic].1.queue())),
    };
    let mut parts = Vec::new();
    if let Some(d) = a_desc {
        parts.push(format!("access stream {d}"));
    }
    if let Some(d) = c_desc {
        parts.push(format!("computation stream {d}"));
    }
    out.push(Diagnostic {
        code: Code::Db002,
        loc,
        queue,
        msg: format!(
            "segment {k} deadlocks under the configured depths: {}",
            parts.join("; ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::segments;
    use hidisc_isa::asm::assemble;

    fn shallow(ldq: usize, sdq: usize) -> DepthConfig {
        DepthConfig {
            ldq,
            sdq,
            ..DepthConfig::paper()
        }
    }

    fn run(cs_src: &str, as_src: &str, depths: DepthConfig) -> VerifyReport {
        let cs = assemble("cs", cs_src).unwrap();
        let access = assemble("as", as_src).unwrap();
        let sc = segments(&cs);
        let sa = segments(&access);
        let balanced = vec![true; sc.len().min(sa.len())];
        let mut report = VerifyReport::default();
        check(&sc, &sa, &balanced, &[], depths, &mut report);
        report
    }

    #[test]
    fn bounds_track_max_pushes_per_segment() {
        let r = run(
            "recv r4, LDQ\nrecv r5, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt",
            DepthConfig::paper(),
        );
        let ldq = r.bounds.iter().find(|b| b.queue == Queue::Ldq).unwrap();
        assert_eq!(ldq.bound, 2);
        assert_eq!(ldq.cap, 32);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn over_depth_warns_db001() {
        let r = run(
            "recv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nhalt",
            shallow(2, 32),
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Db001)
            .expect("DB001");
        // The third push (pc 2) is the first that cannot commit.
        assert_eq!(d.loc, Loc::Access(2));
        assert_eq!(d.queue, Some(Queue::Ldq));
        // Bound still completes without deadlock: the consumer pops
        // interleave, so DB002 must NOT fire.
        assert!(!r.diagnostics.iter().any(|d| d.code == Code::Db002));
    }

    #[test]
    fn crossed_bursts_deadlock_db002() {
        // AS pushes 3 LDQ values then pops 3 SDQ; CS pushes 3 SDQ then
        // pops 3 LDQ. Balanced, but with depth 2 both sides block.
        let r = run(
            "send SDQ, r1\nsend SDQ, r1\nsend SDQ, r1\nrecv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nrecv r3, SDQ\nrecv r3, SDQ\nrecv r3, SDQ\nhalt",
            shallow(2, 2),
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::Db002)
            .expect("DB002");
        // AS blocks at its third LDQ push.
        assert_eq!(d.loc, Loc::Access(2));
        assert_eq!(d.queue, Some(Queue::Ldq));
        assert!(d.msg.contains("access stream blocked pushing LDQ"));
        assert!(d.msg.contains("computation stream blocked pushing SDQ"));
    }

    #[test]
    fn same_shape_completes_at_paper_depths() {
        let r = run(
            "send SDQ, r1\nsend SDQ, r1\nsend SDQ, r1\nrecv r4, LDQ\nrecv r5, LDQ\nrecv r6, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nld.q LDQ, 16(r2)\nrecv r3, SDQ\nrecv r3, SDQ\nrecv r3, SDQ\nhalt",
            DepthConfig::paper(),
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }
}
