//! May-alias / address disambiguation (`AL001`, `AL002`).
//!
//! The pass interprets the Access Stream over a flow-sensitive *base +
//! offset* abstract domain: every integer register holds either a known
//! constant, a constant displacement off the **entry value** of some
//! register (the symbolic base), or ⊤. Transfer functions follow
//! [`hidisc_isa::AddrForm`] — the syntactic address-formation classifier on
//! the instruction set — plus constant folding of arbitrary ALU ops. Joins
//! meet at CFG merge points; the domain has chain height 2 per register
//! (⊥ → value → ⊤), so the fixpoint needs no widening.
//!
//! Two memory operations with abstract addresses over the *same* base (or
//! both constant) compare by offset-interval disjointness; anything else is
//! ambiguous — two distinct entry-value bases may alias (the caller could
//! pass overlapping buffers), so they are never "provably disjoint".
//!
//! The public surface:
//! * [`classify_loads`] — every AS load versus every CFG-upstream store
//!   (the report's per-load table);
//! * [`check`] — `AL001`/`AL002` warnings for loads inside *declared*
//!   run-ahead windows that cross a pending store they cannot bypass;
//! * [`AliasCtx`] — the shared analysis context [`crate::specregion`]
//!   reuses to count hoistable loads per region.

use crate::specregion::{self, Window};
use crate::{AliasVerdict, Code, Diagnostic, LoadClass, Loc};
use hidisc_isa::{AddrForm, Instr, IntReg, Program, Src};
use hidisc_slicer::cfg::Cfg;

/// Abstract value of an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreached (the lattice bottom).
    Bot,
    /// Exactly this constant.
    Const(i64),
    /// The value register `r<base>` held at program entry, plus a constant
    /// displacement.
    Base(u8, i64),
    /// Unknown (the lattice top).
    Top,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bot, x) | (x, AbsVal::Bot) => x,
            (x, y) if x == y => x,
            _ => AbsVal::Top,
        }
    }

    /// Adds a known constant to the value.
    fn add(self, k: i64) -> AbsVal {
        match self {
            AbsVal::Const(c) => AbsVal::Const(c.wrapping_add(k)),
            AbsVal::Base(o, d) => AbsVal::Base(o, d.wrapping_add(k)),
            x => x,
        }
    }
}

/// One register file's worth of abstract values.
type State = [AbsVal; 32];

fn eval(regs: &State, r: IntReg) -> AbsVal {
    if r.is_zero() {
        AbsVal::Const(0)
    } else {
        regs[r.index()]
    }
}

/// Applies one instruction's effect on the abstract register file.
fn transfer(i: &Instr, regs: &mut State) {
    let Some((dst, form)) = i.addr_form() else {
        return;
    };
    let val = match form {
        AddrForm::Const { imm } => AbsVal::Const(imm),
        AddrForm::Offset { src, imm } => eval(regs, src).add(imm),
        AddrForm::Sum { a, b } => match (eval(regs, a), eval(regs, b)) {
            (AbsVal::Const(x), v) | (v, AbsVal::Const(x)) => v.add(x),
            _ => AbsVal::Top,
        },
        AddrForm::Opaque => fold_opaque(i, regs),
    };
    regs[dst.index()] = val;
}

/// Constant-folds an opaque ALU op when every operand is abstractly
/// constant; everything else (loads, receives, converts) is ⊤.
fn fold_opaque(i: &Instr, regs: &State) -> AbsVal {
    if let Instr::IntOp { op, a, b, .. } = *i {
        let av = eval(regs, a);
        let bv = match b {
            Src::Reg(r) => eval(regs, r),
            Src::Imm(k) => AbsVal::Const(k),
        };
        if let (AbsVal::Const(x), AbsVal::Const(y)) = (av, bv) {
            return AbsVal::Const(op.eval(x, y));
        }
    }
    AbsVal::Top
}

/// True when the byte ranges `[a, a+wa)` and `[b, b+wb)` are disjoint.
fn ranges_disjoint(a: i64, wa: u64, b: i64, wb: u64) -> bool {
    let (a, b) = (a as i128, b as i128);
    a + wa as i128 <= b || b + wb as i128 <= a
}

/// Classifies two abstract addresses with access widths in bytes.
pub fn classify(a: AbsVal, wa: u64, b: AbsVal, wb: u64) -> AliasVerdict {
    let (x, y) = match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => (x, y),
        (AbsVal::Base(o1, x), AbsVal::Base(o2, y)) if o1 == o2 => (x, y),
        _ => return AliasVerdict::Ambiguous,
    };
    if ranges_disjoint(x, wa, y, wb) {
        AliasVerdict::Disjoint
    } else {
        AliasVerdict::MustAlias
    }
}

/// The shared alias-analysis context over one Access Stream: abstract
/// addresses of every memory operation plus CFG path reachability.
pub struct AliasCtx {
    cfg: Cfg,
    /// Abstract `(address, width-in-bytes)` per instruction index; `None`
    /// for non-memory instructions (prefetches included — they have no
    /// architectural effect and never conflict).
    addrs: Vec<Option<(AbsVal, u64)>>,
    /// `reach[a][b]`: a path of ≥ 1 CFG edge leads from block `a` to `b`.
    reach: Vec<Vec<bool>>,
}

impl AliasCtx {
    /// Runs the abstract interpretation. `None` for empty programs.
    pub fn new(prog: &Program) -> Option<AliasCtx> {
        if prog.is_empty() {
            return None;
        }
        let cfg = Cfg::build(prog);
        let nb = cfg.len();

        // Entry state: every register holds its own symbolic entry value —
        // that is what makes the domain relational enough to separate
        // `8(r3)` from `16(r3)` while refusing to compare `0(r6)` with
        // `0(r10)`.
        let mut entry: State = [AbsVal::Top; 32];
        for (n, slot) in entry.iter_mut().enumerate() {
            *slot = AbsVal::Base(n as u8, 0);
        }
        let mut inset: Vec<State> = vec![[AbsVal::Bot; 32]; nb];
        inset[0] = entry;

        let apply_block = |blk: usize, mut s: State| -> State {
            for pc in cfg.blocks[blk].range() {
                transfer(prog.instr(pc), &mut s);
            }
            s
        };
        let mut outset: Vec<State> = (0..nb).map(|b| apply_block(b, inset[b])).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut meet = if b == 0 { entry } else { [AbsVal::Bot; 32] };
                for &p in &cfg.blocks[b].preds {
                    for (m, &o) in meet.iter_mut().zip(outset[p].iter()) {
                        *m = m.join(o);
                    }
                }
                if meet != inset[b] {
                    inset[b] = meet;
                    changed = true;
                }
                let new_out = apply_block(b, inset[b]);
                if new_out != outset[b] {
                    outset[b] = new_out;
                    changed = true;
                }
            }
        }

        // Abstract address of each memory op, evaluated at its own point.
        let mut addrs: Vec<Option<(AbsVal, u64)>> = vec![None; prog.len() as usize];
        for (b, entry) in inset.iter().enumerate().take(nb) {
            let mut s = *entry;
            for pc in cfg.blocks[b].range() {
                let i = prog.instr(pc);
                if (i.is_load() || i.is_store()) && !matches!(i, Instr::Prefetch { .. }) {
                    if let (Some((base, off)), Some(w)) = (i.mem_addr_operands(), i.mem_width()) {
                        addrs[pc as usize] = Some((eval(&s, base).add(off as i64), w.bytes()));
                    }
                }
                transfer(i, &mut s);
            }
        }

        // Block-level transitive closure (≥ 1 edge). Streams are tens of
        // instructions; the cubic closure is nothing.
        let mut reach = vec![vec![false; nb]; nb];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for &s in &blk.succs {
                reach[b][s] = true;
            }
        }
        for k in 0..nb {
            let row_k = reach[k].clone();
            for row in reach.iter_mut() {
                if row[k] {
                    for (j, &r) in row_k.iter().enumerate() {
                        if r {
                            row[j] = true;
                        }
                    }
                }
            }
        }

        Some(AliasCtx { cfg, addrs, reach })
    }

    /// True when instruction `from` may execute before control reaches
    /// `to` on some path (same-block program order, or a ≥ 1-edge path
    /// between their blocks).
    pub fn upstream(&self, from: u32, to: u32) -> bool {
        let (a, b) = (
            self.cfg.block_containing(from),
            self.cfg.block_containing(to),
        );
        (a == b && from < to) || self.reach[a][b]
    }

    /// Classifies the memory ops at two instruction indices. `None` when
    /// either is not an analysed memory op.
    pub fn classify_pair(&self, store_pc: u32, load_pc: u32) -> Option<AliasVerdict> {
        let (sa, sw) = self.addrs[store_pc as usize]?;
        let (la, lw) = self.addrs[load_pc as usize]?;
        Some(classify(sa, sw, la, lw))
    }

    /// The stores still *pending* when a load at `load_pc` inside window
    /// `w` issues speculatively: stores earlier in the window (their data
    /// may not be ready while running ahead), plus every queue-data store
    /// (`s.q`) that can reach the window's entry — those defer on the CS
    /// and may sit unperformed in the store queue arbitrarily long.
    /// Plain stores before the branch carry AP-local data and are retired
    /// by the time the branch issues, so they are not pending.
    pub fn pending_stores(&self, prog: &Program, w: &Window, load_pc: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for pc in w.start..load_pc {
            if prog.instr(pc).is_store() {
                out.push(pc);
            }
        }
        for pc in 0..prog.len() {
            let i = prog.instr(pc);
            if matches!(i, Instr::StoreQ { .. })
                && !(w.start..load_pc).contains(&pc)
                && self.upstream(pc, w.start)
            {
                out.push(pc);
            }
        }
        out
    }
}

/// Classifies every AS load against every store that may execute before it
/// on some CFG path. The worst verdict wins; loads with no upstream stores
/// are provably disjoint by vacuity.
pub fn classify_loads(prog: &Program) -> Vec<LoadClass> {
    let Some(ctx) = AliasCtx::new(prog) else {
        return Vec::new();
    };
    let stores: Vec<u32> = (0..prog.len())
        .filter(|&pc| prog.instr(pc).is_store())
        .collect();
    let mut out = Vec::new();
    for pc in 0..prog.len() {
        if !prog.instr(pc).is_load() {
            continue;
        }
        let mut worst = AliasVerdict::Disjoint;
        let mut against = None;
        let mut count = 0usize;
        for &s in &stores {
            if !ctx.upstream(s, pc) {
                continue;
            }
            count += 1;
            if let Some(v) = ctx.classify_pair(s, pc) {
                if v > worst {
                    worst = v;
                    against = Some(s);
                }
            }
        }
        out.push(LoadClass {
            pc,
            verdict: worst,
            stores: count,
            against,
        });
    }
    out
}

/// Emits `AL001`/`AL002` for loads inside *declared* run-ahead windows
/// that cross a pending store they cannot provably bypass. At most one
/// diagnostic per load, against the worst-classified store.
pub fn check(prog: &Program, out: &mut Vec<Diagnostic>) {
    let windows = specregion::marked(prog);
    if windows.is_empty() {
        return;
    }
    let Some(ctx) = AliasCtx::new(prog) else {
        return;
    };
    for w in &windows {
        for pc in w.start..w.end {
            if !prog.instr(pc).is_load() {
                continue;
            }
            let mut worst: Option<(AliasVerdict, u32)> = None;
            for s in ctx.pending_stores(prog, w, pc) {
                match ctx.classify_pair(s, pc) {
                    Some(v) if v > AliasVerdict::Disjoint && worst.is_none_or(|(wv, _)| v > wv) => {
                        worst = Some((v, s));
                    }
                    _ => {}
                }
            }
            let Some((v, s)) = worst else { continue };
            let (code, why) = match v {
                AliasVerdict::Ambiguous => (
                    Code::Al001,
                    "cannot be disambiguated from the pending store",
                ),
                _ => (
                    Code::Al002,
                    "must-aliases the pending store and needs its forwarded value",
                ),
            };
            out.push(Diagnostic {
                code,
                loc: Loc::Access(pc),
                queue: None,
                msg: format!(
                    "load in the {} run-ahead window of the branch at as@{} {why} at as@{s} — \
                     the access processor must hold this load until the store resolves",
                    w.dir.name(),
                    w.branch_pc,
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    fn ctx(src: &str) -> (Program, AliasCtx) {
        let p = assemble("as", src).unwrap();
        let c = AliasCtx::new(&p).unwrap();
        (p, c)
    }

    #[test]
    fn same_base_distinct_offsets_disjoint() {
        // Two loads off the same incoming pointer never conflict with a
        // store at a third offset of that pointer.
        let (_, c) = ctx("sd r5, 0(r3)\nld r1, 8(r3)\nld r2, 16(r3)\nhalt");
        assert_eq!(c.classify_pair(0, 1), Some(AliasVerdict::Disjoint));
        assert_eq!(c.classify_pair(0, 2), Some(AliasVerdict::Disjoint));
    }

    #[test]
    fn same_address_must_alias() {
        let (_, c) = ctx("sd r5, 8(r3)\nld r1, 8(r3)\nhalt");
        assert_eq!(c.classify_pair(0, 1), Some(AliasVerdict::MustAlias));
    }

    #[test]
    fn partial_overlap_is_must_alias() {
        // A doubleword store at 8 overlaps a word load at 12.
        let (_, c) = ctx("sd r5, 8(r3)\nlw r1, 12(r3)\nhalt");
        assert_eq!(c.classify_pair(0, 1), Some(AliasVerdict::MustAlias));
        // ... but not a word load at 16.
        let (_, c) = ctx("sd r5, 8(r3)\nlw r1, 16(r3)\nhalt");
        assert_eq!(c.classify_pair(0, 1), Some(AliasVerdict::Disjoint));
    }

    #[test]
    fn distinct_bases_are_ambiguous() {
        let (_, c) = ctx("sd r5, 0(r6)\nld r1, 0(r3)\nhalt");
        assert_eq!(c.classify_pair(0, 1), Some(AliasVerdict::Ambiguous));
    }

    #[test]
    fn displacement_chains_fold() {
        // r4 = r3 + 8, so 0(r4) is 8(r3): must-alias the store, disjoint
        // from the 16(r3) load.
        let (_, c) = ctx("add r4, r3, 8\nsd r5, 0(r4)\nld r1, 8(r3)\nld r2, 16(r3)\nhalt");
        assert_eq!(c.classify_pair(1, 2), Some(AliasVerdict::MustAlias));
        assert_eq!(c.classify_pair(1, 3), Some(AliasVerdict::Disjoint));
    }

    #[test]
    fn loads_kill_the_base() {
        // After a pointer chase the register is ⊤: everything ambiguous.
        let (_, c) = ctx("ld r3, 0(r3)\nsd r5, 0(r6)\nld r1, 8(r3)\nhalt");
        assert_eq!(c.classify_pair(1, 2), Some(AliasVerdict::Ambiguous));
    }

    #[test]
    fn loop_join_degrades_soundly() {
        // r3 advances by 8 each iteration: offsets differ at the join, so
        // the domain must give ⊤, never a wrong "disjoint".
        let (_, c) = ctx(r"
        l:
            ld r1, 0(r3)
            add r3, r3, 8
            sd r5, 0(r3)
            bne r3, r9, l
            halt
        ");
        assert_eq!(c.classify_pair(2, 0), Some(AliasVerdict::Ambiguous));
    }

    #[test]
    fn constant_addresses_compare_exactly() {
        let (_, c) = ctx("li r2, 64\nli r4, 72\nsd r5, 0(r2)\nld r1, 0(r4)\nld r6, 0(r2)\nhalt");
        assert_eq!(c.classify_pair(2, 3), Some(AliasVerdict::Disjoint));
        assert_eq!(c.classify_pair(2, 4), Some(AliasVerdict::MustAlias));
    }

    #[test]
    fn upstream_respects_paths_and_cycles() {
        let (_, c) = ctx(r"
            ld r1, 0(r3)
        l:
            add r3, r3, 8
            bne r3, r9, l
            sd r5, 0(r3)
            halt
        ");
        assert!(c.upstream(0, 3), "entry store-free path reaches the store");
        assert!(!c.upstream(3, 0), "the final store never precedes pc 0");
        assert!(c.upstream(1, 1), "loop body precedes itself via the cycle");
    }

    #[test]
    fn classify_loads_reports_worst_per_load() {
        let p = assemble(
            "as",
            "sd r5, 0(r6)\nld r1, 8(r3)\nsd r7, 8(r3)\nld r2, 8(r3)\nhalt",
        )
        .unwrap();
        let loads = classify_loads(&p);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].pc, 1);
        assert_eq!(loads[0].verdict, AliasVerdict::Ambiguous);
        assert_eq!(loads[0].stores, 1);
        assert_eq!(loads[0].against, Some(0));
        // Second load sees both stores; the r6 store is ambiguous (worst).
        assert_eq!(loads[1].pc, 3);
        assert_eq!(loads[1].verdict, AliasVerdict::Ambiguous);
        assert_eq!(loads[1].stores, 2);
    }

    #[test]
    fn no_upstream_stores_is_vacuously_disjoint() {
        let p = assemble("as", "ld r1, 8(r3)\nsd r5, 0(r6)\nhalt").unwrap();
        let loads = classify_loads(&p);
        assert_eq!(loads[0].verdict, AliasVerdict::Disjoint);
        assert_eq!(loads[0].stores, 0);
    }
}
