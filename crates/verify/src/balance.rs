//! Queue-balance checking (`QB001`–`QB003`).
//!
//! Abstract interpretation of push/pop counts over the segment
//! decomposition of [`crate::skeleton`]. Because the builder keeps the two
//! control skeletons isomorphic, path-wise balance reduces to three local
//! obligations, checked per segment pair:
//!
//! * **QB002** — the skeletons actually are isomorphic: equal segment
//!   counts, and the k-th control instructions pair as
//!   (AS branch + `push_cq`) ↔ (CS consume-branch), jump ↔ jump,
//!   halt ↔ halt.
//! * **QB001** — within pair k, for every FIFO the producer stream pushes
//!   exactly as many values as the consumer stream pops.
//! * **QB003** — every control transfer preserves the correspondence: both
//!   targets land in the same segment index, and the in-segment prefixes
//!   they skip contain matching push/pop counts per FIFO. With QB001 this
//!   makes balance inductive over *all* paths, including loop back edges
//!   (a loop whose net queue delta is non-zero without a matching consumer
//!   loop necessarily fails QB001 or QB003).

use crate::skeleton::{seg_of, QOp, Segment, Side};
use crate::{Code, Diagnostic, Loc};
use hidisc_isa::{Instr, Program, Queue};

/// FIFOs balanced pairwise between the streams (the SCQ's producer is the
/// CMP, so it has no pairwise obligation here).
const PAIRED: [Queue; 4] = [Queue::Ldq, Queue::Sdq, Queue::Cdq, Queue::Cq];

/// The stream that pushes `q` under the architected direction.
fn producer(q: Queue) -> Side {
    match q {
        Queue::Ldq | Queue::Cq => Side::Access,
        Queue::Sdq | Queue::Cdq => Side::Cs,
        Queue::Scq => unreachable!("SCQ is not stream-paired"),
    }
}

fn loc(side: Side, pc: u32) -> Loc {
    match side {
        Side::Cs => Loc::Cs(pc),
        Side::Access => Loc::Access(pc),
    }
}

/// Runs the balance checks, appending diagnostics to `out`. Returns one
/// flag per paired segment: true when the pair balanced (the depth pass
/// only simulates balanced pairs — an imbalanced pair would "deadlock"
/// trivially and drown the real finding).
pub fn check(
    cs: &Program,
    access: &Program,
    seg_cs: &[Segment],
    seg_as: &[Segment],
    out: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    if seg_cs.len() != seg_as.len() {
        let (longer, side, progl) = if seg_cs.len() > seg_as.len() {
            (seg_cs, Side::Cs, cs)
        } else {
            (seg_as, Side::Access, access)
        };
        let first_extra = &longer[seg_cs.len().min(seg_as.len())];
        let pc = first_extra
            .ctrl
            .unwrap_or_else(|| progl.len().saturating_sub(1));
        out.push(Diagnostic {
            code: Code::Qb002,
            loc: loc(side, pc),
            queue: None,
            msg: format!(
                "control skeletons differ: computation stream has {} segments, access stream {}",
                seg_cs.len(),
                seg_as.len()
            ),
        });
    }

    let pairs = seg_cs.len().min(seg_as.len());
    let cs_map = seg_of(seg_cs, cs.len());
    let as_map = seg_of(seg_as, access.len());
    let mut balanced = vec![true; pairs];

    for k in 0..pairs {
        let sc = &seg_cs[k];
        let sa = &seg_as[k];

        // QB002: control-kind pairing.
        let kinds_ok = match (sc.ctrl, sa.ctrl) {
            (Some(cpc), Some(apc)) => {
                let ci = cs.instr(cpc);
                let ai = access.instr(apc);
                let ok = matches!(
                    (ci, ai),
                    (Instr::CBranch { .. }, Instr::Branch { .. })
                        | (Instr::Jump { .. }, Instr::Jump { .. })
                        | (Instr::Halt, Instr::Halt)
                );
                if !ok {
                    out.push(Diagnostic {
                        code: Code::Qb002,
                        loc: Loc::Access(apc),
                        queue: None,
                        msg: format!(
                            "segment {k} ends in unpairable control: access stream `{}` \
                             vs computation stream `{}`",
                            hidisc_isa::encode::render_instr(ai, access),
                            hidisc_isa::encode::render_instr(ci, cs),
                        ),
                    });
                } else if matches!(ai, Instr::Branch { .. }) && !access.annot(apc).push_cq {
                    out.push(Diagnostic {
                        code: Code::Qb002,
                        loc: Loc::Access(apc),
                        queue: Some(Queue::Cq),
                        msg: format!(
                            "segment {k}: access-stream branch does not push a control \
                             token for the computation stream's consume-branch"
                        ),
                    });
                    balanced[k] = false;
                }
                ok
            }
            // A stream not ending in control is already structurally
            // invalid; point at whichever side is missing it.
            (None, _) => {
                out.push(Diagnostic {
                    code: Code::Qb002,
                    loc: Loc::Cs(cs.len().saturating_sub(1)),
                    queue: None,
                    msg: format!("segment {k} of the computation stream has no terminator"),
                });
                false
            }
            (_, None) => {
                out.push(Diagnostic {
                    code: Code::Qb002,
                    loc: Loc::Access(access.len().saturating_sub(1)),
                    queue: None,
                    msg: format!("segment {k} of the access stream has no terminator"),
                });
                false
            }
        };
        if !kinds_ok {
            balanced[k] = false;
        }

        // QB001: per-FIFO push/pop counts within the pair.
        for q in PAIRED {
            let (prod_seg, prod_side, cons_seg, cons_side) = match producer(q) {
                Side::Access => (sa, Side::Access, sc, Side::Cs),
                Side::Cs => (sc, Side::Cs, sa, Side::Access),
            };
            let pushes: Vec<u32> = prod_seg
                .ops
                .iter()
                .filter(|(_, op)| *op == QOp::Push(q))
                .map(|&(pc, _)| pc)
                .collect();
            let pops: Vec<u32> = cons_seg
                .ops
                .iter()
                .filter(|(_, op)| *op == QOp::Pop(q))
                .map(|&(pc, _)| pc)
                .collect();
            if pushes.len() != pops.len() {
                balanced[k] = false;
                // Point at the first operation with no counterpart.
                let n = pushes.len().min(pops.len());
                let (side, pc) = if pushes.len() > pops.len() {
                    (prod_side, pushes[n])
                } else {
                    (cons_side, pops[n])
                };
                out.push(Diagnostic {
                    code: Code::Qb001,
                    loc: loc(side, pc),
                    queue: Some(q),
                    msg: format!(
                        "segment {k} pushes {} {} value(s) but pops {}",
                        pushes.len(),
                        q.name(),
                        pops.len()
                    ),
                });
            }
        }

        // QB003: target correspondence.
        if !kinds_ok {
            continue;
        }
        let (ct, at) = match (sc.ctrl, sa.ctrl) {
            (Some(cpc), Some(apc)) => (cs.instr(cpc).target(), access.instr(apc).target()),
            _ => (None, None),
        };
        if let (Some(ct), Some(at)) = (ct, at) {
            let mc = cs_map[ct as usize];
            let ma = as_map[at as usize];
            if mc != ma {
                balanced[k] = false;
                out.push(Diagnostic {
                    code: Code::Qb003,
                    loc: Loc::Access(sa.ctrl.unwrap()),
                    queue: None,
                    msg: format!(
                        "segment {k} control transfers to segment {ma} in the access \
                         stream but segment {mc} in the computation stream"
                    ),
                });
                continue;
            }
            // Both targets enter segment m; the in-segment prefixes they
            // skip must carry matching counts per FIFO or the entry points
            // de-synchronise the queues (net non-zero loop delta lands
            // here for back edges).
            for q in PAIRED {
                let (prod_seg, prod_t, cons_seg, cons_t) = match producer(q) {
                    Side::Access => (&seg_as[ma], at, &seg_cs[mc], ct),
                    Side::Cs => (&seg_cs[mc], ct, &seg_as[ma], at),
                };
                let skipped_pushes = prod_seg
                    .ops
                    .iter()
                    .filter(|&&(pc, op)| pc < prod_t && op == QOp::Push(q))
                    .count();
                let skipped_pops = cons_seg
                    .ops
                    .iter()
                    .filter(|&&(pc, op)| pc < cons_t && op == QOp::Pop(q))
                    .count();
                if skipped_pushes != skipped_pops {
                    balanced[k] = false;
                    out.push(Diagnostic {
                        code: Code::Qb003,
                        loc: Loc::Access(sa.ctrl.unwrap()),
                        queue: Some(q),
                        msg: format!(
                            "segment {k} transfer into segment {ma} skips {skipped_pushes} \
                             {} push(es) but {skipped_pops} pop(s)",
                            q.name()
                        ),
                    });
                }
            }
        }
    }
    balanced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::segments;
    use hidisc_isa::asm::assemble;

    fn run(cs_src: &str, as_src: &str, push_cq_at: &[u32]) -> (Vec<Diagnostic>, Vec<bool>) {
        let cs = assemble("cs", cs_src).unwrap();
        let mut access = assemble("as", as_src).unwrap();
        for &pc in push_cq_at {
            access.annot_mut(pc).push_cq = true;
        }
        let sc = segments(&cs);
        let sa = segments(&access);
        let mut out = Vec::new();
        let balanced = check(&cs, &access, &sc, &sa, &mut out);
        (out, balanced)
    }

    #[test]
    fn balanced_loop_is_clean() {
        // AS: loop pushing one LDQ value per iteration; CS pops one per
        // iteration; branch paired with consume-branch.
        let (out, balanced) = run(
            "recv r4, LDQ\ncbr @0\nhalt",
            "ld.q LDQ, 0(r2)\nbne r1, r0, @0\nhalt",
            &[1],
        );
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(balanced, vec![true, true]);
    }

    #[test]
    fn unbalanced_segment_reports_qb001() {
        let (out, balanced) = run(
            "recv r4, LDQ\nhalt",
            "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt",
            &[],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Qb001);
        // The second (surplus) push is the first with no counterpart.
        assert_eq!(out[0].loc, Loc::Access(1));
        assert_eq!(out[0].queue, Some(Queue::Ldq));
        assert_eq!(balanced, vec![false]);
    }

    #[test]
    fn skeleton_mismatch_reports_qb002() {
        // CS has an extra control segment the AS lacks.
        let (out, _) = run("cbr @0\nhalt", "halt", &[]);
        assert!(out.iter().any(|d| d.code == Code::Qb002), "{out:?}");
    }

    #[test]
    fn branch_without_cq_token_reports_qb002() {
        let (out, balanced) = run("cbr @0\nhalt", "bne r1, r0, @0\nhalt", &[]);
        assert!(
            out.iter()
                .any(|d| d.code == Code::Qb002 && d.queue == Some(Queue::Cq)),
            "{out:?}"
        );
        assert!(!balanced[0]);
    }

    #[test]
    fn divergent_targets_report_qb003() {
        // Both streams: seg0 = branch, seg1 = nop-ish, seg2 = halt. The AS
        // branch re-enters segment 0, the CS branch jumps forward to
        // segment 1's start.
        let (out, _) = run(
            "cbr @2\nsend SDQ, r1\nj @4\nnop\nhalt",
            "bne r1, r0, @0\nrecv r3, SDQ\nj @4\nnop\nhalt",
            &[0],
        );
        assert!(out.iter().any(|d| d.code == Code::Qb003), "{out:?}");
    }

    #[test]
    fn skipping_prefix_ops_reports_qb003() {
        // Loop: the AS back edge targets the segment start, but the CS back
        // edge jumps past its LDQ pop — the skipped prefixes differ.
        let (out, _) = run(
            "recv r4, LDQ\ncbr @1\nhalt",
            "ld.q LDQ, 0(r2)\nbne r1, r0, @0\nhalt",
            &[1],
        );
        assert!(
            out.iter()
                .any(|d| d.code == Code::Qb003 && d.queue == Some(Queue::Ldq)),
            "{out:?}"
        );
    }
}
