//! Stream segmentation and queue-direction checking.
//!
//! The builder emits the Computation and Access streams with *isomorphic
//! control skeletons*: every control instruction of the original program
//! appears in both streams (branch as `push_cq`-annotated branch in the AS
//! and consume-branch in the CS; jumps and halts replicated verbatim), so
//! splitting each stream at its control instructions yields an equal number
//! of *segments* whose k-th entries correspond. All balance and depth
//! checking works over this decomposition.

use crate::{Code, Diagnostic, Loc};
use hidisc_isa::{Program, Queue};

/// One abstract queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QOp {
    Push(Queue),
    Pop(Queue),
}

impl QOp {
    /// The queue operated on.
    pub fn queue(self) -> Queue {
        match self {
            QOp::Push(q) | QOp::Pop(q) => q,
        }
    }

    /// True for pushes.
    pub fn is_push(self) -> bool {
        matches!(self, QOp::Push(_))
    }
}

/// A maximal run of instructions ending at (and including) a control
/// instruction, with its queue operations in program order.
#[derive(Debug, Clone)]
pub struct Segment {
    /// First instruction index of the segment.
    pub start: u32,
    /// Instruction index of the terminating control instruction; `None`
    /// only for programs that do not end in control (invalid programs —
    /// kept so the verifier never panics on malformed input).
    pub ctrl: Option<u32>,
    /// Queue operations `(pc, op)` in commit order. An instruction's pops
    /// precede its pushes.
    pub ops: Vec<(u32, QOp)>,
}

/// Splits a stream into control segments and collects each segment's queue
/// operations (instruction pops/pushes plus the `push_cq`/`scq_get`
/// annotation-borne operations).
pub fn segments(prog: &Program) -> Vec<Segment> {
    let mut segs = Vec::new();
    let mut cur = Segment {
        start: 0,
        ctrl: None,
        ops: Vec::new(),
    };
    for pc in 0..prog.len() {
        let i = prog.instr(pc);
        let a = prog.annot(pc);
        for q in a.queue_pops(i).into_iter().flatten() {
            cur.ops.push((pc, QOp::Pop(q)));
        }
        for q in a.queue_pushes(i).into_iter().flatten() {
            cur.ops.push((pc, QOp::Push(q)));
        }
        if i.is_control() {
            cur.ctrl = Some(pc);
            segs.push(std::mem::replace(
                &mut cur,
                Segment {
                    start: pc + 1,
                    ctrl: None,
                    ops: Vec::new(),
                },
            ));
        }
    }
    if cur.start < prog.len() {
        segs.push(cur);
    }
    segs
}

/// Maps every instruction index to the segment containing it.
pub fn seg_of(segs: &[Segment], len: u32) -> Vec<usize> {
    let mut map = vec![usize::MAX; len as usize];
    for (k, seg) in segs.iter().enumerate() {
        let end = seg.ctrl.map(|c| c + 1).unwrap_or(len);
        for pc in seg.start..end {
            map[pc as usize] = k;
        }
    }
    map
}

/// Which side of the CP/AP cut a stream binary runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Cs,
    Access,
}

/// True when `op` transfers data in the architected direction for `side`.
/// LDQ and CQ flow AP→CP; SDQ and CDQ flow CP→AP; the SCQ is produced by
/// the CMP and consumed by the AP, so streams may only pop it on the AP.
pub fn direction_ok(side: Side, op: QOp) -> bool {
    matches!(
        (side, op),
        (Side::Cs, QOp::Push(Queue::Sdq | Queue::Cdq))
            | (Side::Cs, QOp::Pop(Queue::Ldq | Queue::Cq))
            | (Side::Access, QOp::Push(Queue::Ldq | Queue::Cq))
            | (Side::Access, QOp::Pop(Queue::Sdq | Queue::Cdq | Queue::Scq))
    )
}

/// Emits `QB004` for every queue operation appearing in the wrong stream
/// for its transfer direction.
pub fn check_directions(seg_cs: &[Segment], seg_as: &[Segment], out: &mut Vec<Diagnostic>) {
    for (side, segs) in [(Side::Cs, seg_cs), (Side::Access, seg_as)] {
        for seg in segs {
            for &(pc, op) in &seg.ops {
                if !direction_ok(side, op) {
                    let loc = match side {
                        Side::Cs => Loc::Cs(pc),
                        Side::Access => Loc::Access(pc),
                    };
                    let (verb, role, owner) = match op {
                        QOp::Push(_) => ("pushes", "producer", producer_name(op.queue())),
                        QOp::Pop(_) => ("pops", "consumer", consumer_name(op.queue())),
                    };
                    out.push(Diagnostic {
                        code: Code::Qb004,
                        loc,
                        queue: Some(op.queue()),
                        msg: format!(
                            "{} stream {verb} {}, but its architected {role} is the {owner}",
                            side_name(side),
                            op.queue().name(),
                        ),
                    });
                }
            }
        }
    }
}

/// Emits `QB004` for every queue operation in the sequential original
/// program. The architectural FIFOs exist only *between* the sliced
/// streams; a source program that already operates on them cannot be
/// profiled (the functional interpreter has no queues) or sliced
/// meaningfully, so the verifier rejects it up front.
pub fn check_original(prog: &Program, out: &mut Vec<Diagnostic>) {
    // Only instruction-borne operations count: the slicer stamps
    // annotation metadata (`scq_get`, `push_cq`) onto its copy of the
    // original, and those annotations describe the *streams*, not the
    // sequential program itself.
    for pc in 0..prog.len() {
        let i = prog.instr(pc);
        for (q, verb) in [(i.queue_push(), "pushes"), (i.queue_pop(), "pops")] {
            if let Some(q) = q {
                out.push(Diagnostic {
                    code: Code::Qb004,
                    loc: Loc::Original(pc),
                    queue: Some(q),
                    msg: format!(
                        "sequential program {verb} {} — architectural queues exist only \
                         between the sliced streams",
                        q.name(),
                    ),
                });
            }
        }
    }
}

fn side_name(side: Side) -> &'static str {
    match side {
        Side::Cs => "computation",
        Side::Access => "access",
    }
}

fn producer_name(q: Queue) -> &'static str {
    match q {
        Queue::Ldq | Queue::Cq => "access processor",
        Queue::Sdq | Queue::Cdq => "computation processor",
        Queue::Scq => "cache management processor",
    }
}

fn consumer_name(q: Queue) -> &'static str {
    match q {
        Queue::Ldq | Queue::Cq => "computation processor",
        Queue::Sdq | Queue::Cdq | Queue::Scq => "access processor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    #[test]
    fn segments_split_at_control() {
        let p = assemble(
            "t",
            r"
            li r1, 3
        l:
            sub r1, r1, 1
            bne r1, r0, l
            halt
        ",
        )
        .unwrap();
        let segs = segments(&p);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[0].ctrl, Some(2));
        assert_eq!(segs[1].ctrl, Some(3));
        let map = seg_of(&segs, p.len());
        assert_eq!(map, vec![0, 0, 0, 1]);
    }

    #[test]
    fn ops_collected_in_commit_order() {
        let p = assemble("t", "recv r4, LDQ\nsend SDQ, r4\nhalt").unwrap();
        let segs = segments(&p);
        assert_eq!(
            segs[0].ops,
            vec![(0, QOp::Pop(Queue::Ldq)), (1, QOp::Push(Queue::Sdq))]
        );
    }

    #[test]
    fn annotation_ops_are_collected() {
        // An AS latch branch with push_cq and scq_get carries two
        // annotation-borne queue ops.
        let mut p = assemble("t", "beq r0, r0, 1\nhalt").unwrap();
        p.annot_mut(0).push_cq = true;
        p.annot_mut(0).scq_get = true;
        let segs = segments(&p);
        assert_eq!(
            segs[0].ops,
            vec![(0, QOp::Pop(Queue::Scq)), (0, QOp::Push(Queue::Cq))]
        );
    }

    #[test]
    fn direction_table() {
        assert!(direction_ok(Side::Access, QOp::Push(Queue::Ldq)));
        assert!(direction_ok(Side::Cs, QOp::Pop(Queue::Ldq)));
        assert!(direction_ok(Side::Cs, QOp::Push(Queue::Sdq)));
        assert!(direction_ok(Side::Access, QOp::Pop(Queue::Sdq)));
        assert!(direction_ok(Side::Access, QOp::Pop(Queue::Scq)));
        assert!(!direction_ok(Side::Cs, QOp::Push(Queue::Ldq)));
        assert!(!direction_ok(Side::Access, QOp::Pop(Queue::Ldq)));
        assert!(!direction_ok(Side::Cs, QOp::Pop(Queue::Scq)));
        assert!(!direction_ok(Side::Access, QOp::Push(Queue::Scq)));
    }

    #[test]
    fn queue_op_in_the_original_reported() {
        let orig = assemble("t", "li r1, 1\nsend LDQ, r1\nhalt").unwrap();
        let mut out = Vec::new();
        check_original(&orig, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Qb004);
        assert_eq!(out[0].loc, Loc::Original(1));
        assert_eq!(out[0].queue, Some(Queue::Ldq));

        let clean = assemble("t", "li r1, 1\nsd r1, 0(r2)\nhalt").unwrap();
        let mut out = Vec::new();
        check_original(&clean, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wrong_direction_reported() {
        // CS pushing the LDQ is backwards.
        let cs = assemble("cs", "send LDQ, r1\nhalt").unwrap();
        let a = assemble("as", "halt").unwrap();
        let mut out = Vec::new();
        check_directions(&segments(&cs), &segments(&a), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::Qb004);
        assert_eq!(out[0].loc, Loc::Cs(0));
        assert_eq!(out[0].queue, Some(Queue::Ldq));
    }
}
