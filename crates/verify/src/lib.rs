//! # hidisc-verify — static verification of sliced program triples
//!
//! The HiDISC compiler's correctness contract is only *asserted* by the
//! paper: every value the Access Processor pushes into an architectural
//! FIFO is popped exactly once by the Computation Processor on every
//! control-flow path, the Cache Miss Access Slice is a pure speculative
//! prefetch slice, and static queue occupancy stays within the configured
//! depths or the processors deadlock (the paper's Figure 10). This crate
//! checks that contract statically over a [`CompiledWorkload`] triple
//! (Computation Stream, Access Stream, CMAS threads) and reports typed,
//! located diagnostics instead of letting a slicer bug surface as a hung
//! or wrong simulation.
//!
//! Four passes (see DESIGN.md §15 for the lattices and the soundness
//! argument):
//!
//! 1. **queue-balance** ([`balance`]) — the two streams are segmented at
//!    control instructions; corresponding segments must push and pop each
//!    FIFO the same number of times, control skeletons must be isomorphic,
//!    and branch targets must transfer to corresponding points
//!    (codes `QB001`–`QB004`).
//! 2. **depth bounding** ([`depth`]) — the worst-case static occupancy of
//!    each FIFO is computed and compared against the configured depths;
//!    a greedy two-thread simulation of each segment pair detects
//!    capacity-induced deadlock exactly (`DB001`, `DB002`).
//! 3. **CMAS purity** ([`purity`]) — prefetch threads must have no
//!    architectural side effects (`CM001`–`CM004`).
//! 4. **slice-liveness** ([`liveness`]) — a register live across the CP/AP
//!    cut must arrive through a queue or duplicated computation, never be
//!    read uninitialised (`LV001`).
//!
//! The speculation-safety suite (see DESIGN.md §20) extends these with
//! three more passes built for the speculative-slicing refactor:
//!
//! 5. **may-alias / address disambiguation** ([`alias`]) — a flow-sensitive
//!    base+offset abstract domain over the address registers classifies
//!    every AS load against its upstream stores as provably-disjoint,
//!    must-alias, or ambiguous; declared run-ahead windows whose loads
//!    cross a pending may-alias store are flagged (`AL001`, `AL002`).
//! 6. **run-ahead regions** ([`specregion`]) — every conditional branch the
//!    compiler marks [`hidisc_isa::Annot::speculate`] opens a run-ahead
//!    window down the predicted edge; the window's queue traffic must be
//!    squash-safe (`SP001`–`SP003`).
//! 7. **poison liveness** ([`liveness::poison_check`]) — a register defined
//!    inside a speculative window must not be live into the squash path,
//!    or a poison value leaks into committed state (`LV002`).
//!
//! The depth pass computes symbolic loop-aware occupancy intervals
//! (abstract interpretation with widening over the control skeleton); the
//! greedy two-thread simulation is kept as a differential oracle whose
//! observed peaks the symbolic bounds must dominate.
//!
//! The verifier is exposed three ways: `repro check <workload>` in the CLI,
//! a compile-time post-pass ([`compile_verified`]) used by the benchmark
//! harness, and the `POST /v1/run` pre-flight of `hidisc-serve`. The
//! advisory [`speculation`] analysis behind `repro check --speculation`
//! additionally classifies *every* AS branch region — annotated or not —
//! to quantify how much loss-of-decoupling a speculative slicer could
//! recover.

#![forbid(unsafe_code)]

pub mod alias;
pub mod balance;
pub mod depth;
pub mod liveness;
pub mod purity;
pub mod skeleton;
pub mod specregion;

use hidisc_isa::{Program, Queue, SpecDir};
use hidisc_slicer::{CmasThread, CompiledWorkload, CompilerConfig, ExecEnv};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The triple violates the decoupling contract: running it will hang,
    /// diverge from the original program, or have unintended side effects.
    Error,
    /// The triple is correct but fragile (e.g. a static occupancy bound
    /// exceeds a configured queue depth).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Diagnostic codes, stable across releases (documented in DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Code {
    /// Segment push/pop imbalance between producer and consumer stream.
    Qb001,
    /// Control skeletons of the two streams are not isomorphic.
    Qb002,
    /// Control transfer breaks segment correspondence (includes loops whose
    /// net queue delta is non-zero without a matching consumer loop).
    Qb003,
    /// Queue operation in the wrong stream for its transfer direction.
    Qb004,
    /// Static occupancy bound exceeds the configured queue depth.
    Db001,
    /// A segment pair deadlocks under the configured queue depths.
    Db002,
    /// CMAS performs an architectural store.
    Cm001,
    /// CMAS operates on a CP/AP queue (or decrements the SCQ).
    Cm002,
    /// CMAS contains floating-point compute or an untagged memory op.
    Cm003,
    /// Dangling trigger annotation or slip control without CMAS threads.
    Cm004,
    /// Register read maybe-uninitialised in a stream but never in the
    /// original program (a value lost across the CP/AP cut).
    Lv001,
    /// A load in a declared run-ahead window crosses a pending store the
    /// alias pass cannot disambiguate.
    Al001,
    /// A load in a declared run-ahead window must-aliases a pending store:
    /// hoisting it recovers nothing (the value must be forwarded).
    Al002,
    /// A declared run-ahead window pushes a queue whose speculative tail
    /// cannot be flushed on a squash.
    Sp001,
    /// A declared run-ahead window pops a queue: pops are destructive and
    /// cannot be replayed after a squash.
    Sp002,
    /// A declared run-ahead window forks a CMAS thread, which cannot be
    /// recalled once triggered.
    Sp003,
    /// A register defined in a declared run-ahead window is live into the
    /// squash path: a maybe-poisoned value would leak into committed state.
    Lv002,
}

impl Code {
    /// The stable textual form, e.g. `"QB001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Qb001 => "QB001",
            Code::Qb002 => "QB002",
            Code::Qb003 => "QB003",
            Code::Qb004 => "QB004",
            Code::Db001 => "DB001",
            Code::Db002 => "DB002",
            Code::Cm001 => "CM001",
            Code::Cm002 => "CM002",
            Code::Cm003 => "CM003",
            Code::Cm004 => "CM004",
            Code::Lv001 => "LV001",
            Code::Al001 => "AL001",
            Code::Al002 => "AL002",
            Code::Sp001 => "SP001",
            Code::Sp002 => "SP002",
            Code::Sp003 => "SP003",
            Code::Lv002 => "LV002",
        }
    }

    /// The severity every diagnostic with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            // AL00x are advisory: an ambiguous or must-alias load makes the
            // declared window unprofitable (the load cannot issue early),
            // not incorrect — the hardware simply holds it back.
            Code::Db001 | Code::Al001 | Code::Al002 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: a program of the triple plus an instruction
/// index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// The annotated original binary.
    Original(u32),
    /// The Computation Stream binary.
    Cs(u32),
    /// The Access Stream binary.
    Access(u32),
    /// CMAS thread `id`, instruction index.
    Cmas(u32, u32),
}

impl Loc {
    /// The stream name as used in reports (`"cs"`, `"as"`, `"orig"`,
    /// `"cmas<id>"`).
    pub fn stream_name(self) -> String {
        match self {
            Loc::Original(_) => "orig".into(),
            Loc::Cs(_) => "cs".into(),
            Loc::Access(_) => "as".into(),
            Loc::Cmas(id, _) => format!("cmas{id}"),
        }
    }

    /// The instruction index within the stream.
    pub fn pc(self) -> u32 {
        match self {
            Loc::Original(pc) | Loc::Cs(pc) | Loc::Access(pc) | Loc::Cmas(_, pc) => pc,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.stream_name(), self.pc())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub loc: Loc,
    /// The queue involved, when the finding is about a specific FIFO.
    pub queue: Option<Queue>,
    pub msg: String,
}

impl Diagnostic {
    /// Severity, derived from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    /// `error[QB001] as@5 (LDQ): pushes 3 values the CS pops 2 of`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity(), self.code, self.loc)?;
        if let Some(q) = self.queue {
            write!(f, " ({})", q.name())?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// Configured queue depths the depth-bounding pass checks against. Mirrors
/// the simulator's queue configuration without depending on the timing
/// crates; the CLI and the service convert their `QueueConfig` into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthConfig {
    pub ldq: usize,
    pub sdq: usize,
    pub cdq: usize,
    pub cq: usize,
    pub scq: usize,
}

impl DepthConfig {
    /// The paper's configuration (Table 2 / Figure 10 sweep default).
    pub fn paper() -> DepthConfig {
        DepthConfig {
            ldq: 32,
            sdq: 32,
            cdq: 32,
            cq: 64,
            scq: 12,
        }
    }

    /// Capacity of one queue.
    pub fn cap(&self, q: Queue) -> usize {
        match q {
            Queue::Ldq => self.ldq,
            Queue::Sdq => self.sdq,
            Queue::Cdq => self.cdq,
            Queue::Cq => self.cq,
            Queue::Scq => self.scq,
        }
    }
}

impl Default for DepthConfig {
    fn default() -> Self {
        DepthConfig::paper()
    }
}

/// Sentinel occupancy bound: the widening operator proved nothing — the
/// queue's occupancy can grow without limit along some loop.
pub const UNBOUNDED: usize = usize::MAX;

/// The static occupancy bound computed for one queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueBound {
    pub queue: Queue,
    /// Worst-case occupancy across every reachable point of the control
    /// skeleton (symbolic interval analysis, [`UNBOUNDED`] when a loop's
    /// net delta widens to infinity).
    pub bound: usize,
    /// The configured capacity the bound was checked against.
    pub cap: usize,
}

impl QueueBound {
    /// True when widening gave up: occupancy grows without limit.
    pub fn is_unbounded(&self) -> bool {
        self.bound == UNBOUNDED
    }
}

/// How an AS load relates to the stores that may execute before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AliasVerdict {
    /// Provably disjoint from every upstream store (or no upstream stores).
    Disjoint,
    /// Provably overlaps at least one upstream store; the overlapping
    /// store's value must be forwarded, so hoisting recovers nothing.
    MustAlias,
    /// At least one upstream store cannot be disambiguated.
    Ambiguous,
}

impl AliasVerdict {
    /// Stable lowercase name used in reports ("disjoint", ...).
    pub fn name(self) -> &'static str {
        match self {
            AliasVerdict::Disjoint => "disjoint",
            AliasVerdict::MustAlias => "must-alias",
            AliasVerdict::Ambiguous => "ambiguous",
        }
    }
}

/// Per-load alias classification, one entry per AS load in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadClass {
    /// AS instruction index of the load.
    pub pc: u32,
    /// Worst classification against any upstream store.
    pub verdict: AliasVerdict,
    /// Number of upstream stores the load was compared against.
    pub stores: usize,
    /// AS instruction index of the worst-classified store, when any.
    pub against: Option<u32>,
}

/// One run-ahead region analysed by the speculation report: the window the
/// AS would execute down one edge of a conditional branch before that
/// branch resolves.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// AS instruction index of the guarding conditional branch.
    pub branch_pc: u32,
    /// The successor edge the window follows.
    pub dir: SpecDir,
    /// First instruction of the window.
    pub start: u32,
    /// One past the last instruction of the window (exclusive; the window
    /// ends *before* the next control instruction, which is the next
    /// resolution point and never commits speculatively).
    pub end: u32,
    /// True when the compiler declared this window via
    /// [`hidisc_isa::Annot::speculate`].
    pub marked: bool,
    /// True when every commit in the window is squash-safe.
    pub safe: bool,
    /// Description of the first squash hazard when `!safe`.
    pub hazard: Option<String>,
    /// Architectural loads inside the window.
    pub loads: usize,
    /// Loads the AP could issue before the branch resolves: the window is
    /// squash-safe and every pending store is provably disjoint.
    pub hoistable: usize,
}

/// The advisory speculation analysis produced by [`speculation`]: what a
/// speculative slicer could recover on this triple.
#[derive(Debug, Clone, Default)]
pub struct SpeculationReport {
    /// Both edges of every AS conditional branch, in program order.
    pub regions: Vec<RegionInfo>,
    /// Per-load alias classifications for the whole Access Stream.
    pub loads: Vec<LoadClass>,
    /// Total hoistable loads across squash-safe regions.
    pub hoistable: usize,
    /// Total loads inside analysed regions.
    pub region_loads: usize,
}

impl SpeculationReport {
    /// Estimated decoupling-recovery score: the fraction of region loads a
    /// speculative slicer could issue ahead of the guarding branch. Loads
    /// are the decoupling currency — every hoisted load is a load the AP
    /// keeps streaming while a conventional slice would stall at the
    /// unresolved branch (the paper's loss-of-decoupling events).
    pub fn recovery_score(&self) -> f64 {
        if self.region_loads == 0 {
            0.0
        } else {
            self.hoistable as f64 / self.region_loads as f64
        }
    }

    /// Regions that are squash-safe and contain at least one hoistable
    /// load — the regions a speculative slicer would actually annotate.
    pub fn profitable_regions(&self) -> impl Iterator<Item = &RegionInfo> {
        self.regions.iter().filter(|r| r.safe && r.hoistable > 0)
    }
}

/// Everything one [`verify`] run produced.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, in pass order (balance, depth, purity, liveness).
    pub diagnostics: Vec<Diagnostic>,
    /// Static occupancy bound per queue (all five, whether or not used).
    pub bounds: Vec<QueueBound>,
    /// Number of distinct queues with at least one static operation across
    /// the triple — lets callers assert the analysis was non-vacuous.
    pub queues_analysed: usize,
    /// Number of control segments paired between the two streams.
    pub segments: usize,
    /// Per-load alias classifications for the Access Stream, in program
    /// order (always computed; surfaced by `repro check`).
    pub loads: Vec<LoadClass>,
    /// Peak per-queue occupancy observed by the greedy two-thread oracle
    /// (indexed like [`Queue::ALL`]). The symbolic [`Self::bounds`] must
    /// dominate these — `bench::prepare` debug-asserts it and the
    /// differential tests prove it across every workload.
    pub greedy_peaks: [usize; 5],
}

impl VerifyReport {
    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True when no diagnostics of any severity were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when no error-severity diagnostics were produced.
    pub fn no_errors(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// A program triple to verify. Borrowed so callers can verify hand-built
/// stream pairs (the negative test corpus) without a full compile.
#[derive(Debug, Clone, Copy)]
pub struct VerifyInput<'a> {
    /// The annotated original binary, when available. Used as the baseline
    /// for the liveness pass; without it `LV001` cannot be decided and the
    /// pass is skipped.
    pub original: Option<&'a Program>,
    /// The Computation Stream binary.
    pub cs: &'a Program,
    /// The Access Stream binary.
    pub access: &'a Program,
    /// CMAS prefetch threads.
    pub cmas: &'a [CmasThread],
    /// Queue depths to bound against.
    pub depths: DepthConfig,
}

impl<'a> VerifyInput<'a> {
    /// Borrows a compiled workload as verifier input.
    pub fn of(w: &'a CompiledWorkload, depths: DepthConfig) -> VerifyInput<'a> {
        VerifyInput {
            original: Some(&w.original),
            cs: &w.cs,
            access: &w.access,
            cmas: &w.cmas,
            depths,
        }
    }
}

/// Runs all four passes over a triple and collects the findings.
pub fn verify(input: &VerifyInput) -> VerifyReport {
    let mut report = VerifyReport::default();

    let seg_cs = skeleton::segments(input.cs);
    let seg_as = skeleton::segments(input.access);

    if let Some(orig) = input.original {
        skeleton::check_original(orig, &mut report.diagnostics);
    }
    skeleton::check_directions(&seg_cs, &seg_as, &mut report.diagnostics);
    let balanced = balance::check(
        input.cs,
        input.access,
        &seg_cs,
        &seg_as,
        &mut report.diagnostics,
    );
    depth::check(
        input.cs,
        input.access,
        &seg_cs,
        &seg_as,
        &balanced,
        input.cmas,
        input.depths,
        &mut report,
    );
    purity::check(input.access, input.cmas, &mut report.diagnostics);
    if let Some(orig) = input.original {
        liveness::check(orig, input.cs, input.access, &mut report.diagnostics);
    }
    report.loads = alias::classify_loads(input.access);
    specregion::check(input.access, &mut report.diagnostics);
    alias::check(input.access, &mut report.diagnostics);
    liveness::poison_check(input.access, &mut report.diagnostics);

    report.segments = seg_cs.len().min(seg_as.len());
    let mut used = [false; Queue::ALL.len()];
    for seg in seg_cs.iter().chain(seg_as.iter()) {
        for &(_, op) in &seg.ops {
            used[queue_index(op.queue())] = true;
        }
    }
    for t in input.cmas {
        for seg in skeleton::segments(&t.prog) {
            for &(_, op) in &seg.ops {
                used[queue_index(op.queue())] = true;
            }
        }
    }
    report.queues_analysed = used.iter().filter(|&&u| u).count();
    report
}

/// Runs the advisory speculation analysis over a triple: classifies both
/// edges of every AS conditional branch as a prospective run-ahead region
/// (squash-safe or not, hoistable-load counts) and every AS load against
/// its upstream stores. This is the planning data for the speculative
/// slicer: `repro check <workload> --speculation` renders it.
pub fn speculation(input: &VerifyInput) -> SpeculationReport {
    let mut report = SpeculationReport {
        regions: specregion::analyse(input.access),
        loads: alias::classify_loads(input.access),
        ..SpeculationReport::default()
    };
    for r in &report.regions {
        report.region_loads += r.loads;
        if r.safe {
            report.hoistable += r.hoistable;
        }
    }
    report
}

/// Index of `q` in [`Queue::ALL`] order — how
/// [`VerifyReport::greedy_peaks`] is indexed.
pub fn queue_index(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

/// Why [`compile_verified`] failed.
#[derive(Debug)]
pub enum VerifyError {
    /// The compiler itself rejected the program.
    Compile(hidisc_isa::IsaError),
    /// The compiled triple failed verification; the report holds every
    /// diagnostic (at least one error).
    Rejected(Box<VerifyReport>),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Compile(e) => write!(f, "compile error: {e}"),
            VerifyError::Rejected(r) => match r.errors().next() {
                Some(d) => write!(f, "{d}"),
                None => write!(f, "verification rejected the program"),
            },
        }
    }
}

impl std::error::Error for VerifyError {}

/// Compiles a sequential program and verifies the resulting triple: the
/// slicer post-pass. Returns the workload together with the (error-free)
/// report — warnings and depth bounds remain available to the caller.
pub fn compile_verified(
    prog: &Program,
    env: &ExecEnv,
    cfg: &CompilerConfig,
    depths: DepthConfig,
) -> Result<(CompiledWorkload, VerifyReport), VerifyError> {
    // A source program operating on the architectural queues would fail
    // deep inside the profiler with an opaque interpreter error; reject it
    // here with the located QB004 diagnostic instead.
    let mut pre = Vec::new();
    skeleton::check_original(prog, &mut pre);
    if !pre.is_empty() {
        return Err(VerifyError::Rejected(Box::new(VerifyReport {
            diagnostics: pre,
            ..VerifyReport::default()
        })));
    }
    let compiled = hidisc_slicer::compile(prog, env, cfg).map_err(VerifyError::Compile)?;
    let report = verify(&VerifyInput::of(&compiled, depths));
    if report.no_errors() {
        Ok((compiled, report))
    } else {
        Err(VerifyError::Rejected(Box::new(report)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    #[test]
    fn code_strings_and_severities() {
        assert_eq!(Code::Qb001.as_str(), "QB001");
        assert_eq!(Code::Lv001.as_str(), "LV001");
        assert_eq!(Code::Db001.severity(), Severity::Warning);
        assert_eq!(Code::Db002.severity(), Severity::Error);
        assert_eq!(Code::Cm001.severity(), Severity::Error);
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            code: Code::Qb001,
            loc: Loc::Access(5),
            queue: Some(Queue::Ldq),
            msg: "pushes 3, CS pops 2".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[QB001] as@5 (LDQ): pushes 3, CS pops 2"
        );
        let d2 = Diagnostic {
            code: Code::Db001,
            loc: Loc::Cmas(1, 4),
            queue: None,
            msg: "m".into(),
        };
        assert_eq!(d2.to_string(), "warning[DB001] cmas1@4: m");
    }

    #[test]
    fn depth_config_caps() {
        let d = DepthConfig::paper();
        assert_eq!(d.cap(Queue::Ldq), 32);
        assert_eq!(d.cap(Queue::Cq), 64);
        assert_eq!(d.cap(Queue::Scq), 12);
    }

    #[test]
    fn compile_verified_rejects_queue_ops_in_the_source() {
        let prog = assemble("t", "li r1, 1\nsend LDQ, r1\nhalt").unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: hidisc_isa::mem::Memory::new(),
            max_steps: 100,
        };
        let err = compile_verified(
            &prog,
            &env,
            &CompilerConfig::default(),
            DepthConfig::paper(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("QB004"), "{msg}");
        assert!(msg.contains("orig@1"), "{msg}");
    }

    #[test]
    fn trivially_balanced_pair_is_clean() {
        // AS pushes one LDQ value, CS pops it; both halt.
        let access = assemble("as", "ld.q LDQ, 0(r2)\nhalt").unwrap();
        let cs = assemble("cs", "recv r4, LDQ\nhalt").unwrap();
        let input = VerifyInput {
            original: None,
            cs: &cs,
            access: &access,
            cmas: &[],
            depths: DepthConfig::paper(),
        };
        let r = verify(&input);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.segments, 1);
        assert!(r.queues_analysed >= 1);
        assert_eq!(r.bounds.len(), Queue::ALL.len());
    }
}
