//! Negative golden corpus: hand-built broken program triples, each
//! asserting the exact diagnostic code and location the verifier must
//! report. These are the documented failure modes of DESIGN.md §15/§20 and
//! the programs the README's `repro check` walkthrough references. Goldens
//! 5–10 cover the speculation-safety suite: every `AL`/`SP`/`LV002`
//! diagnostic has exactly one golden pinning its location and message.

#![forbid(unsafe_code)]

use hidisc_isa::asm::assemble;
use hidisc_isa::{Instr, Queue, SpecDir};
use hidisc_slicer::CmasThread;
use hidisc_verify::{verify, Code, DepthConfig, Loc, VerifyInput};

fn input<'a>(
    cs: &'a hidisc_isa::Program,
    access: &'a hidisc_isa::Program,
    cmas: &'a [CmasThread],
    depths: DepthConfig,
) -> VerifyInput<'a> {
    VerifyInput {
        original: None,
        cs,
        access,
        cmas,
        depths,
    }
}

/// 1. Unbalanced push/pop: the AS pushes two LDQ values per pass, the CS
///    pops only one. The second push (as@1) has no counterpart.
#[test]
fn unbalanced_push_pop_is_qb001_at_the_surplus_push() {
    let access = assemble("as", "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt").unwrap();
    let cs = assemble("cs", "recv r4, LDQ\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Qb001)
        .expect("QB001 must fire");
    assert_eq!(d.loc, Loc::Access(1));
    assert_eq!(d.queue, Some(Queue::Ldq));
    assert!(!r.no_errors());
}

/// 2. Storing CMAS: a prefetch thread with an architectural store. The
///    store is at cmas0@1, after a legitimate pointer-chase load.
#[test]
fn storing_cmas_is_cm001_at_the_store() {
    let mut prog = assemble("cmas", "ld r1, 0(r1)\nsd r1, 8(r1)\npref 0(r1)\nhalt").unwrap();
    for pc in 0..prog.len() {
        if !matches!(prog.instr(pc), Instr::Halt) {
            prog.annot_mut(pc).cmas = true;
        }
    }
    let thread = CmasThread {
        id: 0,
        prog,
        loop_header: 0,
    };
    let cs = assemble("cs", "halt").unwrap();
    let access = assemble("as", "halt").unwrap();
    let threads = [thread];
    let r = verify(&input(&cs, &access, &threads, DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Cm001)
        .expect("CM001 must fire");
    assert_eq!(d.loc, Loc::Cmas(0, 1));
    assert!(!r.no_errors());
}

/// 3. Over-depth loop: each iteration bursts three LDQ pushes before the
///    three SDQ pops while the CS does the mirror image. Balanced — but
///    with both depths configured at 2 neither burst can complete: the AS
///    blocks on its third LDQ push (as@2) while the CS blocks on its third
///    SDQ push. `DB001` warns about the precondition (bound 3 > depth 2)
///    and `DB002` reports the deadlock itself.
#[test]
fn over_depth_loop_is_db002_at_the_blocked_push() {
    let mut access = assemble(
        "as",
        r"
        loop:
            ld.q LDQ, 0(r2)
            ld.q LDQ, 8(r2)
            ld.q LDQ, 16(r2)
            recv r3, SDQ
            recv r3, SDQ
            recv r3, SDQ
            bne r1, r0, loop
            halt
        ",
    )
    .unwrap();
    access.annot_mut(6).push_cq = true;
    let cs = assemble(
        "cs",
        r"
        loop:
            send SDQ, r5
            send SDQ, r5
            send SDQ, r5
            recv r4, LDQ
            recv r4, LDQ
            recv r4, LDQ
            cbr loop
            halt
        ",
    )
    .unwrap();
    let depths = DepthConfig {
        ldq: 2,
        sdq: 2,
        ..DepthConfig::paper()
    };
    let r = verify(&input(&cs, &access, &[], depths));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Db002)
        .expect("DB002 must fire");
    assert_eq!(d.loc, Loc::Access(2));
    assert_eq!(d.queue, Some(Queue::Ldq));
    let warn = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Db001)
        .expect("DB001 precondition warning must fire too");
    assert_eq!(warn.queue, Some(Queue::Ldq));
    // The same pair is clean at the paper depths.
    let clean = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    assert!(clean.is_clean(), "{:?}", clean.diagnostics);
}

/// 4. Cross-slice uninit read: the original initialises the store address
///    in a computation-side `li` before storing through it; the broken AS
///    reads the address register without ever receiving it (as@0).
#[test]
fn cross_slice_uninit_read_is_lv001_at_the_read() {
    let orig = assemble("t", "li r2, 64\nsd r2, 0(r2)\nhalt").unwrap();
    let access = assemble("as", "sd r2, 0(r2)\nhalt").unwrap();
    let cs = assemble("cs", "halt").unwrap();
    let r = verify(&VerifyInput {
        original: Some(&orig),
        cs: &cs,
        access: &access,
        cmas: &[],
        depths: DepthConfig::paper(),
    });
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Lv001)
        .expect("LV001 must fire");
    assert_eq!(d.loc, Loc::Access(0));
    assert!(d.msg.contains("r2"));
    assert!(!r.no_errors());
}

/// 5. Ambiguous store-to-load pair in a declared run-ahead window: the
///    store goes through `r6`, the load through `r7`, and nothing relates
///    the two bases. The AP cannot issue the load early.
#[test]
fn ambiguous_store_in_runahead_window_is_al001_at_the_load() {
    let mut access = assemble(
        "as",
        "loop:\nsd r5, 0(r6)\nld r4, 0(r7)\nsub r9, r9, 1\nbne r9, r0, loop\nhalt",
    )
    .unwrap();
    access.annot_mut(3).push_cq = true;
    access.annot_mut(3).speculate = Some(SpecDir::Taken);
    let cs = assemble("cs", "loop:\ncbr loop\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Al001)
        .expect("AL001 must fire");
    assert_eq!(d.loc, Loc::Access(1));
    assert_eq!(
        d.msg,
        "load in the taken run-ahead window of the branch at as@3 cannot be disambiguated \
         from the pending store at as@0 — the access processor must hold this load until \
         the store resolves"
    );
    // Advisory: a warning, not an error — the window is merely unprofitable.
    assert!(r.no_errors(), "{:?}", r.diagnostics);
}

/// 6. Must-alias store-to-load pair in a declared run-ahead window: same
///    base register, same offset — hoisting the load recovers nothing, the
///    store's value must be forwarded.
#[test]
fn must_alias_store_in_runahead_window_is_al002_at_the_load() {
    let mut access = assemble(
        "as",
        "loop:\nsd r5, 0(r6)\nld r4, 0(r6)\nsub r9, r9, 1\nbne r9, r0, loop\nhalt",
    )
    .unwrap();
    access.annot_mut(3).push_cq = true;
    access.annot_mut(3).speculate = Some(SpecDir::Taken);
    let cs = assemble("cs", "loop:\ncbr loop\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Al002)
        .expect("AL002 must fire");
    assert_eq!(d.loc, Loc::Access(1));
    assert!(
        d.msg
            .contains("must-aliases the pending store and needs its forwarded value at as@0"),
        "{}",
        d.msg
    );
}

/// 7. Non-flushable push in a declared run-ahead window: an SDQ push
///    cannot be retracted on a squash — only the AP-produced LDQ/CQ tails
///    are flushable.
#[test]
fn non_flushable_push_in_runahead_window_is_sp001() {
    let mut access = assemble(
        "as",
        "loop:\nsend SDQ, r5\nsub r9, r9, 1\nbne r9, r0, loop\nhalt",
    )
    .unwrap();
    access.annot_mut(2).push_cq = true;
    access.annot_mut(2).speculate = Some(SpecDir::Taken);
    let cs = assemble("cs", "loop:\nrecv r8, SDQ\ncbr loop\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Sp001)
        .expect("SP001 must fire");
    assert_eq!(d.loc, Loc::Access(0));
    assert_eq!(d.queue, Some(Queue::Sdq));
    assert_eq!(
        d.msg,
        "declared taken run-ahead window of the branch at as@2 pushes SDQ, \
         whose speculative tail cannot be flushed on a squash"
    );
    assert!(!r.no_errors());
}

/// 8. Destructive pop in a declared run-ahead window: predicting the loop
///    exit would speculate the SDQ-popping deferred store — queue values
///    are consumed exactly once, a squashed pop cannot be replayed.
#[test]
fn destructive_pop_in_runahead_window_is_sp002() {
    let mut access = assemble(
        "as",
        "hop:\nld.q LDQ, 8(r3)\nld r3, 0(r3)\nsub r9, r9, 1\nbne r9, r0, hop\nsd.q SDQ, 0(r10)\nhalt",
    )
    .unwrap();
    access.annot_mut(3).push_cq = true;
    access.annot_mut(3).speculate = Some(SpecDir::NotTaken);
    let cs = assemble("cs", "hop:\nrecv r4, LDQ\ncbr hop\nsend SDQ, r7\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Sp002)
        .expect("SP002 must fire");
    assert_eq!(d.loc, Loc::Access(4));
    assert_eq!(d.queue, Some(Queue::Sdq));
    assert_eq!(
        d.msg,
        "declared not-taken run-ahead window of the branch at as@3 pops SDQ — \
         a destructive pop cannot be replayed after a squash"
    );
    assert!(!r.no_errors());
}

/// 9. CMAS trigger fork in a declared run-ahead window: a prefetch thread
///    cannot be recalled once forked, so triggering one speculatively
///    pollutes the cache (and the SCQ) on every misprediction.
#[test]
fn trigger_fork_in_runahead_window_is_sp003() {
    let mut access = assemble("as", "loop:\nsub r9, r9, 1\nbne r9, r0, loop\nhalt").unwrap();
    access.annot_mut(0).trigger = Some(7);
    access.annot_mut(1).push_cq = true;
    access.annot_mut(1).speculate = Some(SpecDir::Taken);
    let cs = assemble("cs", "loop:\ncbr loop\nhalt").unwrap();
    let mut prog = assemble("cmas", "ld r1, 0(r1)\npref 0(r1)\nhalt").unwrap();
    for pc in 0..prog.len() {
        if !matches!(prog.instr(pc), Instr::Halt) {
            prog.annot_mut(pc).cmas = true;
        }
    }
    let threads = [CmasThread {
        id: 7,
        prog,
        loop_header: 0,
    }];
    let r = verify(&input(&cs, &access, &threads, DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Sp003)
        .expect("SP003 must fire");
    assert_eq!(d.loc, Loc::Access(0));
    assert_eq!(
        d.msg,
        "declared taken run-ahead window of the branch at as@1 forks CMAS thread 7, \
         which cannot be recalled once triggered"
    );
    assert!(!r.no_errors());
}

/// 10. Poison leak: `r5` is loaded inside the declared window and read on
///     the squash path before being redefined — a misprediction would leak
///     a maybe-poisoned value into committed state. Pinned at the first
///     exposed read.
#[test]
fn poison_leak_on_squash_path_is_lv002_at_the_exposed_read() {
    let mut access = assemble(
        "as",
        "bne r1, r0, out\nld r5, 0(r3)\nhalt\nout:\nadd r6, r5, 1\nhalt",
    )
    .unwrap();
    access.annot_mut(0).push_cq = true;
    access.annot_mut(0).speculate = Some(SpecDir::NotTaken);
    let cs = assemble("cs", "cbr out\nhalt\nout:\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Lv002)
        .expect("LV002 must fire");
    assert_eq!(d.loc, Loc::Access(3));
    assert_eq!(
        d.msg,
        "r5 is defined in the not-taken run-ahead window of the branch at as@0 and read \
         on the squash path before being redefined — a maybe-poisoned value would leak \
         into committed state"
    );
    assert!(!r.no_errors());
}

/// The diagnostic rendering the CLI and the service surface is stable.
#[test]
fn rendered_diagnostics_carry_code_stream_and_queue() {
    let access = assemble("as", "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt").unwrap();
    let cs = assemble("cs", "recv r4, LDQ\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let text = r.diagnostics[0].to_string();
    assert!(text.starts_with("error[QB001] as@1 (LDQ):"), "{text}");
}
