//! Negative golden corpus: four hand-built broken program triples, each
//! asserting the exact diagnostic code and location the verifier must
//! report. These are the documented failure modes of DESIGN.md §15 and the
//! programs the README's `repro check` walkthrough references.

#![forbid(unsafe_code)]

use hidisc_isa::asm::assemble;
use hidisc_isa::{Instr, Queue};
use hidisc_slicer::CmasThread;
use hidisc_verify::{verify, Code, DepthConfig, Loc, VerifyInput};

fn input<'a>(
    cs: &'a hidisc_isa::Program,
    access: &'a hidisc_isa::Program,
    cmas: &'a [CmasThread],
    depths: DepthConfig,
) -> VerifyInput<'a> {
    VerifyInput {
        original: None,
        cs,
        access,
        cmas,
        depths,
    }
}

/// 1. Unbalanced push/pop: the AS pushes two LDQ values per pass, the CS
///    pops only one. The second push (as@1) has no counterpart.
#[test]
fn unbalanced_push_pop_is_qb001_at_the_surplus_push() {
    let access = assemble("as", "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt").unwrap();
    let cs = assemble("cs", "recv r4, LDQ\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Qb001)
        .expect("QB001 must fire");
    assert_eq!(d.loc, Loc::Access(1));
    assert_eq!(d.queue, Some(Queue::Ldq));
    assert!(!r.no_errors());
}

/// 2. Storing CMAS: a prefetch thread with an architectural store. The
///    store is at cmas0@1, after a legitimate pointer-chase load.
#[test]
fn storing_cmas_is_cm001_at_the_store() {
    let mut prog = assemble("cmas", "ld r1, 0(r1)\nsd r1, 8(r1)\npref 0(r1)\nhalt").unwrap();
    for pc in 0..prog.len() {
        if !matches!(prog.instr(pc), Instr::Halt) {
            prog.annot_mut(pc).cmas = true;
        }
    }
    let thread = CmasThread {
        id: 0,
        prog,
        loop_header: 0,
    };
    let cs = assemble("cs", "halt").unwrap();
    let access = assemble("as", "halt").unwrap();
    let threads = [thread];
    let r = verify(&input(&cs, &access, &threads, DepthConfig::paper()));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Cm001)
        .expect("CM001 must fire");
    assert_eq!(d.loc, Loc::Cmas(0, 1));
    assert!(!r.no_errors());
}

/// 3. Over-depth loop: each iteration bursts three LDQ pushes before the
///    three SDQ pops while the CS does the mirror image. Balanced — but
///    with both depths configured at 2 neither burst can complete: the AS
///    blocks on its third LDQ push (as@2) while the CS blocks on its third
///    SDQ push. `DB001` warns about the precondition (bound 3 > depth 2)
///    and `DB002` reports the deadlock itself.
#[test]
fn over_depth_loop_is_db002_at_the_blocked_push() {
    let mut access = assemble(
        "as",
        r"
        loop:
            ld.q LDQ, 0(r2)
            ld.q LDQ, 8(r2)
            ld.q LDQ, 16(r2)
            recv r3, SDQ
            recv r3, SDQ
            recv r3, SDQ
            bne r1, r0, loop
            halt
        ",
    )
    .unwrap();
    access.annot_mut(6).push_cq = true;
    let cs = assemble(
        "cs",
        r"
        loop:
            send SDQ, r5
            send SDQ, r5
            send SDQ, r5
            recv r4, LDQ
            recv r4, LDQ
            recv r4, LDQ
            cbr loop
            halt
        ",
    )
    .unwrap();
    let depths = DepthConfig {
        ldq: 2,
        sdq: 2,
        ..DepthConfig::paper()
    };
    let r = verify(&input(&cs, &access, &[], depths));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Db002)
        .expect("DB002 must fire");
    assert_eq!(d.loc, Loc::Access(2));
    assert_eq!(d.queue, Some(Queue::Ldq));
    let warn = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Db001)
        .expect("DB001 precondition warning must fire too");
    assert_eq!(warn.queue, Some(Queue::Ldq));
    // The same pair is clean at the paper depths.
    let clean = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    assert!(clean.is_clean(), "{:?}", clean.diagnostics);
}

/// 4. Cross-slice uninit read: the original initialises the store address
///    in a computation-side `li` before storing through it; the broken AS
///    reads the address register without ever receiving it (as@0).
#[test]
fn cross_slice_uninit_read_is_lv001_at_the_read() {
    let orig = assemble("t", "li r2, 64\nsd r2, 0(r2)\nhalt").unwrap();
    let access = assemble("as", "sd r2, 0(r2)\nhalt").unwrap();
    let cs = assemble("cs", "halt").unwrap();
    let r = verify(&VerifyInput {
        original: Some(&orig),
        cs: &cs,
        access: &access,
        cmas: &[],
        depths: DepthConfig::paper(),
    });
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == Code::Lv001)
        .expect("LV001 must fire");
    assert_eq!(d.loc, Loc::Access(0));
    assert!(d.msg.contains("r2"));
    assert!(!r.no_errors());
}

/// The diagnostic rendering the CLI and the service surface is stable.
#[test]
fn rendered_diagnostics_carry_code_stream_and_queue() {
    let access = assemble("as", "ld.q LDQ, 0(r2)\nld.q LDQ, 8(r2)\nhalt").unwrap();
    let cs = assemble("cs", "recv r4, LDQ\nhalt").unwrap();
    let r = verify(&input(&cs, &access, &[], DepthConfig::paper()));
    let text = r.diagnostics[0].to_string();
    assert!(text.starts_with("error[QB001] as@1 (LDQ):"), "{text}");
}
