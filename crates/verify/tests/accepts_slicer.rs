//! Property test: the verifier accepts the slicer's output for every
//! shipped workload, with zero errors — and non-vacuously so (at least one
//! queue analysed per program, and the workloads collectively exercise
//! every pass input: CMAS threads, control queues, both data directions).

#![forbid(unsafe_code)]

use hidisc_slicer::{CompilerConfig, ExecEnv};
use hidisc_verify::{compile_verified, verify, DepthConfig, VerifyInput};
use hidisc_workloads::{by_name, names, Scale};

fn env_of(w: &hidisc_workloads::Workload) -> ExecEnv {
    ExecEnv {
        regs: w.regs.clone(),
        mem: w.mem.clone(),
        max_steps: w.max_steps,
    }
}

#[test]
fn every_workload_verifies_clean_at_test_scale() {
    let mut analysed_total = 0usize;
    let mut with_cmas = 0usize;
    for &name in names() {
        for seed in [0u64, 1] {
            let w = by_name(name, Scale::Test, seed).unwrap();
            let env = env_of(&w);
            let cfg = CompilerConfig::default();
            let compiled = hidisc_slicer::compile(&w.prog, &env, &cfg)
                .unwrap_or_else(|e| panic!("{name} (seed {seed}) failed to compile: {e}"));
            let report = verify(&VerifyInput::of(&compiled, DepthConfig::paper()));
            let errors: Vec<String> = report.errors().map(|d| d.to_string()).collect();
            assert!(
                errors.is_empty(),
                "{name} (seed {seed}) rejected by the verifier:\n{}",
                errors.join("\n")
            );
            // Non-vacuous: something was actually analysed.
            assert!(
                report.queues_analysed >= 1,
                "{name} (seed {seed}): no queue operations analysed"
            );
            assert!(report.segments >= 1);
            analysed_total += report.queues_analysed;
            with_cmas += usize::from(!compiled.cmas.is_empty());
        }
    }
    // Across the suite the analysis must have seen a healthy mix of
    // queues and at least one CMAS-bearing workload (so the purity pass
    // ran on real slices).
    assert!(analysed_total >= names().len(), "{analysed_total}");
    assert!(with_cmas >= 1, "no workload produced CMAS threads");
}

#[test]
fn compile_verified_matches_plain_compile_and_reports_bounds() {
    let w = by_name("dm", Scale::Test, 0).unwrap();
    let env = env_of(&w);
    let cfg = CompilerConfig::default();
    let (compiled, report) =
        compile_verified(&w.prog, &env, &cfg, DepthConfig::paper()).expect("dm must verify clean");
    assert!(compiled.cs.len() + compiled.access.len() > 0);
    // All five queues get a bound row, each within the paper depths.
    assert_eq!(report.bounds.len(), 5);
    for b in &report.bounds {
        assert!(
            b.bound <= b.cap,
            "{} bound {} exceeds cap {}",
            b.queue.name(),
            b.bound,
            b.cap
        );
    }
}

#[test]
fn paper_scale_suite_heads_verify_clean() {
    // A slice of the Paper-scale suite as a deeper spot check (full
    // Paper-scale compiles re-profile every workload and would dominate
    // test time).
    for name in ["dm", "pointer"] {
        let w = by_name(name, Scale::Paper, 0).unwrap();
        let env = env_of(&w);
        let compiled = hidisc_slicer::compile(&w.prog, &env, &CompilerConfig::default()).unwrap();
        let report = verify(&VerifyInput::of(&compiled, DepthConfig::paper()));
        assert!(
            report.no_errors(),
            "{name} at Paper scale: {:?}",
            report.errors().collect::<Vec<_>>()
        );
    }
}
