//! A minimal structured logger for the service stack: leveled events
//! with typed key-value fields, rendered one line per event as either
//! logfmt (`ts=… level=info event=request request_id=… status=202`) or
//! JSON lines. Std-only and dependency-free like the rest of the crate.
//!
//! The logger is deliberately tiny: no global registry, no macros — the
//! owner constructs a [`Logger`] (stderr, a file, or any `Write + Send`
//! sink), shares it behind its own `Arc`, and calls [`Logger::log`].
//! Disabled levels cost one comparison; callers that must assemble
//! expensive fields should guard with [`Logger::enabled`] first.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (connection lifecycle, job starts).
    Debug,
    /// Normal operation (access log, job completion).
    Info,
    /// Something degraded but handled (slow requests, failed jobs).
    Warn,
    /// Something broke.
    Error,
}

impl Level {
    /// The lowercase name used in rendered lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name; `off` parses to `None` (logging disabled).
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Ok(Some(Level::Debug)),
            "info" => Ok(Some(Level::Info)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "error" => Ok(Some(Level::Error)),
            "off" | "none" => Ok(None),
            other => Err(format!(
                "unknown log level `{other}` (use off|error|warn|info|debug)"
            )),
        }
    }
}

/// Line format of the rendered log stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// logfmt: `ts=… level=… event=… key=value …`, values quoted only
    /// when they need it.
    #[default]
    Text,
    /// One JSON object per line with the same keys.
    Json,
}

impl LogFormat {
    /// Parses a format name.
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "logfmt" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format `{other}` (use text|json)")),
        }
    }
}

/// One field value. `From` impls cover the common cases so call sites
/// can write `("status", status.into())`.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string (quoted/escaped as the format requires).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float (non-finite values render as 0).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

enum Target {
    Stderr,
    Sink(Box<dyn Write + Send>),
}

/// A leveled line-oriented logger writing to stderr or any owned sink.
pub struct Logger {
    /// Minimum level that renders; `None` disables everything.
    min: Option<Level>,
    format: LogFormat,
    out: Mutex<Target>,
}

impl Logger {
    /// A logger that drops every event (the zero-cost default).
    pub fn off() -> Logger {
        Logger {
            min: None,
            format: LogFormat::Text,
            out: Mutex::new(Target::Stderr),
        }
    }

    /// A logger writing to stderr.
    pub fn to_stderr(level: Level, format: LogFormat) -> Logger {
        Logger {
            min: Some(level),
            format,
            out: Mutex::new(Target::Stderr),
        }
    }

    /// A logger writing to an owned sink (a file, a test buffer). Every
    /// line is flushed so the stream is tail-able and survives
    /// process-exit paths that skip destructors.
    pub fn to_sink(level: Level, format: LogFormat, out: Box<dyn Write + Send>) -> Logger {
        Logger {
            min: Some(level),
            format,
            out: Mutex::new(Target::Sink(out)),
        }
    }

    /// Whether an event at `level` would render. Guard expensive field
    /// assembly with this.
    pub fn enabled(&self, level: Level) -> bool {
        self.min.is_some_and(|m| level >= m)
    }

    /// Emits one event as one line. Field order is preserved; `ts`
    /// (unix milliseconds), `level` and `event` always lead.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64;
        let line = render_line(self.format, ts, level, event, fields);
        match &mut *self.out.lock().expect("log sink lock") {
            Target::Stderr => {
                let stderr = std::io::stderr();
                let mut h = stderr.lock();
                let _ = h.write_all(line.as_bytes());
            }
            Target::Sink(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.flush();
            }
        }
    }
}

/// Renders one line (terminated with `\n`) without writing it anywhere;
/// the format contract the tests pin down.
pub fn render_line(
    format: LogFormat,
    ts_ms: u64,
    level: Level,
    event: &str,
    fields: &[(&str, Value)],
) -> String {
    let mut s = String::with_capacity(96);
    match format {
        LogFormat::Text => {
            let _ = write!(s, "ts={ts_ms} level={} event=", level.name());
            push_logfmt_value(&mut s, event);
            for (k, v) in fields {
                let _ = write!(s, " {k}=");
                match v {
                    Value::Str(t) => push_logfmt_value(&mut s, t),
                    Value::U64(n) => {
                        let _ = write!(s, "{n}");
                    }
                    Value::F64(f) => {
                        let _ = write!(s, "{}", finite(*f));
                    }
                    Value::Bool(b) => {
                        let _ = write!(s, "{b}");
                    }
                }
            }
        }
        LogFormat::Json => {
            let _ = write!(
                s,
                "{{\"ts\":{ts_ms},\"level\":\"{}\",\"event\":\"{}\"",
                level.name(),
                json_escape(event)
            );
            for (k, v) in fields {
                let _ = write!(s, ",\"{}\":", json_escape(k));
                match v {
                    Value::Str(t) => {
                        let _ = write!(s, "\"{}\"", json_escape(t));
                    }
                    Value::U64(n) => {
                        let _ = write!(s, "{n}");
                    }
                    Value::F64(f) => {
                        let _ = write!(s, "{}", finite(*f));
                    }
                    Value::Bool(b) => {
                        let _ = write!(s, "{b}");
                    }
                }
            }
            s.push('}');
        }
    }
    s.push('\n');
    s
}

fn finite(f: f64) -> f64 {
    if f.is_finite() {
        f
    } else {
        0.0
    }
}

/// logfmt value: bare when it is simple, quoted (with `\` and `"`
/// escaped, newlines as `\n`) otherwise.
fn push_logfmt_value(out: &mut String, v: &str) {
    let simple = !v.is_empty()
        && v.bytes()
            .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'=' && b != b'\\');
    if simple {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle into a shared buffer, for asserting on output.
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn levels_order_parse_and_name() {
        assert!(Level::Debug < Level::Info && Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN").unwrap(), Some(Level::Warn));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("loud").is_err());
        assert_eq!(LogFormat::parse("json").unwrap(), LogFormat::Json);
        assert!(LogFormat::parse("xml").is_err());
    }

    #[test]
    fn logfmt_lines_quote_only_when_needed() {
        let line = render_line(
            LogFormat::Text,
            1700000000123,
            Level::Info,
            "request",
            &[
                ("request_id", "a1b2".into()),
                ("path", "/v1/run".into()),
                ("msg", "queue full; retry".into()),
                ("status", 429u16.into()),
                ("ok", false.into()),
            ],
        );
        assert_eq!(
            line,
            "ts=1700000000123 level=info event=request request_id=a1b2 \
             path=/v1/run msg=\"queue full; retry\" status=429 ok=false\n"
        );
    }

    #[test]
    fn json_lines_escape_and_type_fields() {
        let line = render_line(
            LogFormat::Json,
            7,
            Level::Warn,
            "job_done",
            &[
                ("error", "bad \"quote\"\nnewline".into()),
                ("wall_ms", 12u64.into()),
                ("ratio", 0.5f64.into()),
            ],
        );
        assert_eq!(
            line,
            "{\"ts\":7,\"level\":\"warn\",\"event\":\"job_done\",\
             \"error\":\"bad \\\"quote\\\"\\nnewline\",\"wall_ms\":12,\"ratio\":0.5}\n"
        );
    }

    #[test]
    fn level_filter_and_off_logger() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = Logger::to_sink(
            Level::Warn,
            LogFormat::Text,
            Box::new(Shared(Arc::clone(&buf))),
        );
        assert!(!log.enabled(Level::Info));
        assert!(log.enabled(Level::Error));
        log.log(Level::Info, "dropped", &[]);
        log.log(Level::Error, "kept", &[("n", 1u64.into())]);
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("event=kept n=1"), "{out}");

        let off = Logger::off();
        assert!(!off.enabled(Level::Error));
    }
}
