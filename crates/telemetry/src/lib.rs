//! Structured telemetry for the HiDISC simulator.
//!
//! Three layers, all optional at run time and free when disabled:
//!
//! 1. **Events** — every interesting micro-architectural moment
//!    ([`EventData`]) is tagged with a [`Category`] and recorded as a
//!    [`TraceEvent`] carrying the simulated cycle and the source lane
//!    (core index, CMP engine, or the machine driver). Emission sites are
//!    guarded by [`Telemetry::on`], a single load + mask-test + branch on
//!    the [`TraceConfig`] category bitmask, so a disabled category costs
//!    one predictable untaken branch.
//! 2. **Interval metrics** — [`IntervalMetrics`] samples machine-level
//!    counters every `metrics_interval` cycles into a ring-buffered
//!    series of [`IntervalSample`]s and feeds fixed-bucket [`Histogram`]s
//!    (miss latency, queue occupancy, MSHR occupancy) with p50/p95/p99
//!    helpers.
//! 3. **Sinks** — recorded events replay into any [`TraceSink`]:
//!    [`ChromeTraceSink`] writes catapult/Perfetto `trace.json`,
//!    [`CsvSink`] writes one row per event, [`MemorySink`] is a bounded
//!    buffer for tests.
//!
//! The recorder is deliberately *record-then-export*: the hot loop only
//! appends `Copy` structs to a `Vec` (bounded by [`EVENT_CAP`]); all
//! formatting happens after the run via [`Telemetry::replay`].

#![forbid(unsafe_code)]

pub mod log;

use hidisc_isa::Queue;
use std::collections::VecDeque;

/// Hard cap on buffered events; past it events are counted as dropped
/// instead of growing the buffer without bound.
pub const EVENT_CAP: usize = 1 << 20;

/// Ring-buffer capacity of the interval-sample series.
pub const SAMPLE_CAP: usize = 4096;

/// Source lane of events emitted by the CMP prefetch engine.
pub const SOURCE_CMP: u8 = 0xFE;

/// Source lane of events emitted by the machine driver itself
/// (fast-forward jumps).
pub const SOURCE_MACHINE: u8 = 0xFF;

/// Event categories; each is one bit of [`TraceConfig::mask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Core pipeline stages: fetch, dispatch, issue, complete, commit,
    /// mispredicts, LSQ conflicts.
    Pipeline,
    /// Memory hierarchy: demand/prefetch misses, MSHR occupancy,
    /// dirty evictions.
    Mem,
    /// Architectural queue pushes/pops with the resulting depth.
    Queue,
    /// CMP engine thread spawns and retires.
    Cmp,
    /// Machine-level events: idle-cycle fast-forward jumps.
    Machine,
}

impl Category {
    /// Every category, in bit order.
    pub const ALL: [Category; 5] = [
        Category::Pipeline,
        Category::Mem,
        Category::Queue,
        Category::Cmp,
        Category::Machine,
    ];

    /// The category's bit in [`TraceConfig::mask`].
    #[inline]
    pub fn bit(self) -> u8 {
        1 << self as u8
    }

    /// Lowercase name, used as the Chrome-trace `cat` field and by
    /// `--trace-filter`.
    pub fn name(self) -> &'static str {
        match self {
            Category::Pipeline => "pipeline",
            Category::Mem => "mem",
            Category::Queue => "queue",
            Category::Cmp => "cmp",
            Category::Machine => "machine",
        }
    }

    /// Parses a single category name as accepted by `--trace-filter`.
    pub fn parse(s: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// What to record: a category bitmask plus the metrics sampling interval
/// (0 = interval metrics off). `Copy` so it can live inside the machine
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// OR of [`Category::bit`]s to record.
    pub mask: u8,
    /// Sample interval metrics every this many simulated cycles
    /// (0 disables sampling).
    pub metrics_interval: u64,
    /// Buffered-event cap; past it events are counted as dropped (or, on
    /// a streamed run, the buffer is flushed before reaching it).
    /// Defaults to [`EVENT_CAP`].
    pub event_cap: usize,
}

impl TraceConfig {
    /// Everything off — the default; the hot path reduces to untaken
    /// branches.
    pub const OFF: TraceConfig = TraceConfig {
        mask: 0,
        metrics_interval: 0,
        event_cap: EVENT_CAP,
    };

    /// All event categories on (metrics still off unless set).
    pub const ALL_EVENTS: TraceConfig = TraceConfig {
        mask: 0b1_1111,
        metrics_interval: 0,
        event_cap: EVENT_CAP,
    };

    /// Parses a `--trace-filter` list: comma-separated category names, or
    /// `all`. Returns the config with only the mask set.
    pub fn parse_filter(s: &str) -> Result<TraceConfig, String> {
        if s == "all" {
            return Ok(TraceConfig::ALL_EVENTS);
        }
        let mut mask = 0u8;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let c = Category::parse(part).ok_or_else(|| {
                let names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
                format!(
                    "unknown trace category `{part}` (use {} or all)",
                    names.join("|")
                )
            })?;
            mask |= c.bit();
        }
        Ok(TraceConfig {
            mask,
            ..TraceConfig::OFF
        })
    }

    /// Returns self with the metrics interval replaced.
    pub fn with_metrics_interval(mut self, interval: u64) -> TraceConfig {
        self.metrics_interval = interval;
        self
    }

    /// Returns self with the event-buffer cap replaced (`cap` is clamped
    /// to at least 1).
    pub fn with_event_cap(mut self, cap: usize) -> TraceConfig {
        self.event_cap = cap.max(1);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::OFF
    }
}

/// Kind of memory access behind a recorded miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Demand load.
    Load,
    /// Committed store.
    Store,
    /// CMP or hardware prefetch.
    Prefetch,
}

impl MissKind {
    /// Lowercase name for sinks.
    pub fn name(self) -> &'static str {
        match self {
            MissKind::Load => "load",
            MissKind::Store => "store",
            MissKind::Prefetch => "prefetch",
        }
    }
}

/// Payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventData {
    /// An instruction entered the fetch queue.
    Fetch {
        /// Program counter of the fetched instruction.
        pc: u32,
    },
    /// An instruction was dispatched into the RUU.
    Dispatch {
        /// RUU sequence number assigned at dispatch.
        seq: u64,
        /// Program counter.
        pc: u32,
    },
    /// An instruction began execution.
    Issue {
        /// RUU sequence number.
        seq: u64,
        /// Program counter.
        pc: u32,
        /// Cycle its result becomes available.
        complete_at: u64,
    },
    /// An instruction's result became available.
    Complete {
        /// RUU sequence number.
        seq: u64,
        /// Program counter.
        pc: u32,
    },
    /// An instruction retired in program order.
    Commit {
        /// RUU sequence number.
        seq: u64,
        /// Program counter.
        pc: u32,
    },
    /// A conditional branch (or consume-branch token) redirected fetch.
    Mispredict {
        /// Program counter of the branch.
        pc: u32,
    },
    /// Dispatch stalled on a memory-carried dependence in the LSQ.
    LsqConflict {
        /// Program counter of the blocked load.
        pc: u32,
    },
    /// A cache miss left for the next level; fills at `ready_at`.
    MemMiss {
        /// Block-aligned address.
        addr: u64,
        /// Demand load, store, or prefetch.
        kind: MissKind,
        /// The L2 had the block (miss serviced without DRAM).
        l2_hit: bool,
        /// Cycle the fill completes.
        ready_at: u64,
    },
    /// MSHR file occupancy after an allocation.
    MshrOccupancy {
        /// Outstanding misses.
        n: u32,
    },
    /// A dirty victim was written back on a miss.
    Eviction {
        /// Cache level of the victim (1 or 2).
        level: u8,
    },
    /// A value entered an architectural queue.
    QueuePush {
        /// Which queue.
        q: Queue,
        /// Occupancy after the push.
        depth: u32,
    },
    /// A value left an architectural queue.
    QueuePop {
        /// Which queue.
        q: Queue,
        /// Occupancy after the pop.
        depth: u32,
    },
    /// The CMP engine spawned a prefetch thread.
    CmpSpawn {
        /// CMAS program index.
        cmas: u32,
        /// Live threads after the spawn.
        live: u32,
    },
    /// A CMP prefetch thread ran to completion.
    CmpRetire {
        /// CMAS program index.
        cmas: u32,
        /// Live threads after the retire.
        live: u32,
    },
    /// The machine fast-forwarded over idle cycles.
    FastForward {
        /// Cycles skipped by the jump.
        skipped: u64,
    },
}

impl EventData {
    /// The category this event belongs to.
    #[inline]
    pub fn category(self) -> Category {
        match self {
            EventData::Fetch { .. }
            | EventData::Dispatch { .. }
            | EventData::Issue { .. }
            | EventData::Complete { .. }
            | EventData::Commit { .. }
            | EventData::Mispredict { .. }
            | EventData::LsqConflict { .. } => Category::Pipeline,
            EventData::MemMiss { .. }
            | EventData::MshrOccupancy { .. }
            | EventData::Eviction { .. } => Category::Mem,
            EventData::QueuePush { .. } | EventData::QueuePop { .. } => Category::Queue,
            EventData::CmpSpawn { .. } | EventData::CmpRetire { .. } => Category::Cmp,
            EventData::FastForward { .. } => Category::Machine,
        }
    }

    /// Short event name for sinks.
    pub fn name(self) -> &'static str {
        match self {
            EventData::Fetch { .. } => "fetch",
            EventData::Dispatch { .. } => "dispatch",
            EventData::Issue { .. } => "issue",
            EventData::Complete { .. } => "complete",
            EventData::Commit { .. } => "commit",
            EventData::Mispredict { .. } => "mispredict",
            EventData::LsqConflict { .. } => "lsq-conflict",
            EventData::MemMiss { kind, .. } => match kind {
                MissKind::Load => "miss-load",
                MissKind::Store => "miss-store",
                MissKind::Prefetch => "miss-prefetch",
            },
            EventData::MshrOccupancy { .. } => "mshr",
            EventData::Eviction { .. } => "eviction",
            EventData::QueuePush { .. } => "queue-push",
            EventData::QueuePop { .. } => "queue-pop",
            EventData::CmpSpawn { .. } => "cmp-spawn",
            EventData::CmpRetire { .. } => "cmp-retire",
            EventData::FastForward { .. } => "fast-forward",
        }
    }
}

/// One recorded event: payload plus simulated cycle and source lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Source lane: core index, [`SOURCE_CMP`], or [`SOURCE_MACHINE`].
    pub source: u8,
    /// The payload.
    pub data: EventData,
}

/// One machine-level counter sample, taken every `metrics_interval`
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSample {
    /// Cycle of the sample.
    pub cycle: u64,
    /// Cumulative instructions committed across all cores.
    pub committed: u64,
    /// Queue occupancy at the sample, in [`Queue::ALL`] order.
    pub queue_depth: [u32; 5],
    /// Outstanding misses in the MSHR file.
    pub mshr: u32,
    /// Live CMP prefetch threads (0 on models without a CMP engine).
    pub live_threads: u32,
}

/// Fixed-width-bucket histogram with an overflow bucket and percentile
/// helpers. Values `v` land in bucket `v / width`; the last bucket
/// collects everything past the range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram of `buckets` regular buckets of `width` plus one
    /// overflow bucket.
    pub fn new(width: u64, buckets: usize) -> Histogram {
        assert!(width > 0 && buckets > 0);
        Histogram {
            width,
            counts: vec![0; buckets + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let overflow = self.counts.len() - 1;
        let b = ((v / self.width) as usize).min(overflow);
        self.counts[b] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of every recorded value (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Raw per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0 < p <= 100): the upper edge of the first
    /// bucket whose cumulative count reaches `ceil(total * p / 100)`,
    /// capped at the observed maximum. 0 when empty; the overflow bucket
    /// reports the maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64 * p / 100.0).ceil() as u64).max(1);
        let mut cum = 0u64;
        let overflow = self.counts.len() - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                if i == overflow {
                    return self.max;
                }
                return ((i as u64 + 1) * self.width - 1).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// The interval-metrics recorder: a ring of [`IntervalSample`]s plus
/// histograms fed by the samples and by per-miss latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalMetrics {
    /// Sampling interval in cycles.
    pub interval: u64,
    samples: VecDeque<IntervalSample>,
    dropped: u64,
    /// Demand-miss fill latency (cycles from access to fill), 8-cycle
    /// buckets.
    pub miss_latency: Histogram,
    /// Occupancy of each architectural queue at sample points, in
    /// [`Queue::ALL`] order, 1-entry buckets.
    pub queue_occupancy: [Histogram; 5],
    /// MSHR occupancy at sample points.
    pub mshr_occupancy: Histogram,
}

impl IntervalMetrics {
    /// An empty recorder sampling every `interval` cycles.
    pub fn new(interval: u64) -> IntervalMetrics {
        let occ = || Histogram::new(1, 64);
        IntervalMetrics {
            interval,
            samples: VecDeque::new(),
            dropped: 0,
            miss_latency: Histogram::new(8, 64),
            queue_occupancy: [occ(), occ(), occ(), occ(), occ()],
            mshr_occupancy: Histogram::new(1, 64),
        }
    }

    /// Appends a sample, dropping the oldest past [`SAMPLE_CAP`], and
    /// feeds the occupancy histograms.
    pub fn record_sample(&mut self, s: IntervalSample) {
        for (h, &d) in self.queue_occupancy.iter_mut().zip(&s.queue_depth) {
            h.record(d as u64);
        }
        self.mshr_occupancy.record(s.mshr as u64);
        if self.samples.len() >= SAMPLE_CAP {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &IntervalSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The per-machine telemetry recorder. Lives inside the machine; every
/// emission site is guarded by [`Telemetry::on`] so a zero mask keeps
/// the simulator's hot path identical to an untraced build.
#[derive(Debug, Clone)]
pub struct Telemetry {
    cfg: TraceConfig,
    now: u64,
    source: u8,
    events: Vec<TraceEvent>,
    dropped: u64,
    flushed: u64,
    queue_peak: [u32; 5],
    metrics: Option<Box<IntervalMetrics>>,
}

#[inline]
fn qslot(q: Queue) -> usize {
    match q {
        Queue::Ldq => 0,
        Queue::Sdq => 1,
        Queue::Cdq => 2,
        Queue::Cq => 3,
        Queue::Scq => 4,
    }
}

impl Telemetry {
    /// A recorder for `cfg`; allocates nothing when everything is off.
    pub fn new(cfg: TraceConfig) -> Telemetry {
        Telemetry {
            cfg,
            now: 0,
            source: 0,
            events: Vec::new(),
            dropped: 0,
            flushed: 0,
            queue_peak: [0; 5],
            metrics: (cfg.metrics_interval > 0)
                .then(|| Box::new(IntervalMetrics::new(cfg.metrics_interval))),
        }
    }

    /// The all-off recorder (for tests and plumbing defaults).
    pub fn disabled() -> Telemetry {
        Telemetry::new(TraceConfig::OFF)
    }

    /// True when `cat` is being recorded — the hot-path guard; a single
    /// mask test.
    #[inline(always)]
    pub fn on(&self, cat: Category) -> bool {
        self.cfg.mask & cat.bit() != 0
    }

    /// True when interval metrics are being recorded.
    #[inline(always)]
    pub fn metrics_on(&self) -> bool {
        self.metrics.is_some()
    }

    /// The metrics sampling interval (0 = off).
    #[inline]
    pub fn metrics_interval(&self) -> u64 {
        self.cfg.metrics_interval
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Sets the simulated cycle stamped on subsequent events.
    #[inline(always)]
    pub fn set_clock(&mut self, now: u64) {
        self.now = now;
    }

    /// Sets the source lane stamped on subsequent events.
    #[inline(always)]
    pub fn set_source(&mut self, source: u8) {
        self.source = source;
    }

    /// Records one event at the current clock and source. Callers guard
    /// with [`Telemetry::on`]; this method assumes the category is
    /// enabled.
    pub fn emit(&mut self, data: EventData) {
        match data {
            EventData::QueuePush { q, depth } | EventData::QueuePop { q, depth } => {
                let p = &mut self.queue_peak[qslot(q)];
                if depth > *p {
                    *p = depth;
                }
            }
            _ => {}
        }
        if self.events.len() >= self.cfg.event_cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            cycle: self.now,
            source: self.source,
            data,
        });
    }

    /// Feeds one demand-miss fill latency into the metrics histogram (a
    /// no-op when metrics are off).
    #[inline]
    pub fn record_miss_latency(&mut self, latency: u64) {
        if let Some(m) = &mut self.metrics {
            m.miss_latency.record(latency);
        }
    }

    /// Appends one interval sample (a no-op when metrics are off).
    pub fn record_sample(&mut self, s: IntervalSample) {
        if let Some(m) = &mut self.metrics {
            m.record_sample(s);
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded past [`EVENT_CAP`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-queue occupancy high-water marks observed via queue events
    /// (in [`Queue::ALL`] order). Tracked even when the event buffer
    /// saturates, so diagnostics stay exact on long runs; all zero
    /// unless [`Category::Queue`] is enabled.
    pub fn queue_peaks(&self) -> [u32; 5] {
        self.queue_peak
    }

    /// The interval metrics, when enabled.
    pub fn metrics(&self) -> Option<&IntervalMetrics> {
        self.metrics.as_deref()
    }

    /// Replays every recorded event into `sink`, in order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for e in &self.events {
            sink.event(e);
        }
    }

    /// Replays every buffered event into `sink` and clears the buffer so
    /// recording can continue without hitting the cap. Drop and peak
    /// counters are preserved; flushed events are counted separately.
    /// Returns the number of events flushed.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) -> usize {
        for e in &self.events {
            sink.event(e);
        }
        let n = self.events.len();
        self.events.clear();
        self.flushed += n as u64;
        n
    }

    /// Events flushed out of the buffer by [`Telemetry::drain_into`].
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Total events recorded: still buffered plus already flushed
    /// (dropped events not included).
    pub fn total_events(&self) -> u64 {
        self.flushed + self.events.len() as u64
    }
}

/// Consumer of recorded trace events.
pub trait TraceSink {
    /// Receives one event; events arrive in emission order.
    fn event(&mut self, e: &TraceEvent);
}

// ---------------------------------------------------------------------
// Chrome-trace sink
// ---------------------------------------------------------------------

/// Shared Chrome-trace record formatter. Both the buffered
/// [`ChromeTraceSink`] and the on-the-fly [`StreamingSink`] route every
/// byte through this one emitter, so the two produce byte-identical
/// documents for the same event sequence.
struct ChromeFmt {
    any: bool,
    core_lanes: u32,
}

impl ChromeFmt {
    /// Emits the document preamble (JSON shell plus process/thread-name
    /// metadata records) into `out` and returns the formatter.
    fn new(core_names: &[&str], out: &mut dyn FnMut(&str)) -> ChromeFmt {
        let mut f = ChromeFmt {
            any: false,
            core_lanes: core_names.len() as u32,
        };
        out("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        f.raw(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"hidisc\"}}",
            out,
        );
        let n = f.core_lanes;
        for (i, name) in core_names.iter().enumerate() {
            f.thread_name(i as u32, name, out);
        }
        f.thread_name(n, "mem", out);
        f.thread_name(n + 1, "cmp", out);
        f.thread_name(n + 2, "machine", out);
        f
    }

    fn thread_name(&mut self, tid: u32, name: &str, out: &mut dyn FnMut(&str)) {
        self.raw(
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            out,
        );
    }

    fn raw(&mut self, json: &str, out: &mut dyn FnMut(&str)) {
        if self.any {
            out(",");
        }
        out("\n");
        out(json);
        self.any = true;
    }

    fn lane(&self, e: &TraceEvent) -> u32 {
        if e.data.category() == Category::Mem {
            return self.core_lanes;
        }
        match e.source {
            SOURCE_CMP => self.core_lanes + 1,
            SOURCE_MACHINE => self.core_lanes + 2,
            s => (s as u32).min(self.core_lanes.saturating_sub(1)),
        }
    }

    fn instant(&mut self, e: &TraceEvent, name: &str, args: String, out: &mut dyn FnMut(&str)) {
        let tid = self.lane(e);
        let cat = e.data.category().name();
        self.raw(
            &format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                 \"cat\":\"{cat}\",\"name\":\"{name}\",\"args\":{{{args}}}}}",
                e.cycle
            ),
            out,
        );
    }

    fn complete(
        &mut self,
        e: &TraceEvent,
        name: &str,
        dur: u64,
        args: String,
        out: &mut dyn FnMut(&str),
    ) {
        let tid = self.lane(e);
        let cat = e.data.category().name();
        self.raw(
            &format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"cat\":\"{cat}\",\"name\":\"{name}\",\"args\":{{{args}}}}}",
                e.cycle,
                dur.max(1)
            ),
            out,
        );
    }

    fn counter(
        &mut self,
        e: &TraceEvent,
        name: &str,
        series: &str,
        value: u64,
        out: &mut dyn FnMut(&str),
    ) {
        let cat = e.data.category().name();
        self.raw(
            &format!(
                "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"cat\":\"{cat}\",\
                 \"name\":\"{name}\",\"args\":{{\"{series}\":{value}}}}}",
                e.cycle
            ),
            out,
        );
    }

    /// Emits the record(s) for one trace event.
    fn event(&mut self, e: &TraceEvent, out: &mut dyn FnMut(&str)) {
        match e.data {
            EventData::Fetch { pc } => self.instant(e, "fetch", format!("\"pc\":{pc}"), out),
            EventData::Dispatch { seq, pc } => {
                self.instant(e, "dispatch", format!("\"pc\":{pc},\"seq\":{seq}"), out)
            }
            EventData::Issue {
                seq,
                pc,
                complete_at,
            } => self.complete(
                e,
                "issue",
                complete_at.saturating_sub(e.cycle),
                format!("\"pc\":{pc},\"seq\":{seq}"),
                out,
            ),
            EventData::Complete { seq, pc } => {
                self.instant(e, "complete", format!("\"pc\":{pc},\"seq\":{seq}"), out)
            }
            EventData::Commit { seq, pc } => {
                self.instant(e, "commit", format!("\"pc\":{pc},\"seq\":{seq}"), out)
            }
            EventData::Mispredict { pc } => {
                self.instant(e, "mispredict", format!("\"pc\":{pc}"), out)
            }
            EventData::LsqConflict { pc } => {
                self.instant(e, "lsq-conflict", format!("\"pc\":{pc}"), out)
            }
            EventData::MemMiss {
                addr,
                kind,
                l2_hit,
                ready_at,
            } => self.complete(
                e,
                e.data.name(),
                ready_at.saturating_sub(e.cycle),
                format!(
                    "\"addr\":{addr},\"kind\":\"{}\",\"l2Hit\":{l2_hit}",
                    kind.name()
                ),
                out,
            ),
            EventData::MshrOccupancy { n } => self.counter(e, "mshr", "outstanding", n as u64, out),
            EventData::Eviction { level } => {
                self.instant(e, "eviction", format!("\"level\":{level}"), out)
            }
            EventData::QueuePush { q, depth } | EventData::QueuePop { q, depth } => {
                self.counter(e, q.name(), "depth", depth as u64, out)
            }
            EventData::CmpSpawn { cmas, live } => {
                self.instant(e, "cmp-spawn", format!("\"cmas\":{cmas}"), out);
                self.counter(e, "cmp-live", "threads", live as u64, out);
            }
            EventData::CmpRetire { cmas, live } => {
                self.instant(e, "cmp-retire", format!("\"cmas\":{cmas}"), out);
                self.counter(e, "cmp-live", "threads", live as u64, out);
            }
            EventData::FastForward { skipped } => self.complete(
                e,
                "fast-forward",
                skipped,
                format!("\"skipped\":{skipped}"),
                out,
            ),
        }
    }

    /// Emits the document tail: closes the event array, embeds the
    /// interval metrics (when given) as a `hidiscMetrics` side table,
    /// and closes the JSON object.
    fn tail(&self, metrics: Option<&IntervalMetrics>, out: &mut dyn FnMut(&str)) {
        out("\n]");
        if let Some(m) = metrics {
            out(",\n\"hidiscMetrics\":");
            out(&metrics_json(m));
        }
        out("\n}\n");
    }
}

/// Writes the catapult/Perfetto Chrome trace event format (the JSON
/// object form `{"traceEvents": [...]}`), mapping one simulated cycle to
/// one microsecond of trace time. Lanes (`tid`) are: one per core, then
/// `mem`, `cmp`, and `machine`. Load into <https://ui.perfetto.dev>.
///
/// Buffers the whole document in memory; for runs whose event stream is
/// larger than the buffer cap, use [`StreamingSink`] instead.
pub struct ChromeTraceSink {
    buf: String,
    fmt: ChromeFmt,
}

impl ChromeTraceSink {
    /// A sink with one named lane per core (e.g. `["CP", "AP"]`) plus
    /// the fixed `mem`/`cmp`/`machine` lanes.
    pub fn new(core_names: &[&str]) -> ChromeTraceSink {
        let mut buf = String::new();
        let fmt = ChromeFmt::new(core_names, &mut |s| buf.push_str(s));
        ChromeTraceSink { buf, fmt }
    }

    /// Closes the JSON object, embedding the interval metrics (when
    /// given) as a `hidiscMetrics` side table, and returns the document.
    pub fn finish(self, metrics: Option<&IntervalMetrics>) -> String {
        let ChromeTraceSink { mut buf, fmt } = self;
        fmt.tail(metrics, &mut |s| buf.push_str(s));
        buf
    }
}

/// Serialises Chrome-trace records on the fly to any [`std::io::Write`]
/// target instead of buffering the whole document, so Full-scale runs
/// can be traced without raising the event cap. Produces byte-identical
/// output to [`ChromeTraceSink`] for the same event sequence.
///
/// The first I/O error is latched and subsequent events are discarded;
/// [`StreamingSink::finish`] reports it.
pub struct StreamingSink<W: std::io::Write> {
    w: W,
    fmt: ChromeFmt,
    err: Option<std::io::Error>,
}

impl<W: std::io::Write> StreamingSink<W> {
    /// A sink writing the document preamble to `w` immediately, with one
    /// named lane per core plus the fixed `mem`/`cmp`/`machine` lanes.
    /// Wrap files in a [`std::io::BufWriter`]; records are small.
    pub fn new(mut w: W, core_names: &[&str]) -> StreamingSink<W> {
        let mut err = None;
        let fmt = ChromeFmt::new(core_names, &mut |s| {
            if err.is_none() {
                err = w.write_all(s.as_bytes()).err();
            }
        });
        StreamingSink { w, fmt, err }
    }

    /// Writes the document tail (embedding interval metrics when given),
    /// flushes, and returns the writer — or the first I/O error hit at
    /// any point of the stream.
    pub fn finish(self, metrics: Option<&IntervalMetrics>) -> std::io::Result<W> {
        let StreamingSink {
            mut w,
            fmt,
            mut err,
        } = self;
        if err.is_none() {
            fmt.tail(metrics, &mut |s| {
                if err.is_none() {
                    err = w.write_all(s.as_bytes()).err();
                }
            });
        }
        match err {
            Some(e) => Err(e),
            None => {
                w.flush()?;
                Ok(w)
            }
        }
    }
}

impl<W: std::io::Write> TraceSink for StreamingSink<W> {
    fn event(&mut self, e: &TraceEvent) {
        let StreamingSink { w, fmt, err } = self;
        if err.is_some() {
            return;
        }
        fmt.event(e, &mut |s| {
            if err.is_none() {
                *err = w.write_all(s.as_bytes()).err();
            }
        });
    }
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        h.total(),
        h.max(),
        h.p50(),
        h.p95(),
        h.p99()
    )
}

/// The interval metrics as a self-contained JSON object (used both by
/// the Chrome sink's side table and by reports).
pub fn metrics_json(m: &IntervalMetrics) -> String {
    let mut s = String::from("{");
    s.push_str(&format!(
        "\"interval\":{},\"samples\":{},\"droppedSamples\":{},",
        m.interval,
        m.len(),
        m.dropped()
    ));
    s.push_str(&format!(
        "\"missLatency\":{},",
        histogram_json(&m.miss_latency)
    ));
    s.push_str("\"queueOccupancy\":{");
    for (i, q) in Queue::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\"{}\":{}",
            q.name(),
            histogram_json(&m.queue_occupancy[i])
        ));
    }
    s.push_str("},");
    s.push_str(&format!(
        "\"mshrOccupancy\":{},",
        histogram_json(&m.mshr_occupancy)
    ));
    s.push_str("\"series\":[");
    for (i, smp) in m.samples().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"cycle\":{},\"committed\":{},\"queues\":[{},{},{},{},{}],\
             \"mshr\":{},\"liveThreads\":{}}}",
            smp.cycle,
            smp.committed,
            smp.queue_depth[0],
            smp.queue_depth[1],
            smp.queue_depth[2],
            smp.queue_depth[3],
            smp.queue_depth[4],
            smp.mshr,
            smp.live_threads
        ));
    }
    s.push_str("]}");
    s
}

impl TraceSink for ChromeTraceSink {
    fn event(&mut self, e: &TraceEvent) {
        let ChromeTraceSink { buf, fmt } = self;
        fmt.event(e, &mut |s| buf.push_str(s));
    }
}

fn histogram_prometheus(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (stat, v) in [
        ("count", h.total()),
        ("max", h.max()),
        ("p50", h.p50()),
        ("p95", h.p95()),
        ("p99", h.p99()),
    ] {
        out.push_str(&format!("{name}{{{labels}{sep}stat=\"{stat}\"}} {v}\n"));
    }
}

/// Formats `v * 10^-shift` as an exact decimal (no float round-trip), so
/// bucket edges like `0.0005` render deterministically.
fn scaled_decimal(v: u64, shift: u32) -> String {
    let pow = 10u64.pow(shift);
    let whole = v / pow;
    let frac = v % pow;
    if frac == 0 {
        return format!("{whole}");
    }
    let frac = format!("{frac:0width$}", width = shift as usize);
    format!("{whole}.{}", frac.trim_end_matches('0'))
}

/// Renders `h` as one member of a **real** Prometheus histogram family:
/// cumulative `{name}_bucket{{le="…"}}` lines (the overflow bucket as
/// `le="+Inf"`, whose count equals `_count`), then `{name}_sum` and
/// `{name}_count`. The caller owns the `# HELP`/`# TYPE … histogram`
/// header, emitted once per family.
///
/// Recorded values are integers in `10^-decimal_shift` of the exposed
/// unit — e.g. a histogram recording microseconds exposed as seconds
/// passes `decimal_shift = 6` — so edges and sums are exact decimals.
pub fn prometheus_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    h: &Histogram,
    decimal_shift: u32,
) {
    let sep = if labels.is_empty() { "" } else { "," };
    let counts = h.bucket_counts();
    let regular = counts.len() - 1;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().take(regular).enumerate() {
        cum += c;
        let le = scaled_decimal((i as u64 + 1) * h.width(), decimal_shift);
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}\n"
        ));
    }
    cum += counts[regular];
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}\n"
    ));
    let braces = |s: &str| {
        if s.is_empty() {
            String::new()
        } else {
            format!("{{{s}}}")
        }
    };
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        braces(labels),
        scaled_decimal(h.sum(), decimal_shift)
    ));
    out.push_str(&format!("{name}_count{} {}\n", braces(labels), h.total()));
}

/// Renders the interval metrics in the Prometheus text exposition format
/// (one gauge per histogram statistic), for `GET /metrics`-style
/// endpoints.
pub fn metrics_prometheus(m: &IntervalMetrics) -> String {
    let mut s = String::new();
    let header = |s: &mut String, name: &str, help: &str| {
        s.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    };
    header(
        &mut s,
        "hidisc_metrics_interval_cycles",
        "Interval-metrics sampling period of the latest run, in cycles.",
    );
    s.push_str(&format!("hidisc_metrics_interval_cycles {}\n", m.interval));
    header(
        &mut s,
        "hidisc_metrics_samples",
        "Interval samples buffered by the latest run.",
    );
    s.push_str(&format!("hidisc_metrics_samples {}\n", m.len()));
    header(
        &mut s,
        "hidisc_metrics_dropped_samples",
        "Interval samples dropped past the ring-buffer cap.",
    );
    s.push_str(&format!("hidisc_metrics_dropped_samples {}\n", m.dropped()));
    header(
        &mut s,
        "hidisc_miss_latency_cycles",
        "Demand-miss fill latency of the latest run (per-statistic gauges).",
    );
    histogram_prometheus(&mut s, "hidisc_miss_latency_cycles", "", &m.miss_latency);
    header(
        &mut s,
        "hidisc_queue_occupancy",
        "Architectural-queue occupancy at sample points (per-statistic gauges).",
    );
    for (i, q) in Queue::ALL.iter().enumerate() {
        histogram_prometheus(
            &mut s,
            "hidisc_queue_occupancy",
            &format!("queue=\"{}\"", q.name()),
            &m.queue_occupancy[i],
        );
    }
    header(
        &mut s,
        "hidisc_mshr_occupancy",
        "MSHR occupancy at sample points (per-statistic gauges).",
    );
    histogram_prometheus(&mut s, "hidisc_mshr_occupancy", "", &m.mshr_occupancy);
    s
}

// ---------------------------------------------------------------------
// CSV sink
// ---------------------------------------------------------------------

/// One row per event: `cycle,source,category,event,a,b,c` where the
/// generic columns carry the variant's payload fields in declaration
/// order (empty when unused).
pub struct CsvSink {
    buf: String,
}

impl CsvSink {
    /// A sink holding the header row.
    pub fn new() -> CsvSink {
        CsvSink {
            buf: String::from("cycle,source,category,event,a,b,c\n"),
        }
    }

    /// The accumulated document.
    pub fn finish(self) -> String {
        self.buf
    }
}

impl Default for CsvSink {
    fn default() -> Self {
        CsvSink::new()
    }
}

impl TraceSink for CsvSink {
    fn event(&mut self, e: &TraceEvent) {
        let (a, b, c) = match e.data {
            EventData::Fetch { pc }
            | EventData::Mispredict { pc }
            | EventData::LsqConflict { pc } => (pc.to_string(), String::new(), String::new()),
            EventData::Dispatch { seq, pc }
            | EventData::Complete { seq, pc }
            | EventData::Commit { seq, pc } => (seq.to_string(), pc.to_string(), String::new()),
            EventData::Issue {
                seq,
                pc,
                complete_at,
            } => (seq.to_string(), pc.to_string(), complete_at.to_string()),
            EventData::MemMiss {
                addr,
                l2_hit,
                ready_at,
                ..
            } => (addr.to_string(), l2_hit.to_string(), ready_at.to_string()),
            EventData::MshrOccupancy { n } => (n.to_string(), String::new(), String::new()),
            EventData::Eviction { level } => (level.to_string(), String::new(), String::new()),
            EventData::QueuePush { q, depth } | EventData::QueuePop { q, depth } => {
                (q.name().to_string(), depth.to_string(), String::new())
            }
            EventData::CmpSpawn { cmas, live } | EventData::CmpRetire { cmas, live } => {
                (cmas.to_string(), live.to_string(), String::new())
            }
            EventData::FastForward { skipped } => {
                (skipped.to_string(), String::new(), String::new())
            }
        };
        self.buf.push_str(&format!(
            "{},{},{},{},{a},{b},{c}\n",
            e.cycle,
            e.source,
            e.data.category().name(),
            e.data.name()
        ));
    }
}

// ---------------------------------------------------------------------
// In-memory sink
// ---------------------------------------------------------------------

/// A bounded in-memory sink for tests: keeps the first `cap` events and
/// counts the rest as dropped.
pub struct MemorySink {
    cap: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl MemorySink {
    /// A sink retaining at most `cap` events.
    pub fn new(cap: usize) -> MemorySink {
        MemorySink {
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The retained events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events past the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for MemorySink {
    fn event(&mut self, e: &TraceEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.events.push(*e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_bits_are_distinct() {
        let mut seen = 0u8;
        for c in Category::ALL {
            assert_eq!(seen & c.bit(), 0);
            seen |= c.bit();
            assert_eq!(Category::parse(c.name()), Some(c));
        }
        assert_eq!(seen, TraceConfig::ALL_EVENTS.mask);
    }

    #[test]
    fn filter_parsing() {
        assert_eq!(TraceConfig::parse_filter("all").unwrap().mask, 0b1_1111);
        let c = TraceConfig::parse_filter("pipeline,queue").unwrap();
        assert_eq!(c.mask, Category::Pipeline.bit() | Category::Queue.bit());
        assert_eq!(c.metrics_interval, 0);
        assert!(TraceConfig::parse_filter("pipeline,bogus").is_err());
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Telemetry::disabled();
        assert!(!t.on(Category::Pipeline));
        assert!(!t.metrics_on());
        t.record_miss_latency(100);
        t.record_sample(IntervalSample {
            cycle: 0,
            committed: 0,
            queue_depth: [0; 5],
            mshr: 0,
            live_threads: 0,
        });
        assert!(t.events().is_empty());
        assert!(t.metrics().is_none());
    }

    #[test]
    fn emit_stamps_clock_and_source() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS);
        t.set_clock(42);
        t.set_source(1);
        t.emit(EventData::Fetch { pc: 7 });
        assert_eq!(
            t.events(),
            &[TraceEvent {
                cycle: 42,
                source: 1,
                data: EventData::Fetch { pc: 7 }
            }]
        );
    }

    #[test]
    fn queue_peaks_survive_event_cap() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS);
        for depth in 1..=10u32 {
            t.emit(EventData::QueuePush {
                q: Queue::Ldq,
                depth,
            });
        }
        t.emit(EventData::QueuePop {
            q: Queue::Ldq,
            depth: 9,
        });
        assert_eq!(t.queue_peaks(), [10, 0, 0, 0, 0]);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(1, 128);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.total(), 100);
        assert_eq!(Histogram::new(4, 8).p50(), 0);
    }

    #[test]
    fn histogram_overflow_reports_max() {
        let mut h = Histogram::new(2, 4);
        h.record(1000);
        h.record(2000);
        assert_eq!(h.p99(), 2000);
        assert_eq!(h.max(), 2000);
        assert_eq!(h.sum(), 3000);
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_exact_edges() {
        // Microsecond buckets of 500 µs exposed as seconds.
        let mut h = Histogram::new(500, 3);
        for v in [100, 600, 700, 10_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        prometheus_histogram(&mut out, "d_seconds", "route=\"run\"", &h, 6);
        assert_eq!(
            out,
            "d_seconds_bucket{route=\"run\",le=\"0.0005\"} 1\n\
             d_seconds_bucket{route=\"run\",le=\"0.001\"} 3\n\
             d_seconds_bucket{route=\"run\",le=\"0.0015\"} 3\n\
             d_seconds_bucket{route=\"run\",le=\"+Inf\"} 4\n\
             d_seconds_sum{route=\"run\"} 10.0014\n\
             d_seconds_count{route=\"run\"} 4\n"
        );
        // Unlabeled members drop the braces entirely.
        let mut bare = String::new();
        prometheus_histogram(&mut bare, "d_seconds", "", &h, 6);
        assert!(
            bare.contains("d_seconds_bucket{le=\"0.0005\"} 1\n"),
            "{bare}"
        );
        assert!(bare.contains("d_seconds_sum 10.0014\n"), "{bare}");
        assert!(bare.contains("d_seconds_count 4\n"), "{bare}");
    }

    #[test]
    fn sample_ring_is_bounded() {
        let mut m = IntervalMetrics::new(10);
        for i in 0..(SAMPLE_CAP as u64 + 5) {
            m.record_sample(IntervalSample {
                cycle: i * 10,
                committed: i,
                queue_depth: [0; 5],
                mshr: 0,
                live_threads: 0,
            });
        }
        assert_eq!(m.len(), SAMPLE_CAP);
        assert_eq!(m.dropped(), 5);
        assert_eq!(m.samples().next().unwrap().cycle, 50);
    }

    #[test]
    fn memory_sink_is_bounded() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS);
        for i in 0..10 {
            t.set_clock(i);
            t.emit(EventData::Fetch { pc: i as u32 });
        }
        let mut sink = MemorySink::new(4);
        t.replay(&mut sink);
        assert_eq!(sink.events().len(), 4);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn chrome_sink_emits_wellformed_json_shell() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS.with_metrics_interval(10));
        t.set_clock(5);
        t.emit(EventData::Issue {
            seq: 1,
            pc: 2,
            complete_at: 9,
        });
        t.emit(EventData::QueuePush {
            q: Queue::Cq,
            depth: 3,
        });
        t.record_sample(IntervalSample {
            cycle: 10,
            committed: 4,
            queue_depth: [1, 0, 0, 3, 0],
            mshr: 2,
            live_threads: 0,
        });
        let mut sink = ChromeTraceSink::new(&["CP", "AP"]);
        t.replay(&mut sink);
        let json = sink.finish(t.metrics());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"pipeline\""));
        assert!(json.contains("\"cat\":\"queue\""));
        assert!(json.contains("\"hidiscMetrics\":"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn streaming_sink_matches_buffered_sink_byte_for_byte() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS.with_metrics_interval(10));
        t.set_clock(5);
        t.emit(EventData::Issue {
            seq: 1,
            pc: 2,
            complete_at: 9,
        });
        t.set_source(SOURCE_CMP);
        t.emit(EventData::CmpSpawn { cmas: 0, live: 1 });
        t.set_source(SOURCE_MACHINE);
        t.emit(EventData::FastForward { skipped: 40 });
        t.record_sample(IntervalSample {
            cycle: 10,
            committed: 4,
            queue_depth: [1, 0, 0, 3, 0],
            mshr: 2,
            live_threads: 1,
        });

        let mut buffered = ChromeTraceSink::new(&["CP", "AP"]);
        t.replay(&mut buffered);
        let expect = buffered.finish(t.metrics());

        let mut streamed = StreamingSink::new(Vec::new(), &["CP", "AP"]);
        t.replay(&mut streamed);
        let got = streamed.finish(t.metrics()).unwrap();
        assert_eq!(String::from_utf8(got).unwrap(), expect);
    }

    #[test]
    fn small_event_cap_forces_counted_drops() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS.with_event_cap(3));
        for i in 0..8 {
            t.emit(EventData::Fetch { pc: i });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 5);
    }

    #[test]
    fn drain_into_clears_buffer_and_counts_flushed() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS.with_event_cap(4));
        for i in 0..4 {
            t.emit(EventData::Fetch { pc: i });
        }
        let mut sink = MemorySink::new(64);
        assert_eq!(t.drain_into(&mut sink), 4);
        assert!(t.events().is_empty());
        for i in 4..6 {
            t.emit(EventData::Fetch { pc: i });
        }
        t.drain_into(&mut sink);
        assert_eq!(sink.events().len(), 6);
        assert_eq!(t.flushed(), 6);
        assert_eq!(t.total_events(), 6);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn prometheus_rendering_smoke() {
        let mut m = IntervalMetrics::new(100);
        m.miss_latency.record(40);
        m.record_sample(IntervalSample {
            cycle: 100,
            committed: 10,
            queue_depth: [2, 0, 0, 1, 0],
            mshr: 1,
            live_threads: 0,
        });
        let text = metrics_prometheus(&m);
        assert!(text.contains("hidisc_metrics_interval_cycles 100\n"));
        assert!(text.contains("hidisc_miss_latency_cycles{stat=\"count\"} 1\n"));
        assert!(text.contains("hidisc_queue_occupancy{queue=\"LDQ\",stat=\"max\"} 2\n"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn csv_sink_one_row_per_event() {
        let mut t = Telemetry::new(TraceConfig::ALL_EVENTS);
        t.emit(EventData::Commit { seq: 3, pc: 8 });
        t.emit(EventData::FastForward { skipped: 100 });
        let mut sink = CsvSink::new();
        t.replay(&mut sink);
        let csv = sink.finish();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "cycle,source,category,event,a,b,c");
        assert_eq!(lines[1], "0,0,pipeline,commit,3,8,");
        assert_eq!(lines[2], "0,0,machine,fast-forward,100,,");
    }
}
