//! Cache Miss Access Slice extraction (Section 4.2 / Figure 7 of the
//! paper).
//!
//! For each natural loop containing probable cache-miss loads we build a
//! *sliced copy of the loop* containing only the loop control, the address
//! chains of the probable-miss loads, and the loads themselves — converted
//! to prefetches when their value is not needed inside the slice (terminal
//! misses) and kept as real CMP loads when it is (pointer chases).
//!
//! Run-ahead is throttled by the Slip Control Queue exactly as in Figure 3
//! of the paper: the slice executes `putscq` at each loop latch (blocking
//! when the semaphore is full) and the Access Stream's latch branch carries
//! the `scq_get` annotation. The trigger is the last Access-Stream
//! instruction before the loop: when the AP commits it, the CMP forks a
//! thread with a snapshot of the AP register file.

use crate::cfg::Cfg;
use crate::dataflow::DefUse;
use crate::dom::Loops;
use crate::separate::store_data_reg;
use crate::CmasThread;
use hidisc_isa::annot::Annot;
use hidisc_isa::{Instr, Program, Result};
use std::collections::{BTreeSet, HashMap};

/// Where one CMAS integrates with a stream program (original-program
/// coordinates; [`instrument`] translates through a layout map).
#[derive(Debug, Clone)]
pub struct CmasSite {
    /// Thread id.
    pub id: u32,
    /// Original index of the loop header's first instruction.
    pub header_start: u32,
    /// Candidate trigger point: the last original position before the
    /// header ([`instrument`] walks further back if that position emitted
    /// nothing into the target stream).
    pub trigger_before: u32,
    /// Original indices of the loop's back-edge branches (receive the
    /// `scq_get` annotation).
    pub latch_branches: Vec<u32>,
    /// Original indices of every instruction in the slice (for annotation
    /// and reporting).
    pub slice: Vec<u32>,
}

/// The result of CMAS extraction.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    /// The CMP thread programs.
    pub threads: Vec<CmasThread>,
    /// Integration points.
    pub sites: Vec<CmasSite>,
}

/// Extracts CMAS threads from an annotated original program (stream and
/// `probable_miss` annotations must already be set).
pub fn extract(prog: &Program, graph: &Cfg, loops: &Loops, du: &DefUse) -> Result<Extraction> {
    // Group probable-miss loads by their innermost loop header.
    let mut by_header: HashMap<usize, Vec<u32>> = HashMap::new();
    for pc in 0..prog.len() {
        if !prog.annot(pc).probable_miss || !prog.instr(pc).is_load() {
            continue;
        }
        let b = graph.block_containing(pc);
        if let Some(l) = loops.innermost_containing(b) {
            by_header.entry(l.header).or_default().push(pc);
        }
    }

    let mut out = Extraction::default();
    let mut headers: Vec<usize> = by_header.keys().copied().collect();
    headers.sort_unstable();

    'next_loop: for header in headers {
        let miss_loads = &by_header[&header];
        let l = loops
            .loops
            .iter()
            .find(|l| l.header == header)
            .expect("header key comes from this loop set");

        // Body positions, sorted.
        let mut body: BTreeSet<u32> = BTreeSet::new();
        for &b in &l.body {
            body.extend(graph.blocks[b].range());
        }
        let header_start = graph.blocks[header].start;
        if *body.iter().next().unwrap() != header_start || header_start == 0 {
            continue; // irregular layout or loop at entry: skip
        }
        let trigger_before = header_start - 1;
        if l.contains(graph.block_containing(trigger_before)) {
            continue; // no fall-through pre-header
        }

        // Backward slice within the loop body. Seeds are the miss loads
        // plus the loop's control skeleton — but only the control that
        // matters to the slice: back edges, loop exits, and forward
        // branches that *guard* slice instructions. A forward branch whose
        // skipped region contains no slice member is pruned (the CMP
        // simply falls through), which turns loads that only fed such
        // branches into terminal prefetches — crucial for run-ahead on
        // gather loops whose per-element work is guarded by a test.
        let chase = |seeds: &BTreeSet<u32>| -> Option<BTreeSet<u32>> {
            let mut slice = seeds.clone();
            let mut work: Vec<u32> = slice.iter().copied().collect();
            while let Some(pc) = work.pop() {
                let i = prog.instr(pc);
                let data_reg = store_data_reg(i);
                for (reg, defs) in du.parents(pc) {
                    if Some(*reg) == data_reg {
                        continue;
                    }
                    for &d in defs {
                        if !body.contains(&d) {
                            continue; // live-in: provided by the fork snapshot
                        }
                        let di = prog.instr(d);
                        if di.is_fp_compute() || di.is_fp() {
                            // The CMP has no FP units: infeasible slice.
                            return None;
                        }
                        if di.is_store() {
                            // Value flows through loop-written memory; the
                            // CMP must not store, so the chase stops (the
                            // prefetch address may be stale — sound, since
                            // prefetching is speculative).
                            continue;
                        }
                        if slice.insert(d) {
                            work.push(d);
                        }
                    }
                }
            }
            Some(slice)
        };

        let mut seeds: BTreeSet<u32> = miss_loads.iter().copied().collect();
        for &pc in &body {
            if prog.instr(pc).is_control() {
                seeds.insert(pc);
            }
        }
        let mut slice = match chase(&seeds) {
            Some(s) => s,
            None => continue 'next_loop,
        };
        // Prune irrelevant forward branches to fixpoint.
        loop {
            let prunable = seeds.iter().copied().find(|&pc| {
                let i = prog.instr(pc);
                if !i.is_cond_branch() {
                    return false;
                }
                let Some(target) = i.target() else {
                    return false;
                };
                if target <= pc || !body.contains(&target) {
                    return false; // back edge or loop exit: keep
                }
                // Forward in-loop branch: prunable when the skipped region
                // holds no other slice member.
                !slice.iter().any(|&s| s != pc && s > pc && s < target)
            });
            match prunable {
                Some(pc) => {
                    seeds.remove(&pc);
                    slice = match chase(&seeds) {
                        Some(s) => s,
                        None => continue 'next_loop,
                    };
                }
                None => break,
            }
        }

        // Which miss loads feed other slice instructions (pointer chases)?
        let value_used = |pc: u32| du.children(pc).iter().any(|u| slice.contains(u));

        // Emit the thread program.
        let id = out.threads.len() as u32;
        let mut t = Program::new(format!("{}:cmas{}", prog.name, id));
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut fixups: Vec<(u32, u32)> = Vec::new();
        let mut latch_branches: Vec<u32> = Vec::new();

        for &pc in &body {
            map.insert(pc, t.len());
            if !slice.contains(&pc) {
                continue;
            }
            let i = *prog.instr(pc);
            let is_latch_last = l.latches.iter().any(|&lb| graph.blocks[lb].last() == pc);
            if is_latch_last {
                // Slip control before the back edge.
                t.push_annotated(
                    Instr::PutScq,
                    Annot {
                        cmas: true,
                        ..Annot::default()
                    },
                );
                latch_branches.push(pc);
            }
            match i {
                Instr::Halt => continue 'next_loop, // halt inside a loop: skip
                Instr::Load { base, off, .. } | Instr::LoadF { base, off, .. }
                    if prog.annot(pc).probable_miss && !value_used(pc) =>
                {
                    t.push_annotated(
                        Instr::Prefetch { base, off },
                        Annot {
                            cmas: true,
                            ..Annot::default()
                        },
                    );
                }
                _ => {
                    let at = t.push_annotated(
                        i,
                        Annot {
                            cmas: true,
                            ..Annot::default()
                        },
                    );
                    if let Some(target) = i.target() {
                        fixups.push((at, target));
                    }
                }
            }
        }
        let halt_pos = t.push(Instr::Halt);

        for (at, orig) in fixups {
            let nt = map.get(&orig).copied().unwrap_or(halt_pos);
            t.instr_mut(at).set_target(nt);
        }
        t.validate()?;

        out.sites.push(CmasSite {
            id,
            header_start,
            trigger_before,
            latch_branches,
            slice: slice.into_iter().collect(),
        });
        out.threads.push(CmasThread {
            id,
            prog: t,
            loop_header: header_start,
        });
    }

    Ok(out)
}

/// Applies trigger and slip-control annotations to a stream program.
///
/// `map[orig_pc]` is the stream index corresponding to each original
/// position (the identity map instruments the original binary itself, for
/// the CP+CMP model).
pub fn instrument(prog: &mut Program, map: &[u32], sites: &[CmasSite]) {
    let prog_len = prog.len();
    let emitted = |p: u32| -> bool {
        let here = map[p as usize];
        let next = if (p as usize + 1) < map.len() {
            map[p as usize + 1]
        } else {
            prog_len
        };
        here < next
    };

    for site in sites {
        // Trigger: walk back from the pre-header until a position that
        // emitted an instruction (without an existing trigger) is found.
        let mut p = site.trigger_before as i64;
        while p >= 0 {
            let pu = p as u32;
            if emitted(pu) && prog.annot(map[pu as usize]).trigger.is_none() {
                prog.annot_mut(map[pu as usize]).trigger = Some(site.id);
                break;
            }
            p -= 1;
        }

        // Slip control on the back-edge branches.
        for &lb in &site.latch_branches {
            if emitted(lb) {
                prog.annot_mut(map[lb as usize]).scq_get = true;
            }
        }

        // Mark slice membership for reporting.
        for &pc in &site.slice {
            if emitted(pc) {
                prog.annot_mut(map[pc as usize]).cmas = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::DefUse;
    use crate::dom::Loops;
    use crate::separate;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::Queue;

    /// Marks annotations the way `compile` would, then extracts.
    fn extract_from(src: &str, miss_pcs: &[u32]) -> (Program, Extraction) {
        let mut p = assemble("t", src).unwrap();
        let g = Cfg::build(&p);
        let du = DefUse::compute(&p, &g);
        let s = separate::separate(&p, &du);
        for pc in 0..p.len() {
            p.annot_mut(pc).stream = s.stream_of(pc);
        }
        for &pc in miss_pcs {
            p.annot_mut(pc).probable_miss = true;
        }
        let loops = Loops::find(&g);
        let e = extract(&p, &g, &loops, &du).unwrap();
        (p, e)
    }

    const STRIDE_LOOP: &str = r"
            li r1, 0x100000
            li r2, 1024
        loop:
            ld r3, 0(r1)       ; probable miss, value unused in slice
            add r4, r3, 1
            sd r4, 0x80000(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ";

    #[test]
    fn stride_loop_slices_to_prefetch() {
        let (_, e) = extract_from(STRIDE_LOOP, &[2]);
        assert_eq!(e.threads.len(), 1);
        let t = &e.threads[0].prog;
        // The miss load's value is not used by the slice → prefetch.
        assert!(t
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Prefetch { .. })));
        // Loop control survives: putscq + branch + induction update.
        assert!(t.instrs().iter().any(|i| matches!(i, Instr::PutScq)));
        assert!(t.instrs().iter().any(|i| matches!(i, Instr::Branch { .. })));
        // Stores never appear in a CMAS.
        assert!(!t.instrs().iter().any(|i| i.is_store()));
        // The slice is smaller than the loop body.
        assert!(t.len() < 7);
        t.validate().unwrap();
    }

    #[test]
    fn pointer_chase_keeps_load() {
        let (_, e) = extract_from(
            r"
            li r1, 0x100000
            li r2, 1000
        loop:
            ld r1, 0(r1)       ; pointer chase: value IS the next address
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[2],
        );
        assert_eq!(e.threads.len(), 1);
        let t = &e.threads[0].prog;
        // The chased load must stay a real load on the CMP.
        assert!(t.instrs().iter().any(|i| i.is_load()));
        assert!(!t
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Prefetch { .. })));
    }

    #[test]
    fn trigger_and_scq_instrumentation_identity_map() {
        let (mut p, e) = extract_from(STRIDE_LOOP, &[2]);
        let identity: Vec<u32> = (0..p.len()).collect();
        instrument(&mut p, &identity, &e.sites);
        // Trigger on the pre-header (pc 1, the li before the loop).
        assert_eq!(p.annot(1).trigger, Some(0));
        // scq_get on the back-edge branch (pc 7).
        assert!(p.annot(7).scq_get);
        // Slice members are flagged.
        assert!(p.annot(2).cmas);
    }

    #[test]
    fn fp_dependent_slice_is_skipped() {
        let (_, e) = extract_from(
            r"
            li r1, 0x100000
            li r2, 100
            cvt.d.l f1, r2
        loop:
            cvt.l.d r3, f1      ; fp-derived address inside the loop
            add r4, r1, r3
            ld r5, 0(r4)
            mul.d f1, f1, f1
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[5],
        );
        assert!(e.threads.is_empty(), "fp-dependent slice must be skipped");
    }

    #[test]
    fn irrelevant_guard_branch_is_pruned() {
        // A gather loop whose per-element work is guarded by a test on the
        // gathered value: the guard (and therefore the gathered load's
        // *value*) is irrelevant to the slice, so the load must become a
        // fire-and-forget prefetch and the guard must vanish.
        let (_, e) = extract_from(
            r"
            li r1, 0x100000
            li r2, 512
        loop:
            ld r3, 0(r1)        ; gathered value (probable miss)
            beq r3, r0, skip    ; guard: irrelevant to the address chain
            add r4, r3, 1
            sd r4, 0x80000(r1)
        skip:
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[2],
        );
        assert_eq!(e.threads.len(), 1);
        let t = &e.threads[0].prog;
        assert!(
            t.instrs()
                .iter()
                .any(|i| matches!(i, Instr::Prefetch { .. })),
            "guarded gather should become a prefetch:\n{t}"
        );
        assert!(
            !t.instrs().iter().any(|i| i.is_load()),
            "no blocking loads:\n{t}"
        );
        // Only the latch branch survives.
        let branches = t
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Branch { .. }))
            .count();
        assert_eq!(branches, 1, "guard branch must be pruned:\n{t}");
    }

    #[test]
    fn guard_protecting_slice_members_is_kept() {
        // Here the guard skips a load that itself feeds the address chain:
        // pruning it would change which addresses the slice computes, so
        // it must be kept.
        let (_, e) = extract_from(
            r"
            li r1, 0x100000
            li r2, 512
        loop:
            ld r3, 0(r1)        ; probable miss, feeds the guard
            beq r3, r0, skip
            ld r1, 8(r1)        ; alternate pointer step (in slice)
        skip:
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
            &[2],
        );
        assert_eq!(e.threads.len(), 1);
        let t = &e.threads[0].prog;
        let branches = t
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Branch { .. }))
            .count();
        assert_eq!(branches, 2, "guard must survive:\n{t}");
        // The guarded load feeds addresses: kept as a real CMP load.
        assert!(t.instrs().iter().any(|i| i.is_load()));
    }

    #[test]
    fn loads_outside_loops_are_ignored() {
        let (_, e) = extract_from("li r1, 0x1000\nld r2, 0(r1)\nhalt", &[1]);
        assert!(e.threads.is_empty());
    }

    #[test]
    fn back_edge_targets_remap_into_thread() {
        let (_, e) = extract_from(STRIDE_LOOP, &[2]);
        let t = &e.threads[0].prog;
        let br = t
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Branch { .. }))
            .unwrap() as u32;
        let target = t.instr(br).target().unwrap();
        assert!(target < br, "back edge must point into the thread body");
        // Exit path: falls through to the final halt.
        assert!(matches!(t.instr(t.len() - 1), Instr::Halt));
    }

    #[test]
    fn nested_loop_slices_innermost() {
        let (_, e) = extract_from(
            r"
            li r9, 4
        outer:
            li r1, 0x100000
            li r2, 256
        inner:
            ld r3, 0(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, inner
            sub r9, r9, 1
            bne r9, r0, outer
            halt
        ",
            &[3],
        );
        assert_eq!(e.threads.len(), 1);
        // The thread covers only the inner loop: no outer induction (r9).
        let t = &e.threads[0].prog;
        assert!(t.len() <= 6);
        assert_eq!(e.sites[0].header_start, 3);
        // Trigger just before the inner header — fires once per outer
        // iteration.
        assert_eq!(e.sites[0].trigger_before, 2);
        let _ = Queue::Scq;
    }
}
