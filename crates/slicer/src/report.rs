//! Human-readable reports of the compiler's decisions — the tooling behind
//! the paper's Figures 5-7 walkthroughs.

use crate::CompiledWorkload;
use hidisc_isa::annot::Stream;
use hidisc_isa::Instr;
use std::fmt::Write;

/// Summary statistics of a separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparationSummary {
    /// Instructions in the original binary.
    pub original: usize,
    /// Instructions assigned to the Computation Stream.
    pub computation: usize,
    /// Instructions assigned to the Access Stream.
    pub access: usize,
    /// Instructions in the emitted CS binary (incl. communication).
    pub cs_emitted: usize,
    /// Instructions in the emitted AS binary (incl. communication).
    pub as_emitted: usize,
    /// Communication instructions inserted (sends/receives/queue forms).
    pub comm_inserted: usize,
    /// Number of CMAS threads.
    pub cmas_threads: usize,
    /// Static probable-miss loads.
    pub probable_miss_loads: usize,
}

/// Computes the summary of a compiled workload.
pub fn summarize(w: &CompiledWorkload) -> SeparationSummary {
    let (computation, access) = w.original.stream_counts();
    let comm = |p: &hidisc_isa::Program| {
        p.instrs()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::SendI { .. }
                        | Instr::SendF { .. }
                        | Instr::RecvI { .. }
                        | Instr::RecvF { .. }
                        | Instr::LoadQ { .. }
                        | Instr::StoreQ { .. }
                        | Instr::CBranch { .. }
                )
            })
            .count()
    };
    SeparationSummary {
        original: w.original.len() as usize,
        computation,
        access,
        cs_emitted: w.cs.len() as usize,
        as_emitted: w.access.len() as usize,
        comm_inserted: comm(&w.cs) + comm(&w.access),
        cmas_threads: w.cmas.len(),
        probable_miss_loads: (0..w.original.len())
            .filter(|&pc| w.original.annot(pc).probable_miss)
            .count(),
    }
}

/// Renders a side-by-side separation report in the style of the paper's
/// Figure 6: each original instruction with its stream and its emitted
/// forms.
pub fn render(w: &CompiledWorkload) -> String {
    let mut out = String::new();
    let s = summarize(w);
    let _ = writeln!(out, "=== stream separation: {} ===", w.original.name);
    let _ = writeln!(
        out,
        "original {} instrs -> CS {} / AS {} (comm {}), {} CMAS thread(s), {} probable-miss load(s)",
        s.original, s.cs_emitted, s.as_emitted, s.comm_inserted, s.cmas_threads, s.probable_miss_loads
    );
    let _ = writeln!(out, "\n--- original (annotated) ---");
    for pc in 0..w.original.len() {
        let a = w.original.annot(pc);
        let tag = match a.stream {
            Stream::Computation => "CS",
            Stream::Access => "AS",
        };
        let mut marks = String::new();
        if a.probable_miss {
            marks.push_str(" miss");
        }
        if a.cmas {
            marks.push_str(" cmas");
        }
        if let Some(t) = a.trigger {
            let _ = write!(marks, " trigger({t})");
        }
        if a.scq_get {
            marks.push_str(" scq");
        }
        let _ = writeln!(
            out,
            "{pc:4}  [{tag}]{marks:<18} {}",
            hidisc_isa::encode::render_instr(w.original.instr(pc), &w.original)
        );
    }
    let _ = writeln!(out, "\n--- computation stream ---\n{}", w.cs);
    let _ = writeln!(out, "--- access stream ---\n{}", w.access);
    for t in &w.cmas {
        let _ = writeln!(
            out,
            "--- CMAS thread {} (loop @{}) ---\n{}",
            t.id, t.loop_header, t.prog
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerConfig, ExecEnv};
    use hidisc_isa::asm::assemble;
    use hidisc_isa::mem::Memory;

    fn compiled() -> CompiledWorkload {
        let p = assemble(
            "rep",
            r"
            li r1, 0x100000
            li r2, 1024
        loop:
            ld r3, 0(r1)
            add r4, r3, 1
            sd r4, 0x80000(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 1_000_000,
        };
        compile(&p, &env, &CompilerConfig::default()).unwrap()
    }

    #[test]
    fn summary_is_consistent() {
        let w = compiled();
        let s = summarize(&w);
        assert_eq!(s.original, 9);
        assert_eq!(s.computation + s.access, s.original);
        assert!(s.cmas_threads >= 1);
        assert!(s.probable_miss_loads >= 1);
        assert!(s.comm_inserted > 0);
    }

    #[test]
    fn render_mentions_all_sections() {
        let w = compiled();
        let r = render(&w);
        assert!(r.contains("stream separation"));
        assert!(r.contains("computation stream"));
        assert!(r.contains("access stream"));
        assert!(r.contains("CMAS thread"));
        assert!(r.contains("trigger("));
    }
}

#[cfg(test)]
mod lll1_tests {
    //! The paper's Figure 5-7 walk-through: Livermore Loop 1 (hydro
    //! fragment), `x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])`.

    use crate::{compile, CompilerConfig, ExecEnv};
    use hidisc_isa::annot::Stream;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::mem::Memory;
    use hidisc_isa::{Instr, Queue};

    fn lll1() -> crate::CompiledWorkload {
        // f10 = q, f11 = r, f12 = t are loop-invariant inputs seeded from
        // memory before the loop.
        let prog = assemble(
            "lll1",
            r"
            li  r1, 0x100000    ; x[]
            li  r2, 0x200000    ; y[]
            li  r3, 0x300000    ; z[]
            li  r4, 2048        ; n
            l.d f10, 0x400000(r0)  ; q
            l.d f11, 0x400008(r0)  ; r
            l.d f12, 0x400010(r0)  ; t
            li  r5, 0           ; k
        loop:
            sll r6, r5, 3
            add r7, r3, r6
            l.d f1, 80(r7)      ; z[k+10]
            l.d f2, 88(r7)      ; z[k+11]
            mul.d f3, f11, f1   ; r*z[k+10]
            mul.d f4, f12, f2   ; t*z[k+11]
            add.d f3, f3, f4
            add r8, r2, r6
            l.d f5, 0(r8)       ; y[k]
            mul.d f6, f5, f3
            add.d f6, f6, f10   ; q + ...
            add r9, r1, r6
            s.d f6, 0(r9)       ; x[k]
            add r5, r5, 1
            bne r5, r4, loop
            halt
        ",
        )
        .unwrap();
        let mut mem = Memory::new();
        mem.write_f64(0x400000, 1.5).unwrap();
        mem.write_f64(0x400008, 0.25).unwrap();
        mem.write_f64(0x400010, 0.125).unwrap();
        for k in 0..2060u64 {
            mem.write_f64(0x200000 + 8 * k, (k % 9) as f64).unwrap();
            mem.write_f64(0x300000 + 8 * k, (k % 7) as f64).unwrap();
        }
        let env = ExecEnv {
            regs: vec![],
            mem,
            max_steps: 10_000_000,
        };
        compile(&prog, &env, &CompilerConfig::default()).unwrap()
    }

    #[test]
    fn figure5_separation_structure() {
        let w = lll1();
        // All FP computation in the CS; all loads/stores/control in the AS
        // (the shaded box of Figure 5).
        for pc in 0..w.original.len() {
            let i = w.original.instr(pc);
            if i.is_fp_compute() {
                assert_eq!(w.original.annot(pc).stream, Stream::Computation, "pc {pc}");
            }
            if i.is_mem() || i.is_control() {
                assert_eq!(w.original.annot(pc).stream, Stream::Access, "pc {pc}");
            }
        }
    }

    #[test]
    fn figure6_queue_forms() {
        let w = lll1();
        let count = |p: &hidisc_isa::Program, f: &dyn Fn(&Instr) -> bool| {
            p.instrs().iter().filter(|i| f(i)).count()
        };
        // The three in-loop FP loads fuse to `l.d $LDQ` (values consumed
        // only by the CS), exactly as in Figure 6.
        assert!(
            count(&w.access, &|i| matches!(
                i,
                Instr::LoadQ { q: Queue::Ldq, .. }
            )) >= 3,
            "loop loads must fuse to l.q:\n{}",
            w.access
        );
        // The x[k] store takes its data from the SDQ (`s.d $SDQ`).
        assert!(
            count(&w.access, &|i| matches!(
                i,
                Instr::StoreQ { q: Queue::Sdq, .. }
            )) >= 1
        );
        // The CS receives and sends correspondingly.
        assert!(count(&w.cs, &|i| matches!(i, Instr::RecvF { q: Queue::Ldq, .. })) >= 3);
        assert!(count(&w.cs, &|i| matches!(i, Instr::SendF { q: Queue::Sdq, .. })) >= 1);
        // No FP computation leaked into the AS.
        assert_eq!(count(&w.access, &|i| i.is_fp_compute()), 0);
    }

    #[test]
    fn figure7_cmas_prefetches_the_z_stream() {
        let w = lll1();
        assert!(
            !w.cmas.is_empty(),
            "lll1's streaming loads must yield a CMAS"
        );
        let t = &w.cmas[0].prog;
        // Sequential FP loads with CS-only consumers become prefetches.
        assert!(
            t.instrs()
                .iter()
                .any(|i| matches!(i, Instr::Prefetch { .. })),
            "{t}"
        );
        assert!(!t.instrs().iter().any(|i| i.is_fp()), "{t}");
        // Decoupled execution still matches the sequential semantics.
        let env = ExecEnv {
            regs: vec![],
            mem: {
                let mut mem = Memory::new();
                mem.write_f64(0x400000, 1.5).unwrap();
                mem.write_f64(0x400008, 0.25).unwrap();
                mem.write_f64(0x400010, 0.125).unwrap();
                for k in 0..2060u64 {
                    mem.write_f64(0x200000 + 8 * k, (k % 9) as f64).unwrap();
                    mem.write_f64(0x300000 + 8 * k, (k % 7) as f64).unwrap();
                }
                mem
            },
            max_steps: 10_000_000,
        };
        let _ = env; // equivalence is covered by the core crate's funcval tests
    }
}
