//! Reaching definitions and def-use chains (instruction granularity).
//!
//! This is the register-dependence information the backward-chasing slicer
//! walks: for every instruction operand, which instructions may have
//! produced it, and for every definition, which instructions may consume
//! it.

use crate::cfg::Cfg;
use hidisc_isa::instr::RegRef;
use hidisc_isa::Program;

/// Dense id for a register reference (int 0..32, fp 32..64).
fn reg_id(r: RegRef) -> usize {
    match r {
        RegRef::Int(r) => r.index(),
        RegRef::Fp(r) => 32 + r.index(),
    }
}

const NUM_REGS: usize = 64;

/// A set of instruction indices as a bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InstrSet {
    words: Vec<u64>,
}

impl InstrSet {
    fn new(n: usize) -> InstrSet {
        InstrSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    fn insert(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }
    fn remove(&mut self, i: u32) {
        self.words[i as usize / 64] &= !(1 << (i % 64));
    }
    fn union_with(&mut self, o: &InstrSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&o.words) {
            let n = *a | b;
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        changed
    }
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| (w * 64 + b) as u32)
        })
    }
}

/// Def-use information over a program.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// `parents[pc]` — for each source-operand slot of instruction `pc`,
    /// the set of instructions whose definition may reach that use.
    parents: Vec<Vec<(RegRef, Vec<u32>)>>,
    /// `children[pc]` — the instructions that may use the value defined by
    /// `pc`.
    children: Vec<Vec<u32>>,
}

impl DefUse {
    /// Computes reaching definitions over `cfg` and derives instruction
    /// def-use chains.
    pub fn compute(prog: &Program, cfg: &Cfg) -> DefUse {
        let n = prog.len() as usize;

        // Per-register definition sites.
        let mut defs_of_reg: Vec<Vec<u32>> = vec![vec![]; NUM_REGS];
        for pc in 0..prog.len() {
            if let Some(d) = prog.instr(pc).def() {
                defs_of_reg[reg_id(d)].push(pc);
            }
        }

        // Block-level GEN/KILL.
        let nb = cfg.len();
        let mut gen = vec![InstrSet::new(n); nb];
        let mut kill = vec![InstrSet::new(n); nb];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for pc in blk.range() {
                if let Some(d) = prog.instr(pc).def() {
                    for &other in &defs_of_reg[reg_id(d)] {
                        gen[b].remove(other);
                        kill[b].insert(other);
                    }
                    gen[b].insert(pc);
                    kill[b].remove(pc);
                }
            }
        }

        // Iterate IN/OUT to fixpoint.
        let mut r#in = vec![InstrSet::new(n); nb];
        let mut out = vec![InstrSet::new(n); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut newin = InstrSet::new(n);
                for &p in &cfg.blocks[b].preds {
                    newin.union_with(&out[p]);
                }
                r#in[b] = newin;
                let mut newout = r#in[b].clone();
                for k in kill[b].iter() {
                    newout.remove(k);
                }
                newout.union_with(&gen[b]);
                if newout != out[b] {
                    out[b] = newout;
                    changed = true;
                }
            }
        }

        // Walk blocks to resolve each use against the current reaching set.
        let mut parents: Vec<Vec<(RegRef, Vec<u32>)>> = vec![vec![]; n];
        let mut children: Vec<Vec<u32>> = vec![vec![]; n];
        // current[reg] = defs reaching this point, maintained per block.
        for (b, blk) in cfg.blocks.iter().enumerate() {
            let mut current: Vec<Vec<u32>> = vec![vec![]; NUM_REGS];
            for (r, defs) in current.iter_mut().enumerate() {
                for d in r#in[b].iter() {
                    if prog.instr(d).def().map(reg_id) == Some(r) {
                        defs.push(d);
                    }
                }
            }
            for pc in blk.range() {
                let instr = prog.instr(pc);
                for u in instr.uses().into_iter().flatten() {
                    let ds = current[reg_id(u)].clone();
                    for &d in &ds {
                        children[d as usize].push(pc);
                    }
                    parents[pc as usize].push((u, ds));
                }
                if let Some(d) = instr.def() {
                    current[reg_id(d)] = vec![pc];
                }
            }
        }
        for c in &mut children {
            c.sort_unstable();
            c.dedup();
        }

        DefUse { parents, children }
    }

    /// The reaching definitions of each source operand of `pc`:
    /// `(register, defining instructions)`.
    pub fn parents(&self, pc: u32) -> &[(RegRef, Vec<u32>)] {
        &self.parents[pc as usize]
    }

    /// All definitions (instructions) feeding any operand of `pc`.
    pub fn all_parents(&self, pc: u32) -> impl Iterator<Item = u32> + '_ {
        self.parents[pc as usize]
            .iter()
            .flat_map(|(_, ds)| ds.iter().copied())
    }

    /// The instructions that may consume the value defined by `pc`.
    pub fn children(&self, pc: u32) -> &[u32] {
        &self.children[pc as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    fn du(src: &str) -> (Program, DefUse) {
        let p = assemble("t", src).unwrap();
        let c = Cfg::build(&p);
        let d = DefUse::compute(&p, &c);
        (p, d)
    }

    #[test]
    fn straight_line_chains() {
        let (_, d) = du(r"
            li r1, 1
            li r2, 2
            add r3, r1, r2
            add r4, r3, r3
            halt
        ");
        assert_eq!(d.children(0), &[2]);
        assert_eq!(d.children(1), &[2]);
        assert_eq!(d.children(2), &[3]);
        let parents: Vec<u32> = d.all_parents(2).collect();
        assert_eq!(parents, vec![0, 1]);
        // Both operand slots of pc 3 resolve to pc 2.
        assert_eq!(d.parents(3).len(), 2);
        assert!(d.parents(3).iter().all(|(_, ds)| ds == &vec![2]));
    }

    #[test]
    fn redefinition_kills() {
        let (_, d) = du(r"
            li r1, 1
            li r1, 2
            add r2, r1, r1
            halt
        ");
        assert_eq!(d.children(0), &[] as &[u32]);
        assert_eq!(d.children(1), &[2]);
    }

    #[test]
    fn loop_carried_dependence() {
        let (_, d) = du(r"
            li r1, 10
        loop:
            sub r1, r1, 1
            bne r1, r0, loop
            halt
        ");
        // The sub at pc 1 uses r1 defined by pc 0 (first iteration) and by
        // itself (subsequent iterations).
        let (_, ds) = &d.parents(1)[0];
        let mut ds = ds.clone();
        ds.sort_unstable();
        assert_eq!(ds, vec![0, 1]);
        // The branch uses r1 from the sub only (the sub kills pc 0's def
        // within the block).
        let (_, bds) = &d.parents(2)[0];
        assert_eq!(bds, &vec![1]);
    }

    #[test]
    fn merge_point_sees_both_defs() {
        let (_, d) = du(r"
            beq r9, r0, else
            li r1, 1
            j join
        else:
            li r1, 2
        join:
            add r2, r1, r1
            halt
        ");
        let (_, ds) = &d.parents(4)[0];
        let mut ds = ds.clone();
        ds.sort_unstable();
        assert_eq!(ds, vec![1, 3]);
    }

    #[test]
    fn fp_and_int_registers_are_distinct() {
        let (_, d) = du(r"
            li r1, 1
            cvt.d.l f1, r1
            add.d f2, f1, f1
            halt
        ");
        assert_eq!(d.children(0), &[1]);
        assert_eq!(d.children(1), &[2]);
        // f1's use at pc 2 resolves to pc 1, not pc 0.
        assert!(d.parents(2).iter().all(|(_, ds)| ds == &vec![1]));
    }

    #[test]
    fn zero_register_has_no_deps() {
        let (_, d) = du("add r1, r0, r0\nsd r1, 0(r0)\nhalt");
        assert!(d.parents(0).is_empty());
        // the store's base r0 contributes nothing; src r1 ← pc 0
        let ps: Vec<u32> = d.all_parents(1).collect();
        assert_eq!(ps, vec![0]);
    }
}
