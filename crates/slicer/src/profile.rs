//! Cache-access profiling: finds probable cache-miss instructions.
//!
//! The paper uses a cache access profile of the binary to decide which
//! loads seed the Cache Miss Access Slice. We do the same: a functional
//! run of the workload (same data image the timing runs will use) against
//! the Table-1 L1 geometry, recording per-static-instruction demand
//! accesses and misses.

use crate::ExecEnv;
use hidisc_isa::interp::{Interp, MemKind};
use hidisc_isa::{Program, Result};
use hidisc_mem::cache::Cache;
use hidisc_mem::CacheConfig;
use std::collections::HashMap;

/// Per-static-instruction access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Demand accesses executed by this instruction.
    pub accesses: u64,
    /// ... that missed in the profiled L1.
    pub misses: u64,
}

impl PcProfile {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The cache-access profile of one workload.
#[derive(Debug, Clone, Default)]
pub struct MissProfile {
    per_pc: HashMap<u32, PcProfile>,
    /// Total demand accesses.
    pub total_accesses: u64,
    /// Total L1 misses in the profiling run.
    pub total_misses: u64,
    /// Dynamic instructions executed by the profiling run (the workload's
    /// useful-work measure).
    pub dyn_instrs: u64,
}

impl MissProfile {
    /// The counters for instruction `pc`.
    pub fn at(&self, pc: u32) -> PcProfile {
        self.per_pc.get(&pc).copied().unwrap_or_default()
    }

    /// The probable-cache-miss predicate used for CMAS seeding.
    pub fn is_probable_miss(&self, pc: u32, rate_threshold: f64, min_misses: u64) -> bool {
        let p = self.at(pc);
        p.misses >= min_misses && p.miss_rate() >= rate_threshold
    }

    /// Instructions sorted by miss count, descending (for reports).
    pub fn hottest(&self) -> Vec<(u32, PcProfile)> {
        let mut v: Vec<(u32, PcProfile)> = self.per_pc.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(pc, p)| (std::cmp::Reverse(p.misses), *pc));
        v
    }
}

/// Runs the profiling pass over `prog` under `env`.
pub fn profile(prog: &Program, env: &ExecEnv) -> Result<MissProfile> {
    let mut interp = Interp::new(prog, env.mem.clone());
    for &(r, v) in &env.regs {
        interp.set_reg(r, v);
    }
    let mut l1 = Cache::new(CacheConfig::paper_l1());
    let mut per_pc: HashMap<u32, PcProfile> = HashMap::new();
    let max = if env.max_steps == 0 {
        u64::MAX
    } else {
        env.max_steps
    };

    let stats = interp.run_with_hook(max, &mut |e| {
        if e.kind == MemKind::Prefetch {
            return;
        }
        let probe = l1.access(e.addr, e.kind == MemKind::Store, false);
        let p = per_pc.entry(e.pc).or_default();
        p.accesses += 1;
        if !probe.hit {
            p.misses += 1;
        }
    })?;

    let cs = l1.stats();
    Ok(MissProfile {
        per_pc,
        total_accesses: cs.demand_accesses,
        total_misses: cs.demand_misses,
        dyn_instrs: stats.instrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::mem::Memory;
    use hidisc_isa::IntReg;

    #[test]
    fn strided_scan_over_large_array_misses() {
        // Walk 64 KiB with a 64-byte stride: every other access maps to a
        // new 32-byte L1 block → high miss rate on the load.
        let prog = assemble(
            "t",
            r"
            li r1, 0x100000
            li r2, 1024
        loop:
            ld r3, 0(r1)
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 1_000_000,
        };
        let p = profile(&prog, &env).unwrap();
        let load_pc = 2;
        let lp = p.at(load_pc);
        assert_eq!(lp.accesses, 1024);
        assert!(lp.miss_rate() > 0.9, "rate = {}", lp.miss_rate());
        assert!(p.is_probable_miss(load_pc, 0.05, 16));
        assert_eq!(p.dyn_instrs, 2 + 4 * 1024 + 1);
    }

    #[test]
    fn hot_small_array_hits() {
        // Repeatedly scan 256 bytes: after the cold pass everything hits.
        let prog = assemble(
            "t",
            r"
            li r4, 64
        outer:
            li r1, 0x100000
            li r2, 32
        loop:
            ld r3, 0(r1)
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            sub r4, r4, 1
            bne r4, r0, outer
            halt
        ",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 1_000_000,
        };
        let p = profile(&prog, &env).unwrap();
        let lp = p.at(3);
        assert_eq!(lp.accesses, 64 * 32);
        assert!(lp.miss_rate() < 0.01, "rate = {}", lp.miss_rate());
        assert!(!p.is_probable_miss(3, 0.05, 16));
    }

    #[test]
    fn initial_registers_respected() {
        let prog = assemble("t", "ld r2, 0(r1)\nhalt").unwrap();
        let mut mem = Memory::new();
        mem.write_i64(0x4000, 7).unwrap();
        let env = ExecEnv {
            regs: vec![(IntReg::new(1), 0x4000)],
            mem,
            max_steps: 100,
        };
        let p = profile(&prog, &env).unwrap();
        assert_eq!(p.at(0).accesses, 1);
        assert_eq!(p.total_accesses, 1);
    }

    #[test]
    fn hottest_sorted_by_misses() {
        let prog = assemble(
            "t",
            r"
            li r1, 0x100000
            li r2, 128
        loop:
            ld r3, 0(r1)      ; always new block (stride 64): misses
            ld r4, 0x40000(r0); same block every time: one miss
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let env = ExecEnv {
            regs: vec![],
            mem: Memory::new(),
            max_steps: 1_000_000,
        };
        let p = profile(&prog, &env).unwrap();
        let hot = p.hottest();
        assert_eq!(hot[0].0, 2);
        assert!(hot[0].1.misses > hot[1].1.misses);
    }
}
