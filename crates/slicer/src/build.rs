//! Stream construction: emits the Computation Stream and Access Stream
//! binaries with communication instructions inserted (Figure 6 of the
//! paper).
//!
//! Both streams replicate the control-flow skeleton of the original
//! program: every conditional branch appears in the Access Stream as a real
//! branch that pushes its outcome token to the Control Queue, and in the
//! Computation Stream as a consume-branch (`cbr`) popping that token —
//! the generalisation of the paper's End-Of-Data token.
//!
//! Cross-stream data uses three disciplines:
//!
//! * **AS → CS (LDQ)**: an Access-Stream definition consumed by the
//!   Computation Stream pushes its value to the LDQ (fused into the load as
//!   `l.q` when the value has no Access-Stream consumers, exactly the
//!   paper's `l.d $LDQ` form); the Computation Stream holds a `recv` at the
//!   definition's program point. One push, one pop, on every path.
//! * **CS → AS store data (SDQ)**: a store whose data is produced entirely
//!   by the Computation Stream becomes `s.q` (data popped from the SDQ by
//!   the AP's load/store queue — the SAQ pairing), and the Computation
//!   Stream sends the data register at the store's program point.
//! * **CS → AS other operands (CDQ)**: addresses or branch inputs that
//!   depend on FP computation are received at the definition's program
//!   point on the AP side; these dispatch-blocking pops are the
//!   loss-of-decoupling dependences the paper discusses.
//!
//! `li` constants are rematerialised into the consuming stream instead of
//! communicated.

use crate::dataflow::DefUse;
use crate::separate::{store_data_reg, Streams};
use hidisc_isa::annot::{Annot, Stream};
use hidisc_isa::instr::RegRef;
use hidisc_isa::{Instr, IsaError, Program, Queue, Result};
use std::collections::HashSet;

/// Result of stream construction.
#[derive(Debug, Clone)]
pub struct BuiltStreams {
    /// The Computation Stream binary.
    pub cs: Program,
    /// The Access Stream binary.
    pub access: Program,
    /// `cs_map[orig_pc]` = CS index corresponding to original position.
    pub cs_map: Vec<u32>,
    /// `access_map[orig_pc]` = AS index corresponding to original position.
    pub access_map: Vec<u32>,
}

/// Communication plan derived from the def-use chains.
#[derive(Debug, Default)]
struct CommPlan {
    /// AS definitions whose value crosses to the CS (LDQ).
    ldq_defs: HashSet<u32>,
    /// CS definitions whose value crosses to the AS via the CDQ.
    cdq_defs: HashSet<u32>,
    /// Stores converted to `s.q` (data via SDQ).
    sdq_stores: HashSet<u32>,
    /// `li` definitions rematerialised into the opposite stream.
    remat: HashSet<u32>,
}

fn is_li(prog: &Program, pc: u32) -> bool {
    matches!(prog.instr(pc), Instr::Li { .. })
}

/// Decides the communication plan.
fn plan(prog: &Program, du: &DefUse, streams: &Streams) -> CommPlan {
    let mut p = CommPlan::default();

    // AS → CS.
    for d in 0..prog.len() {
        if streams.stream_of(d) != Stream::Access || prog.instr(d).def().is_none() {
            continue;
        }
        let crosses = du
            .children(d)
            .iter()
            .any(|&u| streams.stream_of(u) == Stream::Computation);
        if crosses {
            if is_li(prog, d) {
                p.remat.insert(d);
            } else {
                p.ldq_defs.insert(d);
            }
        }
    }

    // CS → AS: candidate SDQ stores (all data definitions in CS).
    let mut sdq_candidates: HashSet<u32> = HashSet::new();
    for u in 0..prog.len() {
        let i = prog.instr(u);
        if !i.is_store() || streams.stream_of(u) != Stream::Access {
            continue;
        }
        let Some(data) = store_data_reg(i) else {
            continue;
        };
        let defs: Vec<u32> = du
            .parents(u)
            .iter()
            .filter(|(r, _)| *r == data)
            .flat_map(|(_, ds)| ds.iter().copied())
            .collect();
        // Any all-CS mix of definitions qualifies (including constants):
        // the SDQ send reads the register at the *store's* program point
        // in the CS, which is correct regardless of which definition
        // reached it.
        if !defs.is_empty()
            && defs
                .iter()
                .all(|&d| streams.stream_of(d) == Stream::Computation)
        {
            sdq_candidates.insert(u);
        }
    }

    // CS defs with AS uses: SDQ when every AS use is covered by a candidate
    // store's data operand; otherwise CDQ (or remat for constants).
    // Candidates whose data definitions fall back to CDQ must revert, which
    // can cascade — iterate to fixpoint.
    loop {
        let mut changed = false;
        for d in 0..prog.len() {
            if streams.stream_of(d) != Stream::Computation
                || prog.instr(d).def().is_none()
                || p.cdq_defs.contains(&d)
                || p.remat.contains(&d)
            {
                continue;
            }
            let dreg = prog.instr(d).def().unwrap();
            let as_uses: Vec<u32> = du
                .children(d)
                .iter()
                .copied()
                .filter(|&u| streams.stream_of(u) == Stream::Access)
                .collect();
            if as_uses.is_empty() {
                continue;
            }
            let all_sdq = as_uses.iter().all(|&u| {
                sdq_candidates.contains(&u) && store_data_reg(prog.instr(u)) == Some(dreg)
            });
            if !all_sdq {
                if is_li(prog, d) {
                    p.remat.insert(d);
                } else {
                    p.cdq_defs.insert(d);
                }
                changed = true;
            }
        }
        // Revert candidates with any CDQ/remat data definition (those
        // registers arrive in the AS register file instead).
        let before = sdq_candidates.len();
        sdq_candidates.retain(|&u| {
            let data = store_data_reg(prog.instr(u)).unwrap();
            du.parents(u)
                .iter()
                .filter(|(r, _)| *r == data)
                .flat_map(|(_, ds)| ds.iter())
                .all(|d| !p.cdq_defs.contains(d) && !p.remat.contains(d))
        });
        if sdq_candidates.len() != before {
            changed = true;
        }
        if !changed {
            break;
        }
    }
    p.sdq_stores = sdq_candidates;
    p
}

/// Emits a send of register `r` to queue `q`.
fn send_of(r: RegRef, q: Queue) -> Instr {
    match r {
        RegRef::Int(r) => Instr::SendI { q, src: r },
        RegRef::Fp(r) => Instr::SendF { q, src: r },
    }
}

/// Emits a receive into register `r` from queue `q`.
fn recv_of(r: RegRef, q: Queue) -> Instr {
    match r {
        RegRef::Int(r) => Instr::RecvI { q, dst: r },
        RegRef::Fp(r) => Instr::RecvF { q, dst: r },
    }
}

/// Builds the CS and AS binaries from the annotated original program.
pub fn build_streams(prog: &Program, du: &DefUse, streams: &Streams) -> Result<BuiltStreams> {
    let comm = plan(prog, du, streams);
    let n = prog.len();

    let mut cs = Program::new(format!("{}:cs", prog.name));
    let mut access = Program::new(format!("{}:as", prog.name));
    let mut cs_map = vec![0u32; n as usize];
    let mut access_map = vec![0u32; n as usize];
    // (stream_pos, orig_target) fixups per stream.
    let mut cs_fix: Vec<(u32, u32)> = Vec::new();
    let mut as_fix: Vec<(u32, u32)> = Vec::new();

    for pc in 0..n {
        let i = *prog.instr(pc);
        let s = streams.stream_of(pc);
        cs_map[pc as usize] = cs.len();
        access_map[pc as usize] = access.len();

        match i {
            Instr::Branch { target, .. } => {
                // AS: the real branch, pushing its outcome token.
                let at = access.push_annotated(
                    i,
                    Annot {
                        stream: Stream::Access,
                        push_cq: true,
                        ..Annot::default()
                    },
                );
                as_fix.push((at, target));
                // CS: the consume-branch.
                let ct = cs.push_annotated(
                    Instr::CBranch { target: u32::MAX },
                    Annot::in_stream(Stream::Computation),
                );
                cs_fix.push((ct, target));
            }
            Instr::Jump { target } => {
                let at = access.push_annotated(i, Annot::in_stream(Stream::Access));
                as_fix.push((at, target));
                let ct = cs.push_annotated(i, Annot::in_stream(Stream::Computation));
                cs_fix.push((ct, target));
            }
            Instr::Halt => {
                access.push_annotated(i, Annot::in_stream(Stream::Access));
                cs.push_annotated(i, Annot::in_stream(Stream::Computation));
            }
            Instr::CBranch { .. } => {
                return Err(IsaError::Exec {
                    pc,
                    msg: "input to the separator already contains consume-branches".into(),
                })
            }
            _ if s == Stream::Access => {
                let def = i.def();
                let in_ldq = comm.ldq_defs.contains(&pc);
                let has_as_use = def.is_some()
                    && du
                        .children(pc)
                        .iter()
                        .any(|&u| streams.stream_of(u) == Stream::Access);

                // AS side.
                match i {
                    Instr::Load {
                        dst: _,
                        base,
                        off,
                        width,
                        signed,
                    } if in_ldq && !has_as_use => {
                        // Fused load-to-queue (the paper's `l.d $LDQ`).
                        access.push_annotated(
                            Instr::LoadQ {
                                q: Queue::Ldq,
                                base,
                                off,
                                width,
                                signed,
                            },
                            Annot::in_stream(Stream::Access),
                        );
                    }
                    Instr::LoadF { dst: _, base, off } if in_ldq && !has_as_use => {
                        access.push_annotated(
                            Instr::LoadQ {
                                q: Queue::Ldq,
                                base,
                                off,
                                width: hidisc_isa::Width::D,
                                signed: true,
                            },
                            Annot::in_stream(Stream::Access),
                        );
                    }
                    Instr::Store {
                        base, off, width, ..
                    } if comm.sdq_stores.contains(&pc) => {
                        access.push_annotated(
                            Instr::StoreQ {
                                q: Queue::Sdq,
                                base,
                                off,
                                width,
                            },
                            Annot::in_stream(Stream::Access),
                        );
                    }
                    Instr::StoreF { base, off, .. } if comm.sdq_stores.contains(&pc) => {
                        access.push_annotated(
                            Instr::StoreQ {
                                q: Queue::Sdq,
                                base,
                                off,
                                width: hidisc_isa::Width::D,
                            },
                            Annot::in_stream(Stream::Access),
                        );
                    }
                    _ => {
                        access.push_annotated(i, Annot::in_stream(Stream::Access));
                        if in_ldq {
                            access.push_annotated(
                                send_of(def.expect("ldq def has a register"), Queue::Ldq),
                                Annot::in_stream(Stream::Access),
                            );
                        }
                    }
                }

                // CS side: the receive (or rematerialised constant / SDQ
                // send at a store position).
                if in_ldq {
                    cs.push_annotated(
                        recv_of(def.expect("ldq def has a register"), Queue::Ldq),
                        Annot::in_stream(Stream::Computation),
                    );
                } else if comm.remat.contains(&pc) {
                    cs.push_annotated(i, Annot::in_stream(Stream::Computation));
                } else if comm.sdq_stores.contains(&pc) {
                    let data = store_data_reg(&i).expect("sdq store has data reg");
                    cs.push_annotated(
                        send_of(data, Queue::Sdq),
                        Annot::in_stream(Stream::Computation),
                    );
                }
            }
            _ => {
                // Computation-stream instruction.
                cs.push_annotated(i, Annot::in_stream(Stream::Computation));
                if comm.cdq_defs.contains(&pc) {
                    cs.push_annotated(
                        send_of(i.def().expect("cdq def has a register"), Queue::Cdq),
                        Annot::in_stream(Stream::Computation),
                    );
                    access.push_annotated(
                        recv_of(i.def().unwrap(), Queue::Cdq),
                        Annot::in_stream(Stream::Access),
                    );
                } else if comm.remat.contains(&pc)
                    && du
                        .children(pc)
                        .iter()
                        .any(|&u| streams.stream_of(u) == Stream::Access)
                {
                    access.push_annotated(i, Annot::in_stream(Stream::Access));
                }
            }
        }
    }

    // Retarget control instructions.
    for (at, orig) in as_fix {
        let t = access_map[orig as usize];
        access.instr_mut(at).set_target(t);
    }
    for (ct, orig) in cs_fix {
        let t = cs_map[orig as usize];
        cs.instr_mut(ct).set_target(t);
    }

    // Carry labels over (for readable disassembly).
    for l in prog.labels() {
        let at = if (l.at as usize) < access_map.len() {
            access_map[l.at as usize]
        } else {
            access.len()
        };
        let _ = access.add_label(l.name.clone(), at);
        let ct = if (l.at as usize) < cs_map.len() {
            cs_map[l.at as usize]
        } else {
            cs.len()
        };
        let _ = cs.add_label(l.name.clone(), ct);
    }

    Ok(BuiltStreams {
        cs,
        access,
        cs_map,
        access_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::separate::separate;
    use hidisc_isa::asm::assemble;

    fn build(src: &str) -> (Program, BuiltStreams) {
        let p = assemble("t", src).unwrap();
        let c = Cfg::build(&p);
        let du = DefUse::compute(&p, &c);
        let s = separate(&p, &du);
        let b = build_streams(&p, &du, &s).unwrap();
        b.cs.validate().unwrap();
        b.access.validate().unwrap();
        (p, b)
    }

    fn count(p: &Program, f: impl Fn(&Instr) -> bool) -> usize {
        p.instrs().iter().filter(|i| f(i)).count()
    }

    #[test]
    fn convolution_like_kernel_separates() {
        // Inner loop of a discrete convolution (the paper's Figure 3).
        let (_, b) = build(
            r"
            li  r1, 0x1000      ; x[]
            li  r2, 0x2000      ; h[]
            li  r3, 16          ; count
            li  r4, 0           ; j
        loop:
            sll r5, r4, 3
            add r6, r1, r5
            l.d f1, 0(r6)       ; x[j]
            add r7, r2, r5
            l.d f2, 0(r7)       ; h[j]
            mul.d f3, f1, f2
            add.d f4, f4, f3    ; y += x*h
            add r4, r4, 1
            bne r4, r3, loop
            s.d f4, 0x3000(r0)
            halt
        ",
        );
        // Loads fuse into l.q in the AS; CS receives them.
        assert_eq!(count(&b.access, |i| matches!(i, Instr::LoadQ { .. })), 2);
        assert_eq!(count(&b.cs, |i| matches!(i, Instr::RecvF { .. })), 2);
        // The FP store gets its data from the SDQ.
        assert_eq!(count(&b.access, |i| matches!(i, Instr::StoreQ { .. })), 1);
        assert_eq!(
            count(&b.cs, |i| matches!(i, Instr::SendF { q: Queue::Sdq, .. })),
            1
        );
        // Branch duplicated: real branch in AS (pushing CQ), cbr in CS.
        assert_eq!(count(&b.access, |i| matches!(i, Instr::Branch { .. })), 1);
        assert_eq!(count(&b.cs, |i| matches!(i, Instr::CBranch { .. })), 1);
        // No FP compute in the AS.
        assert_eq!(count(&b.access, |i| i.is_fp_compute()), 0);
    }

    #[test]
    fn branch_targets_remap_correctly() {
        let (_, b) = build(
            r"
            li r1, 5
        loop:
            sub r1, r1, 1
            bne r1, r0, loop
            halt
        ",
        );
        let branch_pos = b
            .access
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Branch { .. }))
            .unwrap() as u32;
        let t = b.access.instr(branch_pos).target().unwrap();
        // Target must point at the AS copy of the loop body.
        assert!(t < branch_pos);
        let cbr_pos =
            b.cs.instrs()
                .iter()
                .position(|i| matches!(i, Instr::CBranch { .. }))
                .unwrap() as u32;
        let ct = b.cs.instr(cbr_pos).target().unwrap();
        assert!(ct <= cbr_pos);
    }

    #[test]
    fn cq_pushes_match_cbranches() {
        let (_, b) = build(
            r"
            li r1, 5
        a:
            sub r1, r1, 1
            beq r1, r0, done
            j a
        done:
            halt
        ",
        );
        let pushes = (0..b.access.len())
            .filter(|&pc| b.access.annot(pc).push_cq)
            .count();
        let cbrs = count(&b.cs, |i| matches!(i, Instr::CBranch { .. }));
        assert_eq!(pushes, cbrs);
        assert_eq!(pushes, 1); // only the conditional branch; jumps are replicated
        assert_eq!(count(&b.cs, |i| matches!(i, Instr::Jump { .. })), 1);
    }

    #[test]
    fn li_constants_rematerialize_not_communicate() {
        let (_, b) = build(
            r"
            li r1, 0x1000
            li r2, 7
            ld r3, 0(r1)
            add r4, r3, r2
            sd r4, 8(r1)
            halt
        ",
        );
        // r2 is a constant used by CS only... and r1 feeds AS; the CS use
        // of r2 (add) needs it: li r2 stays CS. The store data r4 is CS →
        // SDQ. No CDQ traffic should exist for constants.
        assert_eq!(
            count(&b.cs, |i| matches!(i, Instr::RecvI { q: Queue::Cdq, .. })),
            0
        );
        assert_eq!(
            count(&b.access, |i| matches!(
                i,
                Instr::RecvI { q: Queue::Cdq, .. }
            )),
            0
        );
        assert_eq!(count(&b.access, |i| matches!(i, Instr::StoreQ { .. })), 1);
    }

    #[test]
    fn cdq_used_for_fp_derived_addresses() {
        let (_, b) = build(
            r"
            li r1, 2
            cvt.d.l f1, r1
            mul.d f2, f1, f1
            cvt.l.d r2, f2
            sll r3, r2, 3
            ld r4, 0x1000(r3)
            sd r4, 0x2000(r0)
            halt
        ",
        );
        // cvt.l.d is CS; its result feeds the AS address chain → CDQ.
        assert_eq!(
            count(&b.cs, |i| matches!(i, Instr::SendI { q: Queue::Cdq, .. })),
            1
        );
        assert_eq!(
            count(&b.access, |i| matches!(
                i,
                Instr::RecvI { q: Queue::Cdq, .. }
            )),
            1
        );
    }

    #[test]
    fn load_with_as_use_keeps_register_and_sends() {
        let (_, b) = build(
            r"
            li r1, 0x1000
            ld r2, 0(r1)        ; pointer used as next address AND by CS
            ld r3, 0(r2)
            add r4, r2, r3      ; wait - this is int, chased... make CS use fp
            cvt.d.l f1, r2
            add.d f2, f2, f1
            s.d f2, 0x2000(r0)
            halt
        ",
        );
        // r2 is used by an AS load (address) and by CS (cvt input): the
        // load keeps its register form and an explicit send follows. r3 is
        // only used by the CS, so its load fuses to l.q. Every CS receive
        // is fed by exactly one explicit send or fused queue load.
        let sends = count(&b.access, |i| {
            matches!(i, Instr::SendI { q: Queue::Ldq, .. })
        });
        let fused = count(&b.access, |i| {
            matches!(i, Instr::LoadQ { q: Queue::Ldq, .. })
        });
        assert_eq!(sends, 1);
        assert_eq!(fused, 1);
        assert_eq!(
            count(&b.cs, |i| matches!(i, Instr::RecvI { q: Queue::Ldq, .. })),
            sends + fused
        );
    }

    #[test]
    fn every_original_instruction_lands_somewhere() {
        let (p, b) = build(
            r"
            li r1, 0x1000
            li r5, 3
        loop:
            ld r2, 0(r1)
            add r6, r2, r2
            sd r6, 8(r1)
            sub r5, r5, 1
            bne r5, r0, loop
            halt
        ",
        );
        // Conservation: everything in the original appears in at least one
        // stream (as itself, a queue form, or a recv shadow).
        assert!(b.access.len() + b.cs.len() >= p.len());
        // Maps are monotone.
        assert!(b.access_map.windows(2).all(|w| w[0] <= w[1]));
        assert!(b.cs_map.windows(2).all(|w| w[0] <= w[1]));
    }
}
