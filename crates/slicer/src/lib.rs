//! # hidisc-slicer — the HiDISC compiler
//!
//! Implements the stream-separation compiler of the paper (its Section 4):
//! given a conventional sequential DISA binary it
//!
//! 1. derives the **Program Flow Graph** (the `cfg`, [`dom`] and [`dataflow`] modules),
//! 2. defines load/store and control instructions as the **Access Stream**
//!    and chases their **backward slices** through the register dependences
//!    ([`separate`]),
//! 3. classifies the remainder as the **Computation Stream** and inserts
//!    the **communication instructions** (LDQ / SDQ / CDQ sends and
//!    receives, Control-Queue consume-branches) ([`build`]),
//! 4. runs a **cache-access profile** to find probable cache-miss loads
//!    ([`profile`]), and
//! 5. extracts the **Cache Miss Access Slice** for each loop containing
//!    probable misses, placing trigger annotations and slip-control
//!    instructions ([`cmas`]).
//!
//! The output is a [`CompiledWorkload`]: the annotated original binary (run
//! by the superscalar and CP+CMP models), the two stream binaries (run by
//! the CP and AP), and the CMAS thread binaries (run by the CMP).

#![forbid(unsafe_code)]

pub mod build;
pub mod cfg;
pub mod cmas;
pub mod dataflow;
pub mod dom;
pub mod profile;
pub mod report;
pub mod separate;
pub mod swpref;

use hidisc_isa::{IntReg, Program};

/// A Cache Miss Access Slice: a sliced loop executed by the CMP as a
/// prefetch thread.
#[derive(Debug, Clone)]
pub struct CmasThread {
    /// Thread id (referenced by trigger annotations).
    pub id: u32,
    /// The sliced loop as a standalone program (ends in `halt`).
    pub prog: Program,
    /// Original-program index of the loop header this slice covers.
    pub loop_header: u32,
}

/// Everything the HiDISC compiler produces for one workload.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// The original binary with stream/miss/trigger annotations — executed
    /// by the baseline superscalar and (with its triggers) the CP+CMP
    /// model.
    pub original: Program,
    /// The Computation Stream binary (CP).
    pub cs: Program,
    /// The Access Stream binary (AP), with triggers and `getscq`.
    pub access: Program,
    /// CMAS prefetch threads (CMP).
    pub cmas: Vec<CmasThread>,
    /// The cache-access profile used for CMAS selection.
    pub profile: profile::MissProfile,
}

/// Initial machine state a workload runs with: register values and the
/// data image. The profiling pass executes under the same state the timing
/// runs will use.
#[derive(Debug, Clone, Default)]
pub struct ExecEnv {
    /// Initial integer-register values (workload parameters / base
    /// addresses).
    pub regs: Vec<(IntReg, i64)>,
    /// Initial memory image.
    pub mem: hidisc_isa::mem::Memory,
    /// Step budget for functional/profiling runs.
    pub max_steps: u64,
}

/// Compiler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompilerConfig {
    /// A static load is a probable cache miss when its demand miss rate
    /// meets this threshold...
    pub miss_rate_threshold: f64,
    /// ... and at least this many misses were observed.
    pub min_misses: u64,
    /// Skip CMAS extraction entirely (ablation).
    pub enable_cmas: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            miss_rate_threshold: 0.05,
            min_misses: 16,
            enable_cmas: true,
        }
    }
}

/// Runs the full compiler pipeline on a sequential program.
pub fn compile(
    prog: &Program,
    env: &ExecEnv,
    cfg: &CompilerConfig,
) -> hidisc_isa::Result<CompiledWorkload> {
    prog.validate()?;
    let graph = cfg::Cfg::build(prog);
    let du = dataflow::DefUse::compute(prog, &graph);
    let streams = separate::separate(prog, &du);
    let prof = profile::profile(prog, env)?;

    let mut original = prog.clone();
    for pc in 0..original.len() {
        original.annot_mut(pc).stream = streams.stream_of(pc);
        original.annot_mut(pc).probable_miss =
            prof.is_probable_miss(pc, cfg.miss_rate_threshold, cfg.min_misses);
    }

    let built = build::build_streams(&original, &du, &streams)?;
    let mut cs = built.cs;
    let mut access = built.access;

    let mut cmas_threads = Vec::new();
    if cfg.enable_cmas {
        let loops = dom::Loops::find(&graph);
        let extraction = cmas::extract(&original, &graph, &loops, &du)?;
        cmas_threads = extraction.threads;
        // Instrument the access stream (HiDISC) and the original binary
        // (CP+CMP) with triggers and slip control.
        cmas::instrument(&mut access, &built.access_map, &extraction.sites);
        let identity: Vec<u32> = (0..original.len()).collect();
        cmas::instrument(&mut original, &identity, &extraction.sites);
        // The CS keeps its layout; no CMAS instrumentation is needed there.
        let _ = &mut cs;
    }

    cs.validate()?;
    access.validate()?;
    for t in &cmas_threads {
        t.prog.validate()?;
    }

    Ok(CompiledWorkload {
        original,
        cs,
        access,
        cmas: cmas_threads,
        profile: prof,
    })
}
