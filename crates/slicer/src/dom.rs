//! Dominators and natural loops.
//!
//! Loop structure drives CMAS extraction: each natural loop containing
//! probable cache-miss loads yields one CMAS prefetch thread, triggered at
//! the loop pre-header.

use crate::cfg::Cfg;

/// Dominator sets computed by the classic iterative algorithm (programs
/// here are small; bit-set simplicity beats Lengauer-Tarjan cleverness).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `dom[b]` = set of blocks dominating `b` (as a bit vector).
    dom: Vec<Vec<u64>>,
    words: usize,
}

impl Dominators {
    /// Computes dominators over the CFG.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let words = n.div_ceil(64);
        let full = vec![u64::MAX; words];
        let mut dom = vec![full.clone(); n];
        // entry dominates only itself
        dom[0] = vec![0; words];
        dom[0][0] = 1;
        let reachable = cfg.reachable();

        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                if !reachable[b] {
                    continue;
                }
                let mut new = full.clone();
                let mut any_pred = false;
                for &p in &cfg.blocks[b].preds {
                    if !reachable[p] {
                        continue;
                    }
                    any_pred = true;
                    for (w, d) in new.iter_mut().zip(&dom[p]) {
                        *w &= d;
                    }
                }
                if !any_pred {
                    new = vec![0; words];
                }
                new[b / 64] |= 1 << (b % 64);
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { dom, words }
    }

    /// True when block `a` dominates block `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        debug_assert!(a / 64 < self.words);
        self.dom[b][a / 64] & (1 << (a % 64)) != 0
    }
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block id.
    pub header: usize,
    /// Blocks in the loop body (including the header), sorted.
    pub body: Vec<usize>,
    /// Latch blocks (sources of back edges).
    pub latches: Vec<usize>,
}

impl NaturalLoop {
    /// True when block `b` belongs to this loop.
    pub fn contains(&self, b: usize) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// All natural loops of a CFG.
#[derive(Debug, Clone)]
pub struct Loops {
    /// Loops, one per header (multiple back edges to one header merge).
    pub loops: Vec<NaturalLoop>,
}

impl Loops {
    /// Finds natural loops via back edges `latch → header` where the
    /// header dominates the latch.
    pub fn find(cfg: &Cfg) -> Loops {
        let doms = Dominators::compute(cfg);
        let reachable = cfg.reachable();
        let mut by_header: std::collections::BTreeMap<usize, (Vec<usize>, Vec<usize>)> =
            std::collections::BTreeMap::new();

        for (b, blk) in cfg.blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            for &s in &blk.succs {
                if doms.dominates(s, b) {
                    // back edge b → s
                    let body = Self::loop_body(cfg, s, b);
                    let e = by_header.entry(s).or_default();
                    e.0.extend(body);
                    e.1.push(b);
                }
            }
        }

        let loops = by_header
            .into_iter()
            .map(|(header, (mut body, latches))| {
                body.sort_unstable();
                body.dedup();
                NaturalLoop {
                    header,
                    body,
                    latches,
                }
            })
            .collect();
        Loops { loops }
    }

    /// Blocks of the natural loop of back edge `latch → header`: header
    /// plus everything that reaches the latch without passing the header.
    fn loop_body(cfg: &Cfg, header: usize, latch: usize) -> Vec<usize> {
        let mut body = vec![header];
        let mut work = vec![latch];
        let mut seen = vec![false; cfg.len()];
        seen[header] = true;
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            body.push(b);
            work.extend(cfg.blocks[b].preds.iter().copied());
        }
        body
    }

    /// The innermost loop containing block `b` (smallest body).
    pub fn innermost_containing(&self, b: usize) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    fn analyze(src: &str) -> (Cfg, Loops) {
        let p = assemble("t", src).unwrap();
        let c = Cfg::build(&p);
        let l = Loops::find(&c);
        (c, l)
    }

    #[test]
    fn single_loop_detected() {
        let (c, l) = analyze(
            r"
            li r1, 10
        loop:
            sub r1, r1, 1
            bne r1, r0, loop
            halt
        ",
        );
        assert_eq!(l.loops.len(), 1);
        let lp = &l.loops[0];
        assert_eq!(lp.header, c.block_containing(1));
        assert_eq!(lp.body, vec![lp.header]);
        assert_eq!(lp.latches, vec![lp.header]);
    }

    #[test]
    fn nested_loops() {
        let (c, l) = analyze(
            r"
            li r1, 4
        outer:
            li r2, 4
        inner:
            sub r2, r2, 1
            bne r2, r0, inner
            sub r1, r1, 1
            bne r1, r0, outer
            halt
        ",
        );
        assert_eq!(l.loops.len(), 2);
        let inner_block = c.block_containing(3);
        let inner = l.innermost_containing(inner_block).unwrap();
        let outer = l.loops.iter().max_by_key(|x| x.body.len()).unwrap();
        assert!(inner.body.len() < outer.body.len());
        assert!(outer.body.iter().all(|b| outer.contains(*b)));
        // Inner loop body is a subset of outer's.
        assert!(inner.body.iter().all(|b| outer.contains(*b)));
    }

    #[test]
    fn no_loops_in_straight_line() {
        let (_, l) = analyze("li r1, 1\nhalt");
        assert!(l.loops.is_empty());
    }

    #[test]
    fn dominators_basics() {
        let (c, _) = analyze(
            r"
            beq r1, r0, else
            li r2, 1
            j join
        else:
            li r2, 2
        join:
            halt
        ",
        );
        let d = Dominators::compute(&c);
        // entry dominates everything
        for b in 0..c.len() {
            assert!(d.dominates(0, b));
        }
        // neither branch arm dominates the join
        let join = c.len() - 1;
        assert!(!d.dominates(1, join));
        assert!(!d.dominates(2, join));
        assert!(d.dominates(join, join));
    }

    #[test]
    fn multi_latch_loop_merges() {
        // Loop with two back edges (continue-style).
        let (_, l) = analyze(
            r"
            li r1, 8
        head:
            sub r1, r1, 1
            beq r1, r0, done
            rem r2, r1, 2
            bne r2, r0, head
            j head
        done:
            halt
        ",
        );
        assert_eq!(l.loops.len(), 1);
        assert_eq!(l.loops[0].latches.len(), 2);
    }
}
