//! Software prefetching — the paper's related-work comparator \[9\]
//! (Mowry-style compiler-inserted prefetching; Luk & Mowry for recursive
//! structures).
//!
//! For every load inside a natural loop whose address is *affine in the
//! loop induction* — its base register is advanced by a compile-time
//! constant each iteration, or computed from an induction variable that
//! is — the pass inserts a `pref` instruction `distance` iterations ahead
//! of the load. Irregular loads (pointer chases, data-dependent gathers)
//! get nothing, which is exactly the weakness of software prefetching the
//! paper's Section 2 describes.

use crate::cfg::Cfg;
use crate::dom::Loops;
use hidisc_isa::instr::Src;
use hidisc_isa::{Instr, IntOp, Program};

/// Result summary of the insertion pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwPrefReport {
    /// Loads examined inside loops.
    pub loads_in_loops: usize,
    /// Loads recognised as affine and covered by a `pref`.
    pub prefetched: usize,
}

/// Computes the per-iteration stride of `reg` within the loop body — a
/// linear-induction analysis over the address chain:
///
/// * no in-loop definition ⇒ loop-invariant (stride 0);
/// * `add r, r, #K` / `sub r, r, #K` (self-update) ⇒ stride ±K;
/// * `add/sub/sll/mul` over registers with known strides compose
///   linearly;
/// * anything else (loads, multiple definitions, non-linear ops) ⇒
///   unknown.
///
/// A wrong stride only costs a useless prefetch — prefetching is
/// architecturally side-effect free — so the analysis can be aggressive
/// about conditionally-executed definitions.
fn induction_stride(prog: &Program, body: &[u32], reg: hidisc_isa::IntReg) -> Option<i64> {
    stride_of(prog, body, reg, 0)
}

fn stride_of(prog: &Program, body: &[u32], reg: hidisc_isa::IntReg, depth: u32) -> Option<i64> {
    if reg.is_zero() {
        return Some(0);
    }
    if depth > 6 {
        return None;
    }
    let defs: Vec<u32> = body
        .iter()
        .copied()
        .filter(|&pc| prog.instr(pc).def() == Some(hidisc_isa::instr::RegRef::Int(reg)))
        .collect();
    match defs.as_slice() {
        [] => Some(0), // loop-invariant
        [pc] => match *prog.instr(*pc) {
            // self-updating induction variable
            Instr::IntOp {
                op: IntOp::Add,
                dst,
                a,
                b: Src::Imm(k),
            } if dst == a && a == reg => Some(k),
            Instr::IntOp {
                op: IntOp::Sub,
                dst,
                a,
                b: Src::Imm(k),
            } if dst == a && a == reg => Some(-k),
            // recomputed-per-iteration linear combinations
            Instr::IntOp { op, a, b, .. } if a != reg && b.reg() != Some(reg) => {
                let sa = stride_of(prog, body, a, depth + 1)?;
                match (op, b) {
                    (IntOp::Add, Src::Imm(_)) => Some(sa),
                    (IntOp::Sub, Src::Imm(_)) => Some(sa),
                    (IntOp::Add, Src::Reg(rb)) => {
                        Some(sa.checked_add(stride_of(prog, body, rb, depth + 1)?)?)
                    }
                    (IntOp::Sub, Src::Reg(rb)) => {
                        Some(sa.checked_sub(stride_of(prog, body, rb, depth + 1)?)?)
                    }
                    (IntOp::Sll, Src::Imm(k)) if (0..32).contains(&k) => sa.checked_shl(k as u32),
                    (IntOp::Mul, Src::Imm(c)) => sa.checked_mul(c),
                    _ => None,
                }
            }
            Instr::Li { .. } => Some(0), // same constant every iteration
            _ => None,
        },
        _ => None, // multiple definitions
    }
}

/// Inserts `pref` instructions for affine loads, `distance` iterations
/// ahead. Returns the transformed program and a report.
pub fn insert_software_prefetch(prog: &Program, distance: i64) -> (Program, SwPrefReport) {
    let graph = Cfg::build(prog);
    let loops = Loops::find(&graph);
    let mut report = SwPrefReport::default();

    // For each load in a loop, decide the prefetch offset now; emit while
    // re-laying-out the program.
    let mut pref_after: Vec<Option<(hidisc_isa::IntReg, i32)>> = vec![None; prog.len() as usize];
    for l in &loops.loops {
        let body: Vec<u32> = l
            .body
            .iter()
            .flat_map(|&b| graph.blocks[b].range())
            .collect();
        for &pc in &body {
            let i = prog.instr(pc);
            if !i.is_load() {
                continue;
            }
            report.loads_in_loops += 1;
            let Some((base, off)) = i.mem_addr_operands() else {
                continue;
            };
            let Some(stride) = induction_stride(prog, &body, base) else {
                continue;
            };
            let ahead = stride.saturating_mul(distance);
            let Ok(new_off) = i32::try_from(off as i64 + ahead) else {
                continue;
            };
            pref_after[pc as usize] = Some((base, new_off));
            report.prefetched += 1;
        }
    }

    // Re-emit with prefetches inserted, remapping branch targets.
    let mut out = Program::new(format!("{}+swpref", prog.name));
    let mut map = vec![0u32; prog.len() as usize];
    let mut fixups: Vec<(u32, u32)> = Vec::new();
    for pc in 0..prog.len() {
        map[pc as usize] = out.len();
        if let Some((base, off)) = pref_after[pc as usize] {
            out.push_annotated(Instr::Prefetch { base, off }, *prog.annot(pc));
        }
        let at = out.push_annotated(*prog.instr(pc), *prog.annot(pc));
        if let Some(t) = prog.instr(pc).target() {
            fixups.push((at, t));
        }
    }
    for (at, orig) in fixups {
        out.instr_mut(at).set_target(map[orig as usize]);
    }
    for l in prog.labels() {
        let _ = out.add_label(l.name.clone(), map[l.at as usize]);
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;
    use hidisc_isa::interp::Interp;
    use hidisc_isa::mem::Memory;

    #[test]
    fn strided_loop_gets_prefetches() {
        let p = assemble(
            "t",
            r"
            li r1, 0x100000
            li r2, 128
        loop:
            ld r3, 0(r1)
            add r4, r3, 1
            add r1, r1, 64
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (q, rep) = insert_software_prefetch(&p, 8);
        assert_eq!(rep.loads_in_loops, 1);
        assert_eq!(rep.prefetched, 1);
        q.validate().unwrap();
        // the prefetch sits right before the load, 8 iterations ahead
        let at = q
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Prefetch { .. }))
            .unwrap();
        assert!(matches!(
            q.instr(at as u32),
            Instr::Prefetch { off: 512, .. }
        ));
        assert!(q.instr(at as u32 + 1).is_load());
    }

    #[test]
    fn pointer_chase_gets_nothing() {
        let p = assemble(
            "t",
            r"
            li r1, 0x100000
            li r2, 64
        loop:
            ld r1, 0(r1)
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (q, rep) = insert_software_prefetch(&p, 8);
        assert_eq!(rep.loads_in_loops, 1);
        assert_eq!(rep.prefetched, 0, "a chase is not affine");
        assert_eq!(q.len(), p.len());
    }

    #[test]
    fn transformed_program_is_equivalent() {
        let src = r"
            li r1, 0x100000
            li r2, 32
            li r5, 0
        loop:
            ld r3, 0(r1)
            add r5, r5, r3
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            sd r5, 0x200000(r0)
            halt
        ";
        let p = assemble("t", src).unwrap();
        let (q, rep) = insert_software_prefetch(&p, 4);
        assert_eq!(rep.prefetched, 1);
        let mut mem = Memory::new();
        for k in 0..64u64 {
            mem.write_i64(0x100000 + 8 * k, k as i64).unwrap();
        }
        let mut a = Interp::new(&p, mem.clone());
        a.run(100_000).unwrap();
        let mut b = Interp::new(&q, mem);
        b.run(100_000).unwrap();
        assert_eq!(a.mem.checksum(), b.mem.checksum());
        assert_eq!(
            a.mem.read_i64(0x200000).unwrap(),
            b.mem.read_i64(0x200000).unwrap()
        );
    }

    #[test]
    fn negative_stride_prefetches_backwards() {
        let p = assemble(
            "t",
            r"
            li r1, 0x108000
            li r2, 64
        loop:
            ld r3, 0(r1)
            sub r1, r1, 32
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (q, rep) = insert_software_prefetch(&p, 4);
        assert_eq!(rep.prefetched, 1);
        let at = q
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Prefetch { .. }))
            .unwrap();
        assert!(matches!(
            q.instr(at as u32),
            Instr::Prefetch { off: -128, .. }
        ));
    }

    #[test]
    fn multiple_updates_disqualify() {
        let p = assemble(
            "t",
            r"
            li r1, 0x100000
            li r2, 64
        loop:
            ld r3, 0(r1)
            add r1, r1, 8
            add r1, r1, 8
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (_, rep) = insert_software_prefetch(&p, 4);
        assert_eq!(rep.prefetched, 0);
    }
}

#[cfg(test)]
mod affine_tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    #[test]
    fn index_scaled_addressing_is_recognised() {
        // The dominant kernel pattern: addr = base + (i << 3), i += 1.
        let p = assemble(
            "t",
            r"
            li r8, 0x100000
            li r12, 0
            li r2, 64
        loop:
            sll r3, r12, 3
            add r4, r8, r3
            ld r5, 0(r4)
            add r12, r12, 1
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (q, rep) = insert_software_prefetch(&p, 8);
        assert_eq!(rep.prefetched, 1);
        let at = q
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Prefetch { .. }))
            .unwrap();
        // stride = 1 << 3 = 8 bytes per iteration; 8 iterations ahead = 64.
        assert!(
            matches!(q.instr(at as u32), Instr::Prefetch { off: 64, .. }),
            "{q}"
        );
    }

    #[test]
    fn multiplied_induction_is_recognised() {
        // addr = base + i*24 (record stride): mul by constant.
        let p = assemble(
            "t",
            r"
            li r8, 0x100000
            li r12, 0
            li r2, 64
        loop:
            mul r3, r12, 24
            add r4, r8, r3
            ld r5, 0(r4)
            add r12, r12, 1
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (q, rep) = insert_software_prefetch(&p, 4);
        assert_eq!(rep.prefetched, 1);
        let at = q
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Prefetch { .. }))
            .unwrap();
        assert!(
            matches!(q.instr(at as u32), Instr::Prefetch { off: 96, .. }),
            "{q}"
        );
    }

    #[test]
    fn gather_through_loaded_index_stays_unknown() {
        // addr depends on a loaded value: not affine.
        let p = assemble(
            "t",
            r"
            li r8, 0x100000
            li r9, 0x200000
            li r12, 0
            li r2, 64
        loop:
            sll r3, r12, 3
            add r4, r8, r3
            ld r5, 0(r4)        ; idx[i] — affine
            sll r5, r5, 3
            add r6, r9, r5
            ld r7, 0(r6)        ; table[idx[i]] — not affine
            add r12, r12, 1
            sub r2, r2, 1
            bne r2, r0, loop
            halt
        ",
        )
        .unwrap();
        let (_, rep) = insert_software_prefetch(&p, 4);
        assert_eq!(rep.loads_in_loops, 2);
        assert_eq!(rep.prefetched, 1, "only the index stream is affine");
    }
}
