//! Stream separation: backward chasing of load/store and control
//! instructions (Figure 4, steps 2-3 of the paper).
//!
//! * Every memory and control-transfer instruction is seeded into the
//!   **Access Stream**.
//! * Their backward slices (address computation, index generation, loop
//!   control) are chased through the register def-use chains and pulled
//!   into the Access Stream too.
//! * Chasing stops at floating-point computation: FP stays in the
//!   **Computation Stream** (the Access Processor has no FP units) and
//!   feeds the Access Stream through the CDQ when needed.
//! * A store's *data* operand is deliberately not chased — that is the
//!   paper's SDQ communication.

use crate::dataflow::DefUse;
use hidisc_isa::annot::Stream;
use hidisc_isa::instr::RegRef;
use hidisc_isa::{Instr, Program};

/// Per-instruction stream assignment.
#[derive(Debug, Clone)]
pub struct Streams {
    v: Vec<Stream>,
}

impl Streams {
    /// The stream of instruction `pc`.
    pub fn stream_of(&self, pc: u32) -> Stream {
        self.v[pc as usize]
    }

    /// Number of instructions per stream `(computation, access)`.
    pub fn counts(&self) -> (usize, usize) {
        let a = self.v.iter().filter(|s| **s == Stream::Access).count();
        (self.v.len() - a, a)
    }
}

/// The data register of a store, when it has one distinct from its base
/// (a register that serves as both data and address is treated as
/// address — it must be chased).
pub fn store_data_reg(i: &Instr) -> Option<RegRef> {
    match *i {
        Instr::Store { src, base, .. } => {
            (!src.is_zero() && src != base).then_some(RegRef::Int(src))
        }
        Instr::StoreF { src, .. } => Some(RegRef::Fp(src)),
        _ => None,
    }
}

/// Computes the stream assignment.
pub fn separate(prog: &Program, du: &DefUse) -> Streams {
    let n = prog.len() as usize;
    let mut v = vec![Stream::Computation; n];
    let mut work: Vec<u32> = Vec::new();

    for pc in 0..prog.len() {
        let i = prog.instr(pc);
        if i.is_mem() || i.is_control() {
            v[pc as usize] = Stream::Access;
            work.push(pc);
        }
    }

    while let Some(pc) = work.pop() {
        let i = prog.instr(pc);
        let data_reg = store_data_reg(i);
        for (reg, defs) in du.parents(pc) {
            if Some(*reg) == data_reg {
                continue; // store data is communicated, not chased
            }
            for &d in defs {
                if prog.instr(d).is_fp_compute() {
                    continue; // FP stays in the Computation Stream
                }
                if v[d as usize] == Stream::Computation {
                    v[d as usize] = Stream::Access;
                    work.push(d);
                }
            }
        }
    }

    Streams { v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use hidisc_isa::asm::assemble;

    fn streams(src: &str) -> (Program, Streams) {
        let p = assemble("t", src).unwrap();
        let c = Cfg::build(&p);
        let du = DefUse::compute(&p, &c);
        let s = separate(&p, &du);
        (p, s)
    }

    #[test]
    fn memory_and_control_are_access() {
        let (p, s) = streams(
            r"
            li r1, 0x1000
            ld r2, 0(r1)
            add r3, r2, 1
            sd r3, 8(r1)
            halt
        ",
        );
        assert_eq!(s.stream_of(0), Stream::Access); // li feeds the load address
        assert_eq!(s.stream_of(1), Stream::Access); // load
        assert_eq!(s.stream_of(3), Stream::Access); // store
        assert_eq!(s.stream_of(4), Stream::Access); // halt
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn store_data_chain_stays_in_cs() {
        let (_, s) = streams(
            r"
            li r1, 0x1000
            ld r2, 0(r1)
            add r3, r2, 1
            sd r3, 8(r1)
            halt
        ",
        );
        // The add produces store *data* — not chased, stays CS.
        assert_eq!(s.stream_of(2), Stream::Computation);
    }

    #[test]
    fn address_chain_is_chased_transitively() {
        let (_, s) = streams(
            r"
            li r1, 8
            mul r2, r1, 8
            add r3, r2, r1
            ld r4, 0(r3)
            halt
        ",
        );
        for pc in 0..4 {
            assert_eq!(s.stream_of(pc), Stream::Access, "pc {pc}");
        }
    }

    #[test]
    fn fp_compute_is_a_chase_barrier() {
        let (_, s) = streams(
            r"
            li r1, 4
            cvt.d.l f1, r1
            mul.d f2, f1, f1
            cvt.l.d r2, f2
            ld r3, 0(r2)
            halt
        ",
        );
        // Chasing: load(4) ← r2 ← cvt.l.d(3) which is FP compute: barrier.
        // Nothing upstream of the barrier is chased, so the li stays CS.
        assert_eq!(s.stream_of(0), Stream::Computation);
        assert_eq!(s.stream_of(3), Stream::Computation);
        assert_eq!(s.stream_of(2), Stream::Computation);
        assert_eq!(s.stream_of(1), Stream::Computation);
        assert_eq!(s.stream_of(4), Stream::Access);
    }

    #[test]
    fn loop_control_is_access() {
        let (_, s) = streams(
            r"
            li r1, 10
            li r5, 0
        loop:
            add r5, r5, r1
            sub r1, r1, 1
            bne r1, r0, loop
            halt
        ",
        );
        assert_eq!(s.stream_of(3), Stream::Access); // induction update
        assert_eq!(s.stream_of(4), Stream::Access); // branch
        assert_eq!(s.stream_of(0), Stream::Access); // bound init
                                                    // r5 accumulation is pure computation
        assert_eq!(s.stream_of(2), Stream::Computation);
        assert_eq!(s.stream_of(1), Stream::Computation);
    }

    #[test]
    fn store_data_reg_identifies_operand() {
        let p = assemble("t", "sd r3, 0(r1)\ns.d f2, 0(r1)\nsd r1, 0(r1)\nhalt").unwrap();
        assert_eq!(
            store_data_reg(p.instr(0)),
            Some(RegRef::Int(hidisc_isa::IntReg::new(3)))
        );
        assert!(matches!(store_data_reg(p.instr(1)), Some(RegRef::Fp(_))));
        // data == base: treated as address, not data
        assert_eq!(store_data_reg(p.instr(2)), None);
    }

    #[test]
    fn counts_partition_everything() {
        let (p, s) = streams(
            r"
            li r1, 0x1000
            ld r2, 0(r1)
            add r3, r2, 1
            sd r3, 8(r1)
            halt
        ",
        );
        let (c, a) = s.counts();
        assert_eq!(c + a, p.len() as usize);
    }
}
