//! Control-flow graph over DISA programs (the paper's Program Flow Graph,
//! step 1 of the HiDISC compiler).

use hidisc_isa::{Instr, Program};

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl Block {
    /// Instruction indices of this block.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }

    /// Index of the block's last instruction.
    pub fn last(&self) -> u32 {
        self.end - 1
    }
}

/// The control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order (block 0 is the entry).
    pub blocks: Vec<Block>,
    /// Block id containing each instruction.
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `prog`.
    pub fn build(prog: &Program) -> Cfg {
        let n = prog.len();
        assert!(n > 0, "empty program");

        // Leaders: entry, branch targets, fall-throughs of control.
        let mut leader = vec![false; n as usize];
        leader[0] = true;
        for pc in 0..n {
            let i = prog.instr(pc);
            if let Some(t) = i.target() {
                leader[t as usize] = true;
            }
            if i.is_control() && pc + 1 < n {
                leader[(pc + 1) as usize] = true;
            }
        }

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n as usize];
        let mut start = 0u32;
        for pc in 0..n {
            if pc > start && leader[pc as usize] {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: vec![],
                    preds: vec![],
                });
                start = pc;
            }
            block_of[pc as usize] = blocks.len();
        }
        blocks.push(Block {
            start,
            end: n,
            succs: vec![],
            preds: vec![],
        });

        // Edges.
        let nb = blocks.len();
        let mut succs: Vec<Vec<usize>> = vec![vec![]; nb];
        for (b, blk) in blocks.iter().enumerate() {
            let last = *prog.instr(blk.last());
            match last {
                Instr::Jump { target } => succs[b].push(block_of[target as usize]),
                Instr::Branch { target, .. } | Instr::CBranch { target } => {
                    succs[b].push(block_of[target as usize]);
                    if blk.end < n {
                        succs[b].push(block_of[blk.end as usize]);
                    }
                }
                Instr::Halt => {}
                _ => {
                    if blk.end < n {
                        succs[b].push(block_of[blk.end as usize]);
                    }
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![vec![]; nb];
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }
        for (b, blk) in blocks.iter_mut().enumerate() {
            blk.succs = std::mem::take(&mut succs[b]);
            blk.preds = std::mem::take(&mut preds[b]);
        }

        Cfg { blocks, block_of }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the graph has no blocks (never, for valid programs).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction `pc`.
    pub fn block_containing(&self, pc: u32) -> usize {
        self.block_of[pc as usize]
    }

    /// Blocks reachable from the entry (block ids).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            work.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::asm::assemble;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = assemble("t", src).unwrap();
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("li r1, 1\nadd r2, r1, r1\nhalt");
        assert_eq!(c.len(), 1);
        assert_eq!(c.blocks[0].range(), 0..3);
        assert!(c.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_structure() {
        let (_, c) = cfg_of(
            r"
            li r1, 10
        loop:
            sub r1, r1, 1
            bne r1, r0, loop
            halt
        ",
        );
        // blocks: [li], [sub; bne], [halt]
        assert_eq!(c.len(), 3);
        let body = 1;
        assert!(c.blocks[body].succs.contains(&body), "back edge");
        assert!(c.blocks[body].succs.contains(&2));
        assert!(c.blocks[body].preds.contains(&0));
        assert!(c.blocks[body].preds.contains(&body));
    }

    #[test]
    fn diamond() {
        let (_, c) = cfg_of(
            r"
            beq r1, r0, else
            li r2, 1
            j join
        else:
            li r2, 2
        join:
            halt
        ",
        );
        assert_eq!(c.len(), 4);
        assert_eq!(c.blocks[0].succs.len(), 2);
        assert_eq!(c.blocks[3].preds.len(), 2);
    }

    #[test]
    fn block_of_maps_every_instruction() {
        let (p, c) = cfg_of(
            r"
            li r1, 3
        l:
            sub r1, r1, 1
            bne r1, r0, l
            halt
        ",
        );
        for pc in 0..p.len() {
            let b = c.block_containing(pc);
            assert!(c.blocks[b].range().contains(&pc));
        }
    }

    #[test]
    fn halt_has_no_successors_and_all_reachable() {
        let (_, c) = cfg_of("beq r0, r0, end\nnop\nend:\nhalt");
        let last = c.len() - 1;
        assert!(c.blocks[last].succs.is_empty());
        // the nop block is reachable only via fall-through which the beq
        // skips — still structurally reachable (beq has 2 successors).
        assert!(c.reachable().iter().all(|&r| r));
    }
}
