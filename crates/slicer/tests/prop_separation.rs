//! Static invariants of the stream separator, property-tested over random
//! structured programs:
//!
//! * every memory and control instruction lands in the Access Stream, and
//!   the Access Stream holds no FP computation;
//! * the emitted streams contain matching queue endpoints (every CS
//!   receive has an AS producer for that queue and vice versa, in equal
//!   static counts along the linear layout of paired program points);
//! * CMAS threads never contain stores or FP and always terminate.

use hidisc_isa::annot::Stream;
use hidisc_isa::testgen::{random_program, GenConfig};
use hidisc_isa::{Instr, Queue};
use hidisc_slicer::{compile, CompilerConfig, ExecEnv};
use proptest::prelude::*;

fn compiled(seed: u64, gen: GenConfig) -> hidisc_slicer::CompiledWorkload {
    let (prog, mem, regs) = random_program(seed, gen);
    let env = ExecEnv {
        regs,
        mem,
        max_steps: 4_000_000,
    };
    compile(&prog, &env, &CompilerConfig::default()).unwrap()
}

fn count(p: &hidisc_isa::Program, f: impl Fn(&Instr) -> bool) -> usize {
    p.instrs().iter().filter(|i| f(i)).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn memory_and_control_always_in_access_stream(seed in any::<u64>()) {
        let w = compiled(seed, GenConfig::default());
        for pc in 0..w.original.len() {
            let i = w.original.instr(pc);
            if i.is_mem() || i.is_control() {
                prop_assert_eq!(
                    w.original.annot(pc).stream,
                    Stream::Access,
                    "pc {}", pc
                );
            }
            if i.is_fp_compute() {
                prop_assert_eq!(
                    w.original.annot(pc).stream,
                    Stream::Computation,
                    "pc {}", pc
                );
            }
        }
    }

    #[test]
    fn emitted_streams_are_well_formed(seed in any::<u64>()) {
        let w = compiled(seed, GenConfig::default());
        w.cs.validate().unwrap();
        w.access.validate().unwrap();
        // CS never touches memory; AS never computes FP.
        prop_assert_eq!(count(&w.cs, |i| i.is_mem()), 0);
        prop_assert_eq!(count(&w.access, |i| i.is_fp_compute()), 0);
        // Consume-branches only in the CS; real branches only in the AS.
        prop_assert_eq!(count(&w.access, |i| matches!(i, Instr::CBranch { .. })), 0);
        prop_assert_eq!(count(&w.cs, |i| matches!(i, Instr::Branch { .. })), 0);
    }

    #[test]
    fn static_queue_endpoints_match(seed in any::<u64>()) {
        let w = compiled(seed, GenConfig::default());
        // Static producer/consumer counts per data queue must be equal:
        // the layouts pair one producer with one consumer per original
        // program point.
        let push = |p: &hidisc_isa::Program, q: Queue| {
            p.instrs().iter().filter(|i| i.queue_push() == Some(q)).count()
        };
        let pop = |p: &hidisc_isa::Program, q: Queue| {
            p.instrs().iter().filter(|i| i.queue_pop() == Some(q)).count()
        };
        prop_assert_eq!(push(&w.access, Queue::Ldq), pop(&w.cs, Queue::Ldq));
        prop_assert_eq!(push(&w.cs, Queue::Sdq), pop(&w.access, Queue::Sdq));
        prop_assert_eq!(push(&w.cs, Queue::Cdq), pop(&w.access, Queue::Cdq));
        // Every conditional AS branch pushes a CQ token; CS pops them.
        let cq_push = (0..w.access.len())
            .filter(|&pc| w.access.annot(pc).push_cq)
            .count();
        prop_assert_eq!(cq_push, pop(&w.cs, Queue::Cq));
    }

    #[test]
    fn cmas_threads_are_pure_prefetch_programs(seed in any::<u64>()) {
        // Use a tiny arena so loads actually miss during profiling and
        // CMAS extraction has something to chew on (most seeds still
        // produce none — that is fine).
        let w = compiled(seed, GenConfig { arena_words: 64, ..GenConfig::default() });
        for t in &w.cmas {
            t.prog.validate().unwrap();
            prop_assert_eq!(count(&t.prog, |i| i.is_store()), 0, "thread {}", t.id);
            prop_assert_eq!(count(&t.prog, |i| i.is_fp()), 0, "thread {}", t.id);
            prop_assert!(matches!(t.prog.instr(t.prog.len() - 1), Instr::Halt));
        }
    }

    #[test]
    fn disabling_cmas_removes_all_threads(seed in any::<u64>()) {
        let (prog, mem, regs) = random_program(seed, GenConfig::default());
        let env = ExecEnv { regs, mem, max_steps: 4_000_000 };
        let cfg = CompilerConfig { enable_cmas: false, ..CompilerConfig::default() };
        let w = compile(&prog, &env, &cfg).unwrap();
        prop_assert!(w.cmas.is_empty());
        for pc in 0..w.access.len() {
            prop_assert_eq!(w.access.annot(pc).trigger, None);
        }
    }
}
