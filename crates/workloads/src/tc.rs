//! The **Transitive Closure** stressmark: Floyd-Warshall all-pairs
//! shortest paths over a dense distance matrix.
//!
//! The triple loop walks the whole `n × n` matrix for every `k`, a
//! footprint larger than the L1 — the benchmark where the paper reports
//! its best cache-miss reduction (26.7 %).

use crate::gen;
use crate::layout::{REGION_A, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;
use rand::Rng;

/// Transitive-closure parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Matrix dimension.
    pub n: usize,
    /// Edge probability (percent) in the generated digraph.
    pub density_pct: u32,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                n: 12,
                density_pct: 20,
            },
            crate::Scale::Paper => Params {
                n: 72,
                density_pct: 12,
            },
            crate::Scale::Large => Params {
                n: 128,
                density_pct: 12,
            },
        }
    }
}

/// "Infinite" distance (sums of two must not overflow i64).
pub const INF: i64 = 1 << 40;

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1005, seed);
    let n = p.n;
    let mut d = vec![INF; n * n];
    for i in 0..n {
        d[i * n + i] = 0;
        for j in 0..n {
            if i != j && rng.gen_range(0..100u32) < p.density_pct {
                d[i * n + j] = rng.gen_range(1..100);
            }
        }
    }

    let mut mem = Memory::new();
    for (i, &v) in d.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, v).unwrap();
    }

    // Native Floyd-Warshall reference + checksum.
    let mut r = d.clone();
    for k in 0..n {
        for i in 0..n {
            let dik = r[i * n + k];
            for j in 0..n {
                let c = dik + r[k * n + j];
                if c < r[i * n + j] {
                    r[i * n + j] = c;
                }
            }
        }
    }
    let mut check: i64 = 0;
    for (idx, &v) in r.iter().enumerate() {
        check = check.wrapping_add(v.wrapping_mul(idx as i64 % 251 + 1));
    }

    let src = r"
            li r20, 0           ; k
        kloop:
            li r21, 0           ; i
        iloop:
            mul r2, r21, r9
            sll r2, r2, 3
            add r24, r8, r2     ; &d[i*n]
            mul r3, r20, r9
            sll r3, r3, 3
            add r25, r8, r3     ; &d[k*n]
            sll r4, r20, 3
            add r4, r24, r4
            ld r26, 0(r4)       ; dik
            li r22, 0           ; j
        jloop:
            sll r5, r22, 3
            add r6, r24, r5
            ld r27, 0(r6)       ; d[i][j]
            add r7, r25, r5
            ld r28, 0(r7)       ; d[k][j]
            add r29, r26, r28
            bge r29, r27, noupd
            sd r29, 0(r6)
        noupd:
            add r22, r22, 1
            bne r22, r9, jloop
            add r21, r21, 1
            bne r21, r9, iloop
            add r20, r20, 1
            bne r20, r9, kloop
            ; checksum pass
            li r5, 0
            li r12, 0
            li r16, 0
        check:
            sll r2, r12, 3
            add r3, r8, r2
            ld r4, 0(r3)
            rem r14, r12, 251
            add r14, r14, 1
            mul r4, r4, r14
            add r5, r5, r4
            add r12, r12, 1
            bne r12, r18, check
            sd r5, 0(r11)
            halt
        ";
    let prog = assemble("tc", src).expect("tc kernel assembles");

    Workload {
        name: "tc",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_A as i64),
            (IntReg::new(9), n as i64),
            (IntReg::new(11), RESULT as i64),
            (IntReg::new(18), (n * n) as i64),
        ],
        mem,
        max_steps: 30 * (n as u64).pow(3) + 40 * (n as u64).pow(2) + 10_000,
        expected: Some((RESULT, check)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference() {
        let w = build(
            &Params {
                n: 10,
                density_pct: 25,
            },
            17,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn closure_actually_shortens_paths() {
        // A 3-cycle with long direct edges: FW must find shorter 2-hop
        // paths, which the checksum is sensitive to; verify a cell
        // directly.
        let p = Params {
            n: 8,
            density_pct: 50,
        };
        let w = build(&p, 3);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        // Recompute natively and compare the whole matrix.
        let mut rng = gen::rng(0x1005, 3);
        let n = p.n;
        let mut d = vec![INF; n * n];
        for a in 0..n {
            d[a * n + a] = 0;
            for b in 0..n {
                if a != b && rng.gen_range(0..100u32) < p.density_pct {
                    d[a * n + b] = rng.gen_range(1..100);
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                for b in 0..n {
                    let c = d[a * n + k] + d[k * n + b];
                    if c < d[a * n + b] {
                        d[a * n + b] = c;
                    }
                }
            }
        }
        for (cell, &v) in d.iter().enumerate() {
            let got = i.mem.read_i64(REGION_A + 8 * cell as u64).unwrap();
            assert_eq!(got, v, "cell {cell}");
        }
    }
}
