//! # hidisc-workloads — the DIS benchmark and Stressmark kernels
//!
//! The paper evaluates HiDISC on the Atlantic Aerospace *Data-Intensive
//! Systems* benchmark suite and *DIS Stressmark* suite. The original
//! distributions are long gone; this crate reimplements the seven kernels
//! the paper reports (its Figures 8-10) directly in DISA assembly from the
//! published kernel definitions, with seeded synthetic data generators
//! that reproduce each kernel's memory-access class:
//!
//! | name | suite | access pattern |
//! |------|-------|----------------|
//! | `dm` | DIS | hash-index lookup + record gather (database) |
//! | `raytrace` | DIS | grid traversal + object gather + FP intersection |
//! | `pointer` | Stressmark | serial pointer chasing with window scans |
//! | `update` | Stressmark | indexed gather-modify-scatter |
//! | `field` | Stressmark | streaming byte scan (token matching) |
//! | `neighborhood` | Stressmark | image pair sampling + histogram update |
//! | `tc` | Stressmark | Floyd-Warshall transitive closure |
//!
//! Two further Stressmark members the paper did not plot are provided as
//! [`extras`]: `cornerturn` (matrix transpose) and `matrix` (sparse
//! matrix-vector products, the CG kernel).
//!
//! Every workload is a [`Workload`]: a sequential DISA program, an initial
//! register/memory state, and a Rust *reference result* recomputed
//! natively so tests can verify the kernel end-to-end.

#![forbid(unsafe_code)]

pub mod cornerturn;
pub mod dm;
pub mod field;
pub mod gen;
pub mod matrix;
pub mod micro;
pub mod neighborhood;
pub mod pointer;
pub mod raytrace;
pub mod tc;
pub mod update;

use hidisc_isa::mem::Memory;
use hidisc_isa::{IntReg, Program};

/// A ready-to-run benchmark kernel.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// The sequential DISA binary.
    pub prog: Program,
    /// Initial integer registers (parameters and base addresses).
    pub regs: Vec<(IntReg, i64)>,
    /// Initial data image.
    pub mem: Memory,
    /// Functional step budget (generously above the expected dynamic
    /// instruction count).
    pub max_steps: u64,
    /// Address of the 8-byte result word the kernel writes, and the value
    /// a correct run must leave there (computed natively by the
    /// generator).
    pub expected: Option<(u64, i64)>,
}

/// Problem-size scaling for the whole suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests (thousands of dynamic instructions).
    Test,
    /// The sizes used by the paper-reproduction experiments.
    Paper,
    /// ~4x the paper sizes, for longer-running studies.
    Large,
}

/// Builds the full seven-benchmark suite in the paper's presentation
/// order (DM, RayTrace, Pointer, Update, Field, Neighborhood, TC).
pub fn suite(scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        dm::build(&dm::Params::at(scale), seed),
        raytrace::build(&raytrace::Params::at(scale), seed),
        pointer::build(&pointer::Params::at(scale), seed),
        update::build(&update::Params::at(scale), seed),
        field::build(&field::Params::at(scale), seed),
        neighborhood::build(&neighborhood::Params::at(scale), seed),
        tc::build(&tc::Params::at(scale), seed),
    ]
}

/// The remaining DIS Stressmark suite members the paper did not plot
/// (Corner-Turn, Matrix), provided for suite completeness. Not part of
/// [`suite`] — the paper-reproduction experiments use exactly its seven.
pub fn extras(scale: Scale, seed: u64) -> Vec<Workload> {
    vec![
        cornerturn::build(&cornerturn::Params::at(scale), seed),
        matrix::build(&matrix::Params::at(scale), seed),
    ]
}

/// Looks up one workload by name, searching the paper suite first and the
/// extras second.
pub fn by_name(name: &str, scale: Scale, seed: u64) -> Option<Workload> {
    suite(scale, seed)
        .into_iter()
        .chain(extras(scale, seed))
        .chain(micro::micro_suite(scale, seed))
        .find(|w| w.name == name)
}

/// Every workload name [`by_name`] accepts, in suite/extras/micro order.
/// Built once (from the cheap Test-scale generators) so request
/// validation doesn't regenerate workload memory images.
pub fn names() -> &'static [&'static str] {
    static NAMES: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    NAMES.get_or_init(|| {
        suite(Scale::Test, 0)
            .into_iter()
            .chain(extras(Scale::Test, 0))
            .chain(micro::micro_suite(Scale::Test, 0))
            .map(|w| w.name)
            .collect()
    })
}

/// Common memory-layout constants shared by the generators: workloads
/// place their data well apart so accidental overlap is impossible.
pub mod layout {
    /// First data region.
    pub const REGION_A: u64 = 0x0010_0000;
    /// Second data region.
    pub const REGION_B: u64 = 0x0080_0000;
    /// Third data region.
    pub const REGION_C: u64 = 0x00F0_0000;
    /// Result cell.
    pub const RESULT: u64 = 0x0200_0000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    /// Every suite member must run functionally and produce its expected
    /// result.
    #[test]
    fn suite_runs_and_validates_at_test_scale() {
        for w in suite(Scale::Test, 42) {
            let mut i = Interp::new(&w.prog, w.mem.clone());
            for &(r, v) in &w.regs {
                i.set_reg(r, v);
            }
            let stats = i
                .run(w.max_steps)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                stats.instrs > 100,
                "{} trivially short: {}",
                w.name,
                stats.instrs
            );
            if let Some((addr, want)) = w.expected {
                let got = i.mem.read_i64(addr).unwrap();
                assert_eq!(got, want, "{} wrong result", w.name);
            }
        }
    }

    #[test]
    fn suite_has_seven_distinct_names() {
        let names: Vec<&str> = suite(Scale::Test, 1).iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "dm",
                "raytrace",
                "pointer",
                "update",
                "field",
                "neighborhood",
                "tc"
            ]
        );
    }

    #[test]
    fn by_name_finds_members() {
        assert!(by_name("tc", Scale::Test, 1).is_some());
        assert!(by_name("cornerturn", Scale::Test, 1).is_some());
        assert!(by_name("matrix", Scale::Test, 1).is_some());
        assert!(by_name("nope", Scale::Test, 1).is_none());
    }

    #[test]
    fn names_match_by_name() {
        let ns = names();
        assert!(ns.contains(&"dm") && ns.contains(&"matrix"));
        for n in ns {
            assert!(by_name(n, Scale::Test, 1).is_some(), "{n} not resolvable");
        }
    }

    #[test]
    fn extras_run_and_validate_at_test_scale() {
        for w in extras(Scale::Test, 42) {
            let mut i = Interp::new(&w.prog, w.mem.clone());
            for &(r, v) in &w.regs {
                i.set_reg(r, v);
            }
            i.run(w.max_steps)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            if let Some((addr, want)) = w.expected {
                assert_eq!(
                    i.mem.read_i64(addr).unwrap(),
                    want,
                    "{} wrong result",
                    w.name
                );
            }
        }
    }

    #[test]
    fn seeds_change_data_but_not_structure() {
        let a = by_name("pointer", Scale::Test, 1).unwrap();
        let b = by_name("pointer", Scale::Test, 2).unwrap();
        assert_eq!(a.prog.len(), b.prog.len());
        assert_ne!(a.mem.checksum(), b.mem.checksum());
    }

    #[test]
    fn programs_validate() {
        for w in suite(Scale::Test, 7) {
            w.prog
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
