//! The **Neighborhood** stressmark: image pair sampling into a
//! co-occurrence histogram (the GLCM computation of the DIS suite).
//!
//! For a stream of random pixel positions, the kernel loads a pixel and
//! its neighbor at distance `d`, computes the histogram bin from the two
//! values, and increments the bin. The histogram is small (always
//! cache-resident) but its *update* creates memory-carried dependences
//! between iterations whenever bins collide — the frequent
//! synchronisations the paper blames for the CP+AP model *losing* to the
//! superscalar on this benchmark.

use crate::gen;
use crate::layout::{REGION_A, REGION_B, REGION_C, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Neighborhood parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Image size in pixels (one i64 per pixel).
    pub pixels: usize,
    /// Grey levels (histogram is `levels²` bins).
    pub levels: usize,
    /// Neighbor distance in pixels.
    pub distance: usize,
    /// Number of sampled pairs.
    pub pairs: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                pixels: 2048,
                levels: 8,
                distance: 17,
                pairs: 400,
            },
            crate::Scale::Paper => Params {
                pixels: 16_384,
                levels: 5,
                distance: 331,
                pairs: 12_000,
            },
            crate::Scale::Large => Params {
                pixels: 65_536,
                levels: 6,
                distance: 331,
                pairs: 48_000,
            },
        }
    }
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1004, seed);
    let img = gen::values(p.pixels, p.levels as i64, &mut rng);
    let pos = gen::indices(p.pairs, p.pixels - p.distance, &mut rng);

    let mut mem = Memory::new();
    for (i, &v) in img.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, v).unwrap();
    }
    for (i, &v) in pos.iter().enumerate() {
        mem.write_i64(REGION_B + 8 * i as u64, v as i64).unwrap();
    }
    // Histogram region starts zeroed (REGION_C).

    // Native reference: histogram then weighted checksum.
    let bins = p.levels * p.levels;
    let mut hist = vec![0i64; bins];
    for &at in &pos {
        let a = img[at as usize];
        let b = img[at as usize + p.distance];
        hist[(a * p.levels as i64 + b) as usize] += 1;
    }
    let mut check: i64 = 0;
    for (k, &h) in hist.iter().enumerate() {
        check = check.wrapping_add(h.wrapping_mul(k as i64 + 1));
    }

    let src = format!(
        r"
            li r12, 0           ; pair index
        pairs:
            sll r2, r12, 3
            add r3, r8, r2
            ld r4, 0(r3)        ; at = pos[i]
            sll r4, r4, 3
            add r5, r9, r4
            ld r6, 0(r5)        ; a = img[at]
            ld r7, {doff}(r5)   ; b = img[at + d]
            mul r6, r6, {levels}
            add r6, r6, r7      ; bin = a*L + b
            sll r6, r6, 3
            add r6, r13, r6
            ld r14, 0(r6)       ; hist[bin]
            add r15, r14, 1     ;   + 1
            sd r15, 0(r6)       ; store back
            add r12, r12, 1
            sub r10, r10, 1
            bne r10, r0, pairs
            ; checksum pass over the histogram
            li r5, 0
            li r12, 0
            li r16, 1
        check:
            sll r2, r12, 3
            add r3, r13, r2
            ld r4, 0(r3)
            mul r4, r4, r16
            add r5, r5, r4
            add r16, r16, 1
            add r12, r12, 1
            bne r12, r17, check
            sd r5, 0(r11)
            halt
        ",
        doff = 8 * p.distance,
        levels = p.levels,
    );
    let prog = assemble("neighborhood", &src).expect("neighborhood kernel assembles");

    Workload {
        name: "neighborhood",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_B as i64),  // positions
            (IntReg::new(9), REGION_A as i64),  // image
            (IntReg::new(13), REGION_C as i64), // histogram
            (IntReg::new(10), p.pairs as i64),
            (IntReg::new(11), RESULT as i64),
            (IntReg::new(17), bins as i64),
        ],
        mem,
        max_steps: 60 * (p.pairs + bins) as u64 + 10_000,
        expected: Some((RESULT, check)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference() {
        let w = build(
            &Params {
                pixels: 256,
                levels: 4,
                distance: 9,
                pairs: 200,
            },
            13,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn histogram_totals_pairs() {
        let p = Params {
            pixels: 128,
            levels: 4,
            distance: 3,
            pairs: 64,
        };
        let w = build(&p, 2);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let mut total = 0i64;
        for k in 0..(p.levels * p.levels) as u64 {
            total += i.mem.read_i64(REGION_C + 8 * k).unwrap();
        }
        assert_eq!(total, p.pairs as i64);
    }
}
