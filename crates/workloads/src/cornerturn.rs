//! The **Corner-Turn** stressmark (DIS Stressmark suite member not
//! plotted in the paper; provided for suite completeness): an
//! out-of-place matrix transpose.
//!
//! Reading row-major and writing column-major gives one side of the
//! transfer a cache-hostile large stride — the canonical corner-turn
//! pattern of sensor processing.

use crate::gen;
use crate::layout::{REGION_A, REGION_B, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Corner-turn parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Rows of the source matrix.
    pub rows: usize,
    /// Columns of the source matrix.
    pub cols: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params { rows: 24, cols: 16 },
            crate::Scale::Paper => Params {
                rows: 160,
                cols: 96,
            },
            crate::Scale::Large => Params {
                rows: 320,
                cols: 192,
            },
        }
    }
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1008, seed);
    let a = gen::values(p.rows * p.cols, 1 << 30, &mut rng);

    let mut mem = Memory::new();
    for (i, &v) in a.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, v).unwrap();
    }

    // Native reference: transpose + weighted checksum of B.
    let (m, n) = (p.rows, p.cols);
    let mut b = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            b[j * m + i] = a[i * n + j];
        }
    }
    let mut check: i64 = 0;
    for (k, &v) in b.iter().enumerate() {
        check = check.wrapping_add(v.wrapping_mul((k % 127 + 1) as i64));
    }

    let src = r"
            li r20, 0           ; i
        iloop:
            li r21, 0           ; j
            mul r2, r20, r17    ; i*N
            sll r2, r2, 3
            add r24, r8, r2     ; &A[i*N]
        jloop:
            sll r3, r21, 3
            add r4, r24, r3
            ld r5, 0(r4)        ; A[i][j] (row-major: friendly)
            mul r6, r21, r16    ; j*M
            add r6, r6, r20     ;   + i
            sll r6, r6, 3
            add r6, r9, r6
            sd r5, 0(r6)        ; B[j][i] (column-major: hostile)
            add r21, r21, 1
            bne r21, r17, jloop
            add r20, r20, 1
            bne r20, r16, iloop
            ; checksum pass over B
            li r5, 0
            li r12, 0
        check:
            sll r2, r12, 3
            add r3, r9, r2
            ld r4, 0(r3)
            rem r14, r12, 127
            add r14, r14, 1
            mul r4, r4, r14
            add r5, r5, r4
            add r12, r12, 1
            bne r12, r18, check
            sd r5, 0(r11)
            halt
        ";
    let prog = assemble("cornerturn", src).expect("cornerturn kernel assembles");

    Workload {
        name: "cornerturn",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_A as i64),
            (IntReg::new(9), REGION_B as i64),
            (IntReg::new(16), m as i64),
            (IntReg::new(17), n as i64),
            (IntReg::new(18), (m * n) as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 40 * (m * n) as u64 + 10_000,
        expected: Some((RESULT, check)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference_and_transposes() {
        let p = Params { rows: 6, cols: 4 };
        let w = build(&p, 3);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
        // Spot-check the transpose itself: B[j*M+i] == A[i*N+j].
        for row in 0..p.rows {
            for col in 0..p.cols {
                let a = i
                    .mem
                    .read_i64(REGION_A + 8 * (row * p.cols + col) as u64)
                    .unwrap();
                let b = i
                    .mem
                    .read_i64(REGION_B + 8 * (col * p.rows + row) as u64)
                    .unwrap();
                assert_eq!(a, b, "A[{row}][{col}]");
            }
        }
    }
}
