//! The **Matrix** stressmark (DIS Stressmark suite member not plotted in
//! the paper; provided for suite completeness): repeated sparse
//! matrix-vector products, the kernel of the suite's conjugate-gradient
//! solver.
//!
//! CSR storage gives sequential sweeps over `val`/`col` and irregular
//! gathers of `x[col[k]]` — a floating-point cousin of the Update
//! stressmark's access pattern.

use crate::gen;
use crate::layout::{REGION_A, REGION_B, REGION_C, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;
use rand::Rng;

/// Matrix parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Matrix dimension (rows == cols).
    pub n: usize,
    /// Non-zeros per row.
    pub nnz_per_row: usize,
    /// SpMV iterations.
    pub iterations: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                n: 64,
                nnz_per_row: 4,
                iterations: 2,
            },
            crate::Scale::Paper => Params {
                n: 4096,
                nnz_per_row: 8,
                iterations: 4,
            },
            crate::Scale::Large => Params {
                n: 16_384,
                nnz_per_row: 8,
                iterations: 4,
            },
        }
    }
}

// Memory map (all in i64/f64 words):
//   REGION_A: col[]   (n * nnz_per_row indices)
//   REGION_B: val[]   (n * nnz_per_row f64)
//   REGION_C: x[]     (n f64)
//   REGION_C + 8n (page aligned): y[] (n f64)

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1009, seed);
    let nnz = p.n * p.nnz_per_row;
    let col: Vec<u32> = gen::indices(nnz, p.n, &mut rng);
    let val: Vec<f64> = (0..nnz)
        .map(|_| (rng.gen_range(1..32) as f64) * 0.0625)
        .collect();
    let x0: Vec<f64> = (0..p.n)
        .map(|_| (rng.gen_range(0..16) as f64) * 0.25)
        .collect();
    let y_base = REGION_C + ((8 * p.n as u64).div_ceil(4096)) * 4096 + 4096;

    let mut mem = Memory::new();
    for (i, &c) in col.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, c as i64).unwrap();
    }
    for (i, &v) in val.iter().enumerate() {
        mem.write_f64(REGION_B + 8 * i as u64, v).unwrap();
    }
    for (i, &v) in x0.iter().enumerate() {
        mem.write_f64(REGION_C + 8 * i as u64, v).unwrap();
    }

    // Native reference, mirroring operation order exactly.
    let mut x = x0.clone();
    let mut y = vec![0.0f64; p.n];
    for _ in 0..p.iterations {
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for k in 0..p.nnz_per_row {
                let e = r * p.nnz_per_row + k;
                acc += val[e] * x[col[e] as usize];
            }
            *yr = acc;
        }
        std::mem::swap(&mut x, &mut y);
    }
    // x holds the last product; checksum = sum in row order.
    let mut sum = 0.0f64;
    for &v in &x {
        sum += v;
    }

    let src = format!(
        r"
            li r20, 0           ; iteration
        iter:
            li r21, 0           ; row
            li r22, 0           ; element cursor
        row:
            cvt.d.l f1, r0      ; acc = 0
            li r23, {k}         ; nnz per row
        elem:
            sll r2, r22, 3
            add r3, r8, r2
            ld r4, 0(r3)        ; col[e]
            add r5, r9, r2
            l.d f2, 0(r5)       ; val[e]
            sll r4, r4, 3
            add r6, r12, r4
            l.d f3, 0(r6)       ; x[col[e]]  (irregular gather)
            mul.d f4, f2, f3
            add.d f1, f1, f4
            add r22, r22, 1
            sub r23, r23, 1
            bne r23, r0, elem
            sll r7, r21, 3
            add r7, r13, r7
            s.d f1, 0(r7)       ; y[row] = acc
            add r21, r21, 1
            bne r21, r16, row
            ; swap x and y base pointers
            add r2, r12, 0
            add r12, r13, 0
            add r13, r2, 0
            add r20, r20, 1
            bne r20, r17, iter
            ; checksum: sum x[] (the final product)
            cvt.d.l f5, r0
            li r21, 0
        check:
            sll r2, r21, 3
            add r3, r12, r2
            l.d f6, 0(r3)
            add.d f5, f5, f6
            add r21, r21, 1
            bne r21, r16, check
            s.d f5, 0(r11)
            halt
        ",
        k = p.nnz_per_row,
    );
    let prog = assemble("matrix", &src).expect("matrix kernel assembles");

    Workload {
        name: "matrix",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_A as i64),  // col
            (IntReg::new(9), REGION_B as i64),  // val
            (IntReg::new(12), REGION_C as i64), // x
            (IntReg::new(13), y_base as i64),   // y
            (IntReg::new(16), p.n as i64),
            (IntReg::new(17), p.iterations as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 40 * (p.iterations * nnz + p.n) as u64 + 10_000,
        expected: Some((RESULT, sum.to_bits() as i64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(
            &Params {
                n: 16,
                nnz_per_row: 3,
                iterations: 3,
            },
            9,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn single_iteration_is_one_spmv() {
        // Identity-like check: with all values = known constants the first
        // product is directly computable.
        let w = build(
            &Params {
                n: 8,
                nnz_per_row: 2,
                iterations: 1,
            },
            4,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }
}
