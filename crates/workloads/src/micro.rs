//! Micro-kernels: the small scientific loops the paper's Section 4 uses
//! to explain the compiler (Livermore Loop 1 and the discrete
//! convolution), plus two classics (saxpy, sdot) in the same style.
//!
//! These are not part of the evaluation suite; they exist so the compiler
//! walkthroughs and the microbenchmarks have first-class, validated
//! kernels to chew on.

use crate::layout::{REGION_A, REGION_B, REGION_C, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Micro-kernel size (elements).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Vector length.
    pub n: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params { n: 256 },
            crate::Scale::Paper => Params { n: 8192 },
            crate::Scale::Large => Params { n: 32_768 },
        }
    }
}

fn fill(mem: &mut Memory, base: u64, n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
    let v: Vec<f64> = (0..n).map(f).collect();
    for (i, &x) in v.iter().enumerate() {
        mem.write_f64(base + 8 * i as u64, x).unwrap();
    }
    v
}

/// Livermore Loop 1 (hydro fragment):
/// `x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])` — the paper's Figure 5
/// example.
pub fn lll1(p: &Params, seed: u64) -> Workload {
    let n = p.n;
    let mut mem = Memory::new();
    let y = fill(&mut mem, REGION_B, n, |k| {
        ((k as u64 ^ seed) % 9) as f64 * 0.5
    });
    let z = fill(&mut mem, REGION_C, n + 16, |k| {
        ((k as u64 + seed) % 7) as f64 * 0.25
    });
    let (q, r, t) = (1.5f64, 0.25f64, 0.125f64);
    mem.write_f64(0x0040_0000, q).unwrap();
    mem.write_f64(0x0040_0008, r).unwrap();
    mem.write_f64(0x0040_0010, t).unwrap();

    // Reference: x[], plus an fp checksum in the exact kernel order.
    let mut acc = 0.0f64;
    for k in 0..n {
        let x = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
        acc += x;
    }

    let src = r"
            l.d f10, 0x400000(r0)  ; q
            l.d f11, 0x400008(r0)  ; r
            l.d f12, 0x400010(r0)  ; t
            li  r5, 0              ; k
        loop:
            sll r6, r5, 3
            add r7, r3, r6
            l.d f1, 80(r7)         ; z[k+10]
            l.d f2, 88(r7)         ; z[k+11]
            mul.d f3, f11, f1
            mul.d f4, f12, f2
            add.d f3, f3, f4
            add r8, r2, r6
            l.d f5, 0(r8)          ; y[k]
            mul.d f6, f5, f3
            add.d f6, f6, f10
            add r9, r1, r6
            s.d f6, 0(r9)          ; x[k]
            add.d f20, f20, f6     ; checksum
            add r5, r5, 1
            bne r5, r4, loop
            s.d f20, 0(r11)
            halt
        ";
    Workload {
        name: "lll1",
        prog: assemble("lll1", src).unwrap(),
        regs: vec![
            (IntReg::new(1), REGION_A as i64), // x
            (IntReg::new(2), REGION_B as i64), // y
            (IntReg::new(3), REGION_C as i64), // z
            (IntReg::new(4), n as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 40 * n as u64 + 10_000,
        expected: Some((RESULT, acc.to_bits() as i64)),
    }
}

/// Discrete convolution inner loop (the paper's Figure 3):
/// `y += x[j] * h[n-j-1]`.
pub fn convolution(p: &Params, seed: u64) -> Workload {
    let n = p.n;
    let mut mem = Memory::new();
    let x = fill(&mut mem, REGION_A, n, |k| {
        ((k as u64 ^ seed) % 11) as f64 * 0.125
    });
    let h = fill(&mut mem, REGION_B, n, |k| {
        ((k as u64 + seed) % 5) as f64 * 0.5
    });

    let mut y = 0.0f64;
    for j in 0..n {
        y += x[j] * h[n - j - 1];
    }

    let src = r"
            li  r4, 0           ; j
            sub r5, r3, 1       ; n-1
        loop:
            sll r6, r4, 3
            add r7, r1, r6
            l.d f1, 0(r7)       ; x[j]
            sub r8, r5, r4
            sll r8, r8, 3
            add r9, r2, r8
            l.d f2, 0(r9)       ; h[n-j-1]
            mul.d f3, f1, f2
            add.d f4, f4, f3
            add r4, r4, 1
            bne r4, r3, loop
            s.d f4, 0(r11)
            halt
        ";
    Workload {
        name: "convolution",
        prog: assemble("convolution", src).unwrap(),
        regs: vec![
            (IntReg::new(1), REGION_A as i64),
            (IntReg::new(2), REGION_B as i64),
            (IntReg::new(3), n as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 30 * n as u64 + 10_000,
        expected: Some((RESULT, y.to_bits() as i64)),
    }
}

/// saxpy: `y[k] = a*x[k] + y[k]`.
pub fn saxpy(p: &Params, seed: u64) -> Workload {
    let n = p.n;
    let mut mem = Memory::new();
    let x = fill(&mut mem, REGION_A, n, |k| {
        ((k as u64 ^ seed) % 13) as f64 * 0.25
    });
    let y0 = fill(&mut mem, REGION_B, n, |k| {
        ((k as u64 + seed) % 17) as f64 * 0.5
    });
    let a = 3.5f64;
    mem.write_f64(0x0040_0000, a).unwrap();

    let mut acc = 0.0f64;
    for k in 0..n {
        let y = a * x[k] + y0[k];
        acc += y;
    }

    let src = r"
            l.d f10, 0x400000(r0)  ; a
            li r4, 0
        loop:
            sll r5, r4, 3
            add r6, r1, r5
            l.d f1, 0(r6)          ; x[k]
            add r7, r2, r5
            l.d f2, 0(r7)          ; y[k]
            mul.d f3, f10, f1
            add.d f3, f3, f2
            s.d f3, 0(r7)          ; y[k] updated
            add.d f20, f20, f3
            add r4, r4, 1
            bne r4, r3, loop
            s.d f20, 0(r11)
            halt
        ";
    Workload {
        name: "saxpy",
        prog: assemble("saxpy", src).unwrap(),
        regs: vec![
            (IntReg::new(1), REGION_A as i64),
            (IntReg::new(2), REGION_B as i64),
            (IntReg::new(3), n as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 30 * n as u64 + 10_000,
        expected: Some((RESULT, acc.to_bits() as i64)),
    }
}

/// sdot: `s += x[k] * y[k]`.
pub fn sdot(p: &Params, seed: u64) -> Workload {
    let n = p.n;
    let mut mem = Memory::new();
    let x = fill(&mut mem, REGION_A, n, |k| {
        ((k as u64 ^ seed) % 7) as f64 * 0.5
    });
    let y = fill(&mut mem, REGION_B, n, |k| {
        ((k as u64 + seed) % 3) as f64 * 1.25
    });

    let mut s = 0.0f64;
    for k in 0..n {
        s += x[k] * y[k];
    }

    let src = r"
            li r4, 0
        loop:
            sll r5, r4, 3
            add r6, r1, r5
            l.d f1, 0(r6)
            add r7, r2, r5
            l.d f2, 0(r7)
            mul.d f3, f1, f2
            add.d f4, f4, f3
            add r4, r4, 1
            bne r4, r3, loop
            s.d f4, 0(r11)
            halt
        ";
    Workload {
        name: "sdot",
        prog: assemble("sdot", src).unwrap(),
        regs: vec![
            (IntReg::new(1), REGION_A as i64),
            (IntReg::new(2), REGION_B as i64),
            (IntReg::new(3), n as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 25 * n as u64 + 10_000,
        expected: Some((RESULT, s.to_bits() as i64)),
    }
}

/// All four micro-kernels.
pub fn micro_suite(scale: crate::Scale, seed: u64) -> Vec<Workload> {
    let p = Params::at(scale);
    vec![
        lll1(&p, seed),
        convolution(&p, seed),
        saxpy(&p, seed),
        sdot(&p, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn all_micro_kernels_match_their_references() {
        for w in micro_suite(crate::Scale::Test, 5) {
            let mut i = Interp::new(&w.prog, w.mem.clone());
            for &(r, v) in &w.regs {
                i.set_reg(r, v);
            }
            i.run(w.max_steps)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let (addr, want) = w.expected.unwrap();
            assert_eq!(
                i.mem.read_i64(addr).unwrap(),
                want,
                "{}: checksum mismatch",
                w.name
            );
        }
    }

    #[test]
    fn micro_kernels_have_distinct_names() {
        let names: Vec<&str> = micro_suite(crate::Scale::Test, 1)
            .iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["lll1", "convolution", "saxpy", "sdot"]);
    }
}
