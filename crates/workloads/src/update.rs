//! The **Update** stressmark: indexed gather-modify-scatter.
//!
//! A large table is updated through a stream of random indices:
//! `w[idx[i]] += i`, with a running checksum of the gathered values. The
//! index stream is sequential (cheap to fetch), the table accesses are
//! random over a memory-sized footprint — the pattern where CMAS
//! prefetching shines, and the benchmark on which the paper reports its
//! best speed-up (18.5 %).

use crate::gen;
use crate::layout::{REGION_A, REGION_B, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Update parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Table size in words.
    pub table: usize,
    /// Number of updates.
    pub updates: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                table: 1024,
                updates: 400,
            },
            crate::Scale::Paper => Params {
                table: 32_768,
                updates: 16_000,
            },
            crate::Scale::Large => Params {
                table: 131_072,
                updates: 64_000,
            },
        }
    }
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1002, seed);
    let idx = gen::indices(p.updates, p.table, &mut rng);
    let init = gen::values(p.table, 1 << 20, &mut rng);

    let mut mem = Memory::new();
    for (i, &ix) in idx.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, ix as i64).unwrap();
    }
    for (i, &v) in init.iter().enumerate() {
        mem.write_i64(REGION_B + 8 * i as u64, v).unwrap();
    }

    // Native reference.
    let mut w = init.clone();
    let mut sum: i64 = 0;
    for (i, &ix) in idx.iter().enumerate() {
        let old = w[ix as usize];
        sum = sum.wrapping_add(old);
        w[ix as usize] = old.wrapping_add(i as i64);
    }

    let src = r"
            li r12, 0           ; i
            li r5, 0            ; checksum
        loop:
            sll r2, r12, 3
            add r3, r8, r2
            ld r4, 0(r3)        ; j = idx[i]   (sequential stream)
            sll r4, r4, 3
            add r6, r9, r4
            ld r7, 0(r6)        ; old = w[j]   (random gather)
            add r5, r5, r7      ; checksum += old
            add r13, r7, r12    ; new = old + i
            sd r13, 0(r6)       ; w[j] = new   (scatter)
            add r12, r12, 1
            sub r10, r10, 1
            bne r10, r0, loop
            sd r5, 0(r11)
            halt
        ";
    let prog = assemble("update", src).expect("update kernel assembles");

    Workload {
        name: "update",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_A as i64),
            (IntReg::new(9), REGION_B as i64),
            (IntReg::new(10), p.updates as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 40 * p.updates as u64 + 10_000,
        expected: Some((RESULT, sum)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference_and_table_updated() {
        let p = Params {
            table: 128,
            updates: 300,
        };
        let w = build(&p, 11);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
        // The table must actually have changed (duplicate indices
        // accumulate, so compare against a native recomputation).
        let mut rng = gen::rng(0x1002, 11);
        let idx = gen::indices(p.updates, p.table, &mut rng);
        let init = gen::values(p.table, 1 << 20, &mut rng);
        let mut t = init.clone();
        for (k, &ix) in idx.iter().enumerate() {
            t[ix as usize] = t[ix as usize].wrapping_add(k as i64);
        }
        for (k, &v) in t.iter().enumerate() {
            assert_eq!(
                i.mem.read_i64(REGION_B + 8 * k as u64).unwrap(),
                v,
                "cell {k}"
            );
        }
    }

    #[test]
    fn repeated_indices_compound() {
        // Tiny table forces collisions; correctness depends on
        // read-after-write through memory.
        let w = build(
            &Params {
                table: 4,
                updates: 200,
            },
            3,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }
}
