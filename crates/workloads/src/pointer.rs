//! The **Pointer** stressmark: serial pointer chasing with window scans.
//!
//! A field of `n` words holds a single-cycle random permutation: cell `i`
//! contains the index of the next cell. Each hop follows the chain and
//! scans a small window of adjacent words, accumulating their values —
//! the DIS Pointer kernel's "window" work. The chain itself is strictly
//! serial (each load's address depends on the previous load's value), the
//! archetypal access pattern the paper's introduction motivates.

use crate::gen;
use crate::layout::{REGION_A, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;

/// Pointer parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Field size in words.
    pub n: usize,
    /// Number of hops.
    pub hops: u64,
    /// Window words scanned per hop.
    pub window: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                n: 512,
                hops: 400,
                window: 3,
            },
            crate::Scale::Paper => Params {
                n: 8_192,
                hops: 12_000,
                window: 3,
            },
            crate::Scale::Large => Params {
                n: 32_768,
                hops: 48_000,
                window: 3,
            },
        }
    }
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    let mut rng = gen::rng(0x1001, seed);
    let perm = gen::single_cycle_permutation(p.n, &mut rng);

    let mut mem = Memory::new();
    for (i, &nxt) in perm.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, nxt as i64).unwrap();
    }
    // Guard words past the field so window reads never alias other data.
    for g in 0..p.window {
        mem.write_i64(REGION_A + 8 * (p.n + g) as u64, 0).unwrap();
    }

    // Native reference.
    let mut sum: i64 = 0;
    let mut at: usize = 0;
    let read = |i: usize| -> i64 {
        if i < p.n {
            perm[i] as i64
        } else {
            0
        }
    };
    for _ in 0..p.hops {
        let next = perm[at] as usize;
        for w in 1..=p.window {
            sum = sum.wrapping_add(read(at + w));
        }
        at = next;
    }

    let window_scan: String = (1..=p.window)
        .map(|w| {
            format!(
                "            ld r4, {}(r3)\n            add r5, r5, r4\n",
                8 * w
            )
        })
        .collect();
    let src = format!(
        r"
            li r5, 0            ; window sum
        hop:
            sll r2, r11, 3
            add r3, r8, r2
{window_scan}            ld r11, 0(r3)       ; follow the chain
            sub r9, r9, 1
            bne r9, r0, hop
            sd r5, 0(r10)
            halt
        "
    );
    let prog = assemble("pointer", &src).expect("pointer kernel assembles");

    Workload {
        name: "pointer",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_A as i64),
            (IntReg::new(9), p.hops as i64),
            (IntReg::new(10), RESULT as i64),
            (IntReg::new(11), 0),
        ],
        mem,
        max_steps: 40 * p.hops + 10_000,
        expected: Some((RESULT, sum)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    fn run(p: &Params, seed: u64) -> (i64, u64) {
        let w = build(p, seed);
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        let st = i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
        (want, st.instrs)
    }

    #[test]
    fn matches_reference() {
        run(
            &Params {
                n: 64,
                hops: 200,
                window: 3,
            },
            5,
        );
    }

    #[test]
    fn hop_count_controls_length() {
        let (_, short) = run(
            &Params {
                n: 64,
                hops: 50,
                window: 2,
            },
            5,
        );
        let (_, long) = run(
            &Params {
                n: 64,
                hops: 100,
                window: 2,
            },
            5,
        );
        assert!(long > short + 200);
    }

    #[test]
    fn window_zero_is_pure_chase() {
        let w = build(
            &Params {
                n: 32,
                hops: 40,
                window: 0,
            },
            9,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        assert_eq!(i.mem.read_i64(RESULT).unwrap(), 0);
    }
}
