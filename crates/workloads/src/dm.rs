//! The **DM** benchmark (DIS Data Management): hash-index lookup with
//! bucket-chain walking and record gathering — the database access
//! pattern of the DIS suite.
//!
//! A record table is indexed by a chained hash table. Each query hashes
//! its key, walks the bucket chain comparing keys, and accumulates the
//! matching record's payload. Bucket heads and records are scattered
//! across a multi-hundred-KiB footprint, giving the irregular
//! de-referencing behaviour the paper's introduction describes for
//! database workloads.

use crate::gen;
use crate::layout::{REGION_A, REGION_B, REGION_C, RESULT};
use crate::Workload;
use hidisc_isa::asm::assemble;
use hidisc_isa::mem::Memory;
use hidisc_isa::IntReg;
use rand::Rng;

/// DM parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of records (24 bytes each).
    pub records: usize,
    /// Number of hash buckets (power of two).
    pub buckets: usize,
    /// Number of queries.
    pub queries: usize,
}

impl Params {
    /// Sizes per scale.
    pub fn at(scale: crate::Scale) -> Params {
        match scale {
            crate::Scale::Test => Params {
                records: 256,
                buckets: 64,
                queries: 300,
            },
            crate::Scale::Paper => Params {
                records: 8_192,
                buckets: 2048,
                queries: 6_000,
            },
            crate::Scale::Large => Params {
                records: 32_768,
                buckets: 8192,
                queries: 24_000,
            },
        }
    }
}

/// The key stored in record `r`.
fn key_of(r: usize) -> i64 {
    (r as i64).wrapping_mul(2_654_435_761) & 0x7fff_ffff
}

/// Builds the workload.
pub fn build(p: &Params, seed: u64) -> Workload {
    assert!(p.buckets.is_power_of_two());
    let mut rng = gen::rng(0x1006, seed);
    let mask = (p.buckets - 1) as i64;

    // Chain records into buckets (head-insertion, so chains are in
    // reverse record order).
    let mut head = vec![-1i64; p.buckets];
    let mut next = vec![-1i64; p.records];
    let mut value = vec![0i64; p.records];
    for r in 0..p.records {
        let h = (key_of(r) & mask) as usize;
        next[r] = head[h];
        head[h] = r as i64;
        value[r] = rng.gen_range(0..1_000_000);
    }
    // Queries: mostly present keys, a few misses.
    let queries: Vec<i64> = (0..p.queries)
        .map(|_| {
            if rng.gen_range(0..10) < 9 {
                key_of(rng.gen_range(0..p.records))
            } else {
                0x4000_0000 + rng.gen_range(0..1_000_000i64)
            }
        })
        .collect();

    let mut mem = Memory::new();
    for (i, &h) in head.iter().enumerate() {
        mem.write_i64(REGION_A + 8 * i as u64, h).unwrap();
    }
    for r in 0..p.records {
        let base = REGION_B + 24 * r as u64;
        mem.write_i64(base, key_of(r)).unwrap();
        mem.write_i64(base + 8, next[r]).unwrap();
        mem.write_i64(base + 16, value[r]).unwrap();
    }
    for (i, &q) in queries.iter().enumerate() {
        mem.write_i64(REGION_C + 8 * i as u64, q).unwrap();
    }

    // Native reference.
    let mut sum: i64 = 0;
    for &q in &queries {
        let mut r = head[(q & mask) as usize];
        while r >= 0 {
            if key_of(r as usize) == q {
                sum = sum.wrapping_add(value[r as usize]);
                break;
            }
            r = next[r as usize];
        }
    }

    let src = r"
            li r12, 0           ; query index
            li r5, 0            ; sum
        qloop:
            sll r2, r12, 3
            add r3, r8, r2
            ld r4, 0(r3)        ; key
            and r6, r4, r16     ; h = key & mask
            sll r6, r6, 3
            add r6, r9, r6
            ld r7, 0(r6)        ; r = head[h]
        walk:
            blt r7, r0, notfound
            mul r14, r7, 24
            add r14, r13, r14
            ld r15, 0(r14)      ; rec.key
            beq r15, r4, found
            ld r7, 8(r14)       ; r = rec.next
            j walk
        found:
            ld r15, 16(r14)     ; rec.value
            add r5, r5, r15
        notfound:
            add r12, r12, 1
            sub r10, r10, 1
            bne r10, r0, qloop
            sd r5, 0(r11)
            halt
        ";
    let prog = assemble("dm", src).expect("dm kernel assembles");

    Workload {
        name: "dm",
        prog,
        regs: vec![
            (IntReg::new(8), REGION_C as i64),  // queries
            (IntReg::new(9), REGION_A as i64),  // bucket heads
            (IntReg::new(13), REGION_B as i64), // records
            (IntReg::new(16), mask),
            (IntReg::new(10), p.queries as i64),
            (IntReg::new(11), RESULT as i64),
        ],
        mem,
        max_steps: 200 * p.queries as u64 * (1 + p.records as u64 / p.buckets as u64) + 10_000,
        expected: Some((RESULT, sum)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidisc_isa::interp::Interp;

    #[test]
    fn matches_reference() {
        let w = build(
            &Params {
                records: 64,
                buckets: 16,
                queries: 120,
            },
            19,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn all_hits_sum_everything_found() {
        // One bucket: longest chains, exercising the walk loop hard.
        let w = build(
            &Params {
                records: 16,
                buckets: 1,
                queries: 50,
            },
            4,
        );
        let mut i = Interp::new(&w.prog, w.mem.clone());
        for &(r, v) in &w.regs {
            i.set_reg(r, v);
        }
        i.run(w.max_steps).unwrap();
        let (addr, want) = w.expected.unwrap();
        assert_eq!(i.mem.read_i64(addr).unwrap(), want);
    }

    #[test]
    fn key_function_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..10_000 {
            assert!(seen.insert(key_of(r)), "key collision at {r}");
        }
    }
}
